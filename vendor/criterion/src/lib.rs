//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a crates.io registry, so this workspace
//! vendors the criterion API subset its `benches/` use: [`Criterion`],
//! benchmark groups with [`Throughput`] and `sample_size`, [`BenchmarkId`],
//! `bench_function` / `bench_with_input`, the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`].
//!
//! Measurement is a simple calibrated loop: each benchmark is warmed up,
//! then timed over enough iterations to fill a minimum measurement window,
//! and the median of several samples is reported as ns/iter (plus
//! elements/bytes per second when a throughput is set). There is no
//! statistical analysis, HTML report or baseline comparison — the point is
//! that `cargo bench` runs, prints honest numbers, and the bench sources
//! compile unmodified against the real crate if it is ever restored.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// bodies. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work per iteration, used to report rates alongside ns/iter.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter, for groups whose name already says what runs.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; drives the measured loop.
pub struct Bencher<'a> {
    samples: usize,
    min_window: Duration,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    ns_per_iter: f64,
}

impl Bencher<'_> {
    /// Times `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and iteration-count calibration: grow the batch until it
        // fills the minimum measurement window.
        let mut iters: u64 = 1;
        let calibration = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_window || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters = iters.saturating_mul(2);
        };
        let _ = calibration;

        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = samples[samples.len() / 2];
        *self.result = Some(Sample {
            ns_per_iter: median * 1e9,
        });
    }
}

/// A named set of related benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work used to report element/byte rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample = run_bench(self.sample_size, self.criterion.min_window, |b| routine(b));
        report(&full, sample, self.throughput);
        self
    }

    /// Runs `routine` with `input` as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let sample = run_bench(self.sample_size, self.criterion.min_window, |b| {
            routine(b, input)
        });
        report(&full, sample, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

fn run_bench(
    samples: usize,
    min_window: Duration,
    mut routine: impl FnMut(&mut Bencher<'_>),
) -> Option<Sample> {
    let mut result = None;
    let mut bencher = Bencher {
        samples,
        min_window,
        result: &mut result,
    };
    routine(&mut bencher);
    result
}

fn report(name: &str, sample: Option<Sample>, throughput: Option<Throughput>) {
    let Some(Sample { ns_per_iter }) = sample else {
        println!("{name:<48} (no measurement: bencher.iter was never called)");
        return;
    };
    let mut line = format!("{name:<48} {ns_per_iter:>14.1} ns/iter");
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / (ns_per_iter / 1e9);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>10.2} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>10.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    min_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // DEW_BENCH_QUICK=1 also shortens the shim's measurement window so
        // `cargo bench` smoke runs stay fast.
        let quick = std::env::var_os("DEW_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty());
        Criterion {
            min_window: if quick {
                Duration::from_millis(5)
            } else {
                Duration::from_millis(50)
            },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sample = run_bench(10, self.min_window, |b| routine(b));
        report(name, sample, None);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            min_window: Duration::from_micros(200),
        }
    }

    #[test]
    fn group_benchmarks_measure_something() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64)).sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..64u64).map(black_box).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("lru").id, "lru");
    }
}
