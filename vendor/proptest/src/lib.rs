//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a crates.io registry, so this workspace
//! vendors the subset of the proptest API its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and `boxed`;
//! * strategies for integer ranges, tuples, [`Just`], [`any`],
//!   [`collection::vec`] and [`prop_oneof!`] unions;
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Semantics are a faithful simplification: every generated case is random
//! (seeded deterministically from the test name, so runs are reproducible)
//! and failures report the case number and message. Shrinking — proptest's
//! counterexample minimisation — is intentionally not implemented; a failing
//! case prints its seed context instead. That trade keeps the shim ~300
//! lines while preserving the tests' meaning: N random cases per property.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration, RNG and failure plumbing.

    /// Per-`proptest!` block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility with the real crate; this shim
        /// does not shrink, so the value is never read.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// A property failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic test RNG (xoshiro256++ seeded by splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `seed`.
        pub fn from_seed(mut seed: u64) -> Self {
            TestRng {
                s: [
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                    splitmix64(&mut seed),
                ],
            }
        }

        /// Seeds deterministically from a test name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each produced value and samples it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy, as returned by [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() as usize) % self.options.len();
            self.options[idx].sample(rng)
        }
    }

    /// Produces any value of `T` via [`crate::arbitrary::Arbitrary`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type, backing [`any`](crate::arbitrary::any).

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Produces vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(..)]` and any number of `#[test] fn` items whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                ::std::module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps(x in 0u32..10, y in (0u8..4).prop_map(|v| v * 2)) {
            prop_assert!(x < 10);
            prop_assert!(y % 2 == 0 && y < 8);
        }

        #[test]
        fn vec_and_oneof(
            v in prop::collection::vec(prop_oneof![0u64..5, 100u64..105], 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5 || (100..105).contains(&x)));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn flat_map_sizes(v in (1usize..8).prop_flat_map(|n| prop::collection::vec(0u8..=1, n))) {
            prop_assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 1, ..ProptestConfig::default() })]
            fn always_fails(x in 0u8..2) {
                let _ = x;
                prop_assert!(false, "deliberate");
            }
        }
        always_fails();
    }
}
