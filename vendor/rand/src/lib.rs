//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates.io registry, so this
//! workspace vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` over the primitive
//! integer and float types.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — so sequences
//! are high-quality and deterministic per seed, which is all the workload
//! generators and the seeded-random replacement policy require. Statistical
//! subtleties of the real crate (e.g. unbiased range rejection sampling) are
//! deliberately simplified; modulo bias at these range sizes is irrelevant
//! to trace synthesis.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed themselves from a `u64` state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A sample range over some output type, for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Output types for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 (as `rand`'s 64-bit `SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
