//! Miss-rate curves: the designer's view of a sweep.
//!
//! A *miss-rate curve* plots miss rate against cache size along one axis of
//! the configuration space (usually set count, at fixed associativity and
//! block size). Cache tuning flows like Janapsatya's — the paper's
//! motivation — read two things off these curves: the **knee** (the smallest
//! cache after which returns diminish) and the **saturation point** (where
//! the curve flattens into its compulsory-miss floor).

use dew_core::SweepOutcome;

/// One point of a miss-rate curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Number of sets.
    pub sets: u32,
    /// Total cache size in bytes.
    pub total_bytes: u64,
    /// Exact miss count.
    pub misses: u64,
    /// Miss rate in `0.0..=1.0`.
    pub miss_rate: f64,
}

/// A miss-rate curve along the set-count axis at fixed `(assoc, block)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRateCurve {
    /// Associativity held fixed.
    pub assoc: u32,
    /// Block size in bytes held fixed.
    pub block_bytes: u32,
    /// Points sorted by ascending set count.
    pub points: Vec<CurvePoint>,
}

impl MissRateCurve {
    /// Extracts the curve for `(assoc, block_bytes)` from a sweep; `None`
    /// when the sweep contains no such configurations.
    #[must_use]
    pub fn from_sweep(sweep: &SweepOutcome, assoc: u32, block_bytes: u32) -> Option<Self> {
        let mut points: Vec<CurvePoint> = sweep
            .iter()
            .filter(|c| c.assoc == assoc && c.block_bytes == block_bytes)
            .map(|c| CurvePoint {
                sets: c.sets,
                total_bytes: c.total_bytes(),
                misses: c.misses,
                miss_rate: if sweep.accesses() == 0 {
                    0.0
                } else {
                    c.misses as f64 / sweep.accesses() as f64
                },
            })
            .collect();
        if points.is_empty() {
            return None;
        }
        points.sort_by_key(|p| p.sets);
        Some(MissRateCurve {
            assoc,
            block_bytes,
            points,
        })
    }

    /// The knee: the point after which no further size step improves the
    /// miss rate by at least `threshold` (absolute delta). Robust against
    /// mid-curve plateaus, which would fool a "first flattening" rule.
    #[must_use]
    pub fn knee(&self, threshold: f64) -> CurvePoint {
        let mut knee_idx = 0;
        for (i, w) in self.points.windows(2).enumerate() {
            if w[0].miss_rate - w[1].miss_rate >= threshold {
                knee_idx = i + 1;
            }
        }
        self.points[knee_idx]
    }

    /// The smallest configuration within `tolerance` (relative) of the
    /// curve's best miss rate — "as good as the biggest cache, minus ε".
    #[must_use]
    pub fn smallest_within(&self, tolerance: f64) -> CurvePoint {
        let best = self
            .points
            .iter()
            .map(|p| p.miss_rate)
            .fold(f64::INFINITY, f64::min);
        let bound = best * (1.0 + tolerance.max(0.0)) + f64::EPSILON;
        *self
            .points
            .iter()
            .find(|p| p.miss_rate <= bound)
            .expect("the minimum itself always qualifies")
    }

    /// Renders the curve as CSV (`sets,total_bytes,misses,miss_rate`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("sets,total_bytes,misses,miss_rate\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{:.6}\n",
                p.sets, p.total_bytes, p.misses, p.miss_rate
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_core::{ConfigSpace, SweepRequest};
    use dew_trace::Record;

    fn sweep() -> SweepOutcome {
        // A looping workload over a ~1.2 KiB hot region with occasional far
        // references: miss rate falls with size until the working set fits
        // (4 KiB direct-mapped at 2^10 sets), then flattens.
        let records: Vec<Record> = (0..20_000u64)
            .map(|i| {
                if i % 13 == 0 {
                    // Never-reused noise at a 4 KiB stride: a compulsory-miss
                    // floor pinned to one set index, so no cache size can
                    // remove it and the curve truly flattens.
                    Record::read(0x10_0000 + i * 4096)
                } else {
                    Record::read((i % 300) * 4)
                }
            })
            .collect();
        let space = ConfigSpace::new((0, 10), (2, 2), (0, 1)).expect("valid");
        SweepRequest::new(&space)
            .threads(1)
            .run(&records)
            .expect("sweep")
    }

    #[test]
    fn curve_extraction_is_sorted_and_complete() {
        let s = sweep();
        let c = MissRateCurve::from_sweep(&s, 2, 4).expect("present");
        assert_eq!(c.points.len(), 11);
        assert!(c.points.windows(2).all(|w| w[0].sets < w[1].sets));
        assert!(
            MissRateCurve::from_sweep(&s, 16, 4).is_none(),
            "unswept assoc"
        );
    }

    #[test]
    fn curves_flatten_and_knee_is_found() {
        let s = sweep();
        let c = MissRateCurve::from_sweep(&s, 1, 4).expect("present");
        let first = c.points.first().expect("nonempty");
        let last = c.points.last().expect("nonempty");
        assert!(
            last.miss_rate < first.miss_rate,
            "bigger caches help this workload"
        );
        let knee = c.knee(0.005);
        assert!(knee.sets < last.sets, "knee below the largest cache");
        // Past the knee, every step is sub-threshold, so the knee sits near
        // the asymptote.
        assert!(knee.miss_rate <= last.miss_rate + 0.005 * c.points.len() as f64);
    }

    #[test]
    fn smallest_within_prefers_small_caches() {
        let s = sweep();
        let c = MissRateCurve::from_sweep(&s, 2, 4).expect("present");
        let tight = c.smallest_within(0.0);
        let loose = c.smallest_within(0.5);
        assert!(loose.sets <= tight.sets);
        let best = c
            .points
            .iter()
            .map(|p| p.miss_rate)
            .fold(f64::INFINITY, f64::min);
        assert!(tight.miss_rate <= best + 1e-12);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = sweep();
        let c = MissRateCurve::from_sweep(&s, 1, 4).expect("present");
        let csv = c.to_csv();
        assert_eq!(csv.lines().count(), 1 + c.points.len());
        assert!(csv.starts_with("sets,"));
    }
}
