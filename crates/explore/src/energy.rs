//! An analytic cache energy and timing model.
//!
//! The DEW paper motivates fast simulation with cache *tuning*: picking the
//! `(S, A, B)` that minimises energy/maximises performance for an embedded
//! application (Section 1, citing Janapsatya's exploration flow). This module
//! supplies the missing piece: a transparent, documented analytic model that
//! converts exact miss counts into energy and cycle estimates.
//!
//! The model is deliberately simple (CACTI-flavoured first-order terms, not a
//! circuit simulator) and fully parameterised, so its constants can be
//! recalibrated without touching the exploration code:
//!
//! * **dynamic read energy** — a set-associative cache reads `A` ways of
//!   `8·B`-bit data plus tags in parallel and drives a `log2(S)` decoder:
//!   `E_dyn = A·(c_data·8B + c_tag·t) + c_dec·log2(S)` pJ, with `t` the tag
//!   width for a 32-bit address space;
//! * **miss energy** — a miss fetches the whole block from memory:
//!   `E_miss = c_mem_static + c_mem·8B` pJ;
//! * **leakage** — proportional to the cache's total bits and to runtime:
//!   `P_leak = c_leak · bits` (pJ per cycle);
//! * **timing** — hit latency grows with capacity (1 cycle up to 4 KiB,
//!   +1 per 8× beyond), and a miss pays a fixed memory latency plus block
//!   transfer time over a 32-bit bus.

use std::fmt;

/// Geometry of a cache being evaluated (a subset of the simulator configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub assoc: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
}

impl Geometry {
    /// Total capacity in bytes.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.sets as u64 * self.assoc as u64 * self.block_bytes as u64
    }

    /// Total storage bits including tags and valid bits, for a 32-bit
    /// address space.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        let tag_bits = u64::from(self.tag_bits()) + 1; // +1 valid bit
        let data_bits = 8 * u64::from(self.block_bytes);
        u64::from(self.sets) * u64::from(self.assoc) * (data_bits + tag_bits)
    }

    /// Tag width in bits for a 32-bit address space.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        32u32
            .saturating_sub(self.sets.trailing_zeros())
            .saturating_sub(self.block_bytes.trailing_zeros())
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}s/{}w/{}B ({} B)",
            self.sets,
            self.assoc,
            self.block_bytes,
            self.total_bytes()
        )
    }
}

/// The analytic model's coefficients. See the module docs for the formulas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// pJ per data bit read per way.
    pub c_data: f64,
    /// pJ per tag bit read per way.
    pub c_tag: f64,
    /// pJ per decoder address bit.
    pub c_dec: f64,
    /// Fixed pJ per memory (miss) transaction.
    pub c_mem_static: f64,
    /// pJ per bit fetched from memory.
    pub c_mem: f64,
    /// Leakage pJ per storage bit per cycle.
    pub c_leak: f64,
    /// Memory latency in cycles charged to every miss.
    pub mem_latency_cycles: u64,
    /// Bus width in bytes for block refills.
    pub bus_bytes: u32,
}

impl Default for EnergyModel {
    /// Coefficients in the vicinity of published 65 nm L1 numbers; absolute
    /// values matter less than their ratios for ranking configurations.
    fn default() -> Self {
        EnergyModel {
            c_data: 0.009,
            c_tag: 0.011,
            c_dec: 0.4,
            c_mem_static: 180.0,
            c_mem: 0.16,
            c_leak: 1.2e-6,
            mem_latency_cycles: 50,
            bus_bytes: 4,
        }
    }
}

impl EnergyModel {
    /// Dynamic energy of one cache access, in pJ.
    #[must_use]
    pub fn access_energy_pj(&self, g: Geometry) -> f64 {
        let ways = f64::from(g.assoc);
        let data_bits = 8.0 * f64::from(g.block_bytes);
        let tag_bits = f64::from(g.tag_bits());
        let dec_bits = f64::from(g.sets.trailing_zeros().max(1));
        ways * (self.c_data * data_bits + self.c_tag * tag_bits) + self.c_dec * dec_bits
    }

    /// Energy of one miss's memory refill, in pJ.
    #[must_use]
    pub fn miss_energy_pj(&self, g: Geometry) -> f64 {
        self.c_mem_static + self.c_mem * 8.0 * f64::from(g.block_bytes)
    }

    /// Hit latency in cycles: 1 up to 4 KiB, plus one per 8× capacity beyond.
    #[must_use]
    pub fn hit_cycles(&self, g: Geometry) -> u64 {
        let mut bytes = g.total_bytes();
        let mut cycles = 1;
        while bytes > 4096 {
            bytes /= 8;
            cycles += 1;
        }
        cycles
    }

    /// Miss penalty in cycles: memory latency plus block transfer.
    #[must_use]
    pub fn miss_penalty_cycles(&self, g: Geometry) -> u64 {
        self.mem_latency_cycles + u64::from(g.block_bytes.div_ceil(self.bus_bytes.max(1)))
    }

    /// Total runtime in cycles for `accesses` requests of which `misses`
    /// missed.
    #[must_use]
    pub fn total_cycles(&self, g: Geometry, accesses: u64, misses: u64) -> u64 {
        accesses * self.hit_cycles(g) + misses * self.miss_penalty_cycles(g)
    }

    /// Total energy in nanojoules: dynamic + refill + leakage over runtime.
    #[must_use]
    pub fn total_energy_nj(&self, g: Geometry, accesses: u64, misses: u64) -> f64 {
        let dynamic = accesses as f64 * self.access_energy_pj(g);
        let refill = misses as f64 * self.miss_energy_pj(g);
        let leak =
            self.c_leak * g.total_bits() as f64 * self.total_cycles(g, accesses, misses) as f64;
        (dynamic + refill + leak) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(sets: u32, assoc: u32, block: u32) -> Geometry {
        Geometry {
            sets,
            assoc,
            block_bytes: block,
        }
    }

    #[test]
    fn geometry_accounting() {
        let c = g(64, 2, 16);
        assert_eq!(c.total_bytes(), 2048);
        assert_eq!(c.tag_bits(), 32 - 6 - 4);
        // data: 2048*8 bits; tags: 64*2*(22+1) bits.
        assert_eq!(c.total_bits(), 2048 * 8 + 128 * 23);
    }

    #[test]
    fn access_energy_grows_with_associativity_and_block() {
        let m = EnergyModel::default();
        assert!(m.access_energy_pj(g(64, 4, 16)) > m.access_energy_pj(g(64, 2, 16)));
        assert!(m.access_energy_pj(g(64, 2, 32)) > m.access_energy_pj(g(64, 2, 16)));
    }

    #[test]
    fn miss_energy_grows_with_block() {
        let m = EnergyModel::default();
        assert!(m.miss_energy_pj(g(1, 1, 64)) > m.miss_energy_pj(g(1, 1, 4)));
    }

    #[test]
    fn hit_latency_steps_with_capacity() {
        let m = EnergyModel::default();
        assert_eq!(m.hit_cycles(g(64, 2, 16)), 1); // 2 KiB
        assert_eq!(m.hit_cycles(g(256, 2, 16)), 2); // 8 KiB
        assert!(m.hit_cycles(g(1 << 14, 16, 64)) > 3); // 16 MiB
    }

    #[test]
    fn fewer_misses_never_cost_more() {
        let m = EnergyModel::default();
        let c = g(128, 2, 16);
        let e_hi = m.total_energy_nj(c, 1_000_000, 100_000);
        let e_lo = m.total_energy_nj(c, 1_000_000, 10_000);
        assert!(e_lo < e_hi);
        assert!(m.total_cycles(c, 1_000_000, 10_000) < m.total_cycles(c, 1_000_000, 100_000));
    }

    #[test]
    fn miss_penalty_includes_transfer() {
        let m = EnergyModel::default();
        assert_eq!(m.miss_penalty_cycles(g(1, 1, 4)), 50 + 1);
        assert_eq!(m.miss_penalty_cycles(g(1, 1, 64)), 50 + 16);
    }
}
