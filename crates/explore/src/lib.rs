//! Cache design-space exploration on top of DEW sweeps.
//!
//! The DEW paper's motivation (Section 1) is tuning the level-1 cache of an
//! embedded processor: the exact per-configuration miss counts that DEW
//! produces in a single trace pass feed an energy/performance model, and the
//! designer picks from the resulting Pareto front. This crate supplies that
//! last mile:
//!
//! * [`ExplorationSpace`] / [`explore_trace`] — the exploration engine: one
//!   fused sweep per policy (one trace traversal per block size), analytic
//!   scoring, and the miss-rate × energy × size Pareto frontier with an
//!   exhaustive and a monotonicity-pruned extraction mode ([`ParetoMode`]),
//!   reported with JSON/CSV emitters ([`ExplorationReport`]);
//! * [`EnergyModel`] / [`Geometry`] — a transparent analytic energy & timing
//!   model (documented first-order formulas, recalibratable constants);
//! * [`evaluate_sweep`] — turns a [`dew_core::SweepOutcome`] into
//!   [`Evaluation`]s (energy, cycles, miss rate, EDP);
//! * [`pareto_front`], [`best_edp_under`], [`fastest_under`] — selection
//!   helpers for the usual embedded design questions;
//! * [`MissRateCurve`] — the designer's per-axis view (knee and saturation
//!   detection).
//!
//! # Examples
//!
//! End-to-end exploration — the one-call path (`dew explore` in the CLI):
//!
//! ```
//! use dew_core::{ConfigSpace, TreePolicy};
//! use dew_explore::{explore_trace, EnergyModel, ExplorationSpace, ParetoMode};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! let trace: Vec<Record> = (0..5_000u64).map(|i| Record::read((i % 700) * 4)).collect();
//! let space = ExplorationSpace::new(ConfigSpace::new((0, 4), (2, 4), (0, 1))?)
//!     .with_policies(&[TreePolicy::Fifo, TreePolicy::Lru])
//!     .with_budget(Some(16 * 1024));
//! let report = explore_trace(&space, &trace, &EnergyModel::default(), ParetoMode::Pruned, 1)?;
//! assert!(!report.frontier().is_empty());
//! // 3 block sizes x 2 policies: exactly 6 fused trace traversals.
//! assert_eq!(report.trace_traversals(), 6);
//! # Ok(())
//! # }
//! ```
//!
//! Or piecewise, when the sweep is shared with other consumers:
//!
//! ```
//! use dew_core::{sweep_trace, ConfigSpace, DewOptions};
//! use dew_explore::{evaluate_sweep, pareto_front, EnergyModel};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! let space = ConfigSpace::new((0, 4), (2, 4), (0, 1))?;
//! let trace: Vec<Record> = (0..5_000u64).map(|i| Record::read((i % 700) * 4)).collect();
//! let sweep = sweep_trace(&space, &trace, DewOptions::default(), 1)?;
//! let evals = evaluate_sweep(&sweep, &EnergyModel::default());
//! let front = pareto_front(&evals);
//! assert!(!front.is_empty() && front.len() <= evals.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curves;
mod dse;
mod energy;
mod explore;

pub use curves::{CurvePoint, MissRateCurve};
pub use dse::{
    explore_trace, explore_trace_with_shards, score_sweeps, ExplorationPoint, ExplorationReport,
    ExplorationSpace, ParetoMode,
};
pub use energy::{EnergyModel, Geometry};
pub use explore::{best_edp_under, evaluate_sweep, fastest_under, pareto_front, Evaluation};
