//! Turning sweep results into design decisions: evaluation, Pareto
//! filtering, and constrained selection.

use std::fmt;

use dew_core::SweepOutcome;

use crate::energy::{EnergyModel, Geometry};

/// One configuration's figures of merit under an [`EnergyModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The cache geometry evaluated.
    pub geometry: Geometry,
    /// Requests simulated.
    pub accesses: u64,
    /// Exact misses from the sweep.
    pub misses: u64,
    /// Estimated total energy in nJ.
    pub energy_nj: f64,
    /// Estimated runtime in cycles.
    pub cycles: u64,
}

impl Evaluation {
    /// Miss rate in `0.0..=1.0` (`0.0` for an empty run).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Energy-delay product (nJ · cycles), the classic single-number
    /// embedded figure of merit.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_nj * self.cycles as f64
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: miss rate {:.4}, {:.1} nJ, {} cycles",
            self.geometry,
            self.miss_rate(),
            self.energy_nj,
            self.cycles
        )
    }
}

/// Evaluates every configuration of a DEW sweep under `model`.
///
/// # Examples
///
/// ```
/// use dew_core::{sweep_trace, ConfigSpace, DewOptions};
/// use dew_explore::{evaluate_sweep, EnergyModel};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// let space = ConfigSpace::new((0, 3), (2, 3), (0, 1))?;
/// let trace: Vec<Record> = (0..2000u64).map(|i| Record::read((i % 300) * 4)).collect();
/// let sweep = sweep_trace(&space, &trace, DewOptions::default(), 1)?;
/// let evals = evaluate_sweep(&sweep, &EnergyModel::default());
/// assert_eq!(evals.len() as u64, space.config_count());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn evaluate_sweep(sweep: &SweepOutcome, model: &EnergyModel) -> Vec<Evaluation> {
    let mut evals: Vec<Evaluation> = sweep
        .iter()
        .map(|c| {
            let geometry = Geometry {
                sets: c.sets,
                assoc: c.assoc,
                block_bytes: c.block_bytes,
            };
            Evaluation {
                geometry,
                accesses: sweep.accesses(),
                misses: c.misses,
                energy_nj: model.total_energy_nj(geometry, sweep.accesses(), c.misses),
                cycles: model.total_cycles(geometry, sweep.accesses(), c.misses),
            }
        })
        .collect();
    evals.sort_by_key(|e| (e.geometry.block_bytes, e.geometry.assoc, e.geometry.sets));
    evals
}

/// The Pareto-optimal subset minimising `(energy, cycles)`.
///
/// A configuration survives unless some other configuration is at least as
/// good on both objectives and strictly better on one.
#[must_use]
pub fn pareto_front(evals: &[Evaluation]) -> Vec<Evaluation> {
    let mut front: Vec<Evaluation> = Vec::new();
    for &e in evals {
        let dominated = evals.iter().any(|o| {
            (o.energy_nj < e.energy_nj && o.cycles <= e.cycles)
                || (o.energy_nj <= e.energy_nj && o.cycles < e.cycles)
        });
        if !dominated {
            front.push(e);
        }
    }
    front.sort_by(|a, b| {
        a.energy_nj
            .partial_cmp(&b.energy_nj)
            .expect("finite energies")
    });
    front
}

/// The minimum-EDP configuration whose capacity does not exceed
/// `max_bytes`; `None` if nothing fits.
#[must_use]
pub fn best_edp_under(evals: &[Evaluation], max_bytes: u64) -> Option<Evaluation> {
    evals
        .iter()
        .filter(|e| e.geometry.total_bytes() <= max_bytes)
        .min_by(|a, b| a.edp().partial_cmp(&b.edp()).expect("finite edp"))
        .copied()
}

/// The fastest (fewest cycles) configuration within `max_bytes`; ties broken
/// by lower energy. `None` if nothing fits.
#[must_use]
pub fn fastest_under(evals: &[Evaluation], max_bytes: u64) -> Option<Evaluation> {
    evals
        .iter()
        .filter(|e| e.geometry.total_bytes() <= max_bytes)
        .min_by(|a, b| {
            a.cycles.cmp(&b.cycles).then(
                a.energy_nj
                    .partial_cmp(&b.energy_nj)
                    .expect("finite energies"),
            )
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(sets: u32, energy: f64, cycles: u64) -> Evaluation {
        Evaluation {
            geometry: Geometry {
                sets,
                assoc: 1,
                block_bytes: 4,
            },
            accesses: 100,
            misses: 10,
            energy_nj: energy,
            cycles,
        }
    }

    #[test]
    fn pareto_front_filters_dominated_points() {
        let evals = vec![
            eval(1, 10.0, 100),  // on the front
            eval(2, 12.0, 90),   // on the front
            eval(4, 12.0, 95),   // dominated by (12.0, 90)
            eval(8, 9.0, 120),   // on the front
            eval(16, 20.0, 200), // dominated by everything
        ];
        let front = pareto_front(&evals);
        let sets: Vec<u32> = front.iter().map(|e| e.geometry.sets).collect();
        assert_eq!(sets, vec![8, 1, 2], "sorted by energy");
    }

    #[test]
    fn pareto_front_keeps_duplicates_of_equal_merit() {
        let evals = vec![eval(1, 10.0, 100), eval(2, 10.0, 100)];
        assert_eq!(pareto_front(&evals).len(), 2);
    }

    #[test]
    fn constrained_selection_respects_capacity() {
        let evals = vec![eval(1, 10.0, 100), eval(1024, 1.0, 10)];
        // 1024 sets x 4 B = 4096 B, over a 1 KiB budget:
        let best = best_edp_under(&evals, 1024).expect("something fits");
        assert_eq!(best.geometry.sets, 1);
        assert!(best_edp_under(&evals, 1).is_none());
        let fast = fastest_under(&evals, 1 << 20).expect("fits");
        assert_eq!(fast.geometry.sets, 1024);
    }

    #[test]
    fn metrics_are_consistent() {
        let e = eval(1, 5.0, 50);
        assert!((e.miss_rate() - 0.1).abs() < 1e-12);
        assert!((e.edp() - 250.0).abs() < 1e-9);
        let empty = Evaluation { accesses: 0, ..e };
        assert_eq!(empty.miss_rate(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!eval(4, 1.0, 1).to_string().is_empty());
    }
}
