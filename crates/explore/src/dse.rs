//! The design-space exploration engine: enumerate, sweep, score, and
//! extract the Pareto frontier — the paper's actual use case.
//!
//! The DEW paper motivates fast simulation as the *inner loop* of cache
//! tuning (Section 1, citing Janapsatya's exploration flow); the related
//! CIPARSim/NVSim-family work frames single-pass simulation the same way.
//! This module is the outer loop: an [`ExplorationSpace`] names the
//! `(sets, assoc, block, policy)` candidates, [`explore_trace`] drives them
//! through the fused [`dew_core::SweepRequest`] scheduler (one decode and
//! one trace traversal per block size **per policy**, never per
//! configuration), scores every point under an [`EnergyModel`], and
//! extracts the three-objective Pareto frontier
//! (miss rate × energy × size).
//!
//! # Frontier extraction: exhaustive vs pruned
//!
//! [`ParetoMode::Exhaustive`] runs the textbook pairwise dominance scan
//! over all evaluated points. [`ParetoMode::Pruned`] first applies a
//! *monotonicity prefilter* that needs no pairwise work: at fixed
//! `(policy, sets, block)`, a higher associativity strictly increases
//! capacity, so whenever the fused sweep's exact counts show its misses
//! did **not** improve on a lower associativity whose energy is no worse,
//! the wider configuration is strictly dominated and can be dropped before
//! the quadratic scan. The rule checks the *measured* misses and energies
//! (FIFO can violate miss-rate monotonicity — Belady's anomaly — so
//! monotonicity is verified per point, never assumed), which makes the
//! pruned frontier provably identical to the exhaustive one: every pruned
//! point is strictly dominated by a surviving point, and removing strictly
//! dominated points never changes a Pareto frontier. The equality is also
//! property-tested across random traces and spaces
//! (`tests/proptest_explore.rs`).

use std::fmt;
use std::time::Instant;

use dew_core::{ConfigSpace, DewError, ShardSpec, SweepOutcome, SweepRequest, TreePolicy};
use dew_trace::Record;

use crate::energy::EnergyModel;
use crate::explore::{evaluate_sweep, Evaluation};

/// How [`explore_trace`] extracts the Pareto frontier. See the module docs
/// for the soundness argument; both modes produce the identical frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParetoMode {
    /// Pairwise dominance scan over every evaluated point.
    Exhaustive,
    /// Associativity-monotonicity prefilter, then the pairwise scan over
    /// the survivors (the default).
    #[default]
    Pruned,
}

impl fmt::Display for ParetoMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParetoMode::Exhaustive => f.write_str("exhaustive"),
            ParetoMode::Pruned => f.write_str("pruned"),
        }
    }
}

/// The candidate set of an exploration: a geometric [`ConfigSpace`] crossed
/// with one or two replacement policies, optionally capped by a capacity
/// budget.
///
/// # Examples
///
/// ```
/// use dew_core::{ConfigSpace, TreePolicy};
/// use dew_explore::ExplorationSpace;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// let space = ExplorationSpace::new(ConfigSpace::new((0, 6), (2, 4), (0, 2))?)
///     .with_policies(&[TreePolicy::Fifo, TreePolicy::Lru])
///     .with_budget(Some(8 * 1024));
/// assert_eq!(space.candidate_count(), 2 * 7 * 3 * 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorationSpace {
    space: ConfigSpace,
    policies: Vec<TreePolicy>,
    max_bytes: Option<u64>,
}

impl ExplorationSpace {
    /// An exploration over `space` under FIFO (the paper's policy), with no
    /// capacity budget.
    #[must_use]
    pub fn new(space: ConfigSpace) -> Self {
        ExplorationSpace {
            space,
            policies: vec![TreePolicy::Fifo],
            max_bytes: None,
        }
    }

    /// Replaces the policy list. Duplicates are removed, order is kept;
    /// an empty list falls back to FIFO.
    #[must_use]
    pub fn with_policies(mut self, policies: &[TreePolicy]) -> Self {
        self.policies.clear();
        for &p in policies {
            if !self.policies.contains(&p) {
                self.policies.push(p);
            }
        }
        if self.policies.is_empty() {
            self.policies.push(TreePolicy::Fifo);
        }
        self
    }

    /// Sets (or clears) the capacity budget: configurations whose total
    /// size exceeds `max_bytes` are filtered out after the sweep, before
    /// scoring — they still cost nothing extra to simulate, since the fused
    /// kernels cover whole set/associativity ranges at once.
    #[must_use]
    pub fn with_budget(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The geometric space being explored.
    #[must_use]
    pub const fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// The policies being explored, in evaluation order.
    #[must_use]
    pub fn policies(&self) -> &[TreePolicy] {
        &self.policies
    }

    /// The capacity budget, if any.
    #[must_use]
    pub const fn budget(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Number of `(geometry, policy)` candidates before budget filtering.
    #[must_use]
    pub fn candidate_count(&self) -> u64 {
        self.space.config_count() * self.policies.len() as u64
    }
}

/// One scored candidate of an exploration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorationPoint {
    /// The replacement policy this candidate was simulated under.
    pub policy: TreePolicy,
    /// The figures of merit (geometry, misses, energy, cycles).
    pub evaluation: Evaluation,
    /// `true` when the point is on the miss-rate × energy × size Pareto
    /// frontier of its exploration.
    pub on_frontier: bool,
}

impl ExplorationPoint {
    /// The objective triple the frontier minimises. Miss count stands in
    /// for miss rate: every point of one exploration shares the trace, so
    /// the orderings are identical and the comparison stays exact.
    fn objectives(&self) -> (u64, f64, u64) {
        (
            self.evaluation.misses,
            self.evaluation.energy_nj,
            self.evaluation.geometry.total_bytes(),
        )
    }

    /// `true` when `self` is at least as good as `other` on all three
    /// objectives and strictly better on at least one.
    fn dominates(&self, other: &ExplorationPoint) -> bool {
        let (m_a, e_a, b_a) = self.objectives();
        let (m_b, e_b, b_b) = other.objectives();
        m_a <= m_b && e_a <= e_b && b_a <= b_b && (m_a < m_b || e_a < e_b || b_a < b_b)
    }
}

impl fmt::Display for ExplorationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]{}",
            self.evaluation,
            self.policy,
            if self.on_frontier { " *" } else { "" }
        )
    }
}

/// The complete output of one [`explore_trace`] run: every scored point,
/// the frontier, and an honest account of the work performed.
#[derive(Debug, Clone)]
pub struct ExplorationReport {
    mode: ParetoMode,
    accesses: u64,
    trace_traversals: u64,
    candidates: u64,
    over_budget: u64,
    pruned_dominated: u64,
    sweep_seconds: f64,
    /// All budget-surviving points, sorted by (policy order, block, assoc,
    /// sets); `on_frontier` marks the Pareto subset.
    points: Vec<ExplorationPoint>,
}

impl ExplorationReport {
    /// Requests in the explored trace.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// How [`explore_trace`] extracted the frontier.
    #[must_use]
    pub const fn mode(&self) -> ParetoMode {
        self.mode
    }

    /// Total trace traversals performed by the underlying fused sweeps —
    /// one per block size per policy, never per configuration
    /// ([`SweepOutcome::trace_traversals`] summed over policies).
    #[must_use]
    pub const fn trace_traversals(&self) -> u64 {
        self.trace_traversals
    }

    /// `(geometry, policy)` candidates enumerated (before the budget).
    #[must_use]
    pub const fn candidates(&self) -> u64 {
        self.candidates
    }

    /// Candidates filtered out by the capacity budget.
    #[must_use]
    pub const fn over_budget(&self) -> u64 {
        self.over_budget
    }

    /// Points the monotonicity prefilter removed before the pairwise scan
    /// (always 0 in [`ParetoMode::Exhaustive`]).
    #[must_use]
    pub const fn pruned_dominated(&self) -> u64 {
        self.pruned_dominated
    }

    /// Wall-clock seconds spent in the fused sweeps (simulation only, not
    /// scoring or frontier extraction).
    #[must_use]
    pub const fn sweep_seconds(&self) -> f64 {
        self.sweep_seconds
    }

    /// Every scored point, sorted by (policy order, block, assoc, sets).
    #[must_use]
    pub fn points(&self) -> &[ExplorationPoint] {
        &self.points
    }

    /// The Pareto-frontier points, sorted by ascending energy.
    #[must_use]
    pub fn frontier(&self) -> Vec<ExplorationPoint> {
        let mut front: Vec<ExplorationPoint> = self
            .points
            .iter()
            .filter(|p| p.on_frontier)
            .copied()
            .collect();
        front.sort_by(|a, b| {
            a.evaluation
                .energy_nj
                .partial_cmp(&b.evaluation.energy_nj)
                .expect("finite energies")
        });
        front
    }

    /// The scored points of one policy, for the per-policy selection
    /// helpers ([`crate::best_edp_under`], [`crate::fastest_under`]).
    #[must_use]
    pub fn evaluations(&self, policy: TreePolicy) -> Vec<Evaluation> {
        self.points
            .iter()
            .filter(|p| p.policy == policy)
            .map(|p| p.evaluation)
            .collect()
    }

    /// Renders the full report as a self-contained JSON document (points
    /// array with a `pareto` flag per point, plus the work accounting).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"accesses\": {},", self.accesses);
        let _ = writeln!(out, "  \"trace_traversals\": {},", self.trace_traversals);
        let _ = writeln!(out, "  \"candidates\": {},", self.candidates);
        let _ = writeln!(out, "  \"over_budget\": {},", self.over_budget);
        let _ = writeln!(out, "  \"pruned_dominated\": {},", self.pruned_dominated);
        let _ = writeln!(out, "  \"sweep_seconds\": {:.6},", self.sweep_seconds);
        let _ = writeln!(
            out,
            "  \"frontier_size\": {},",
            self.points.iter().filter(|p| p.on_frontier).count()
        );
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let e = &p.evaluation;
            let _ = writeln!(
                out,
                "    {{\"policy\": \"{}\", \"sets\": {}, \"assoc\": {}, \
                 \"block_bytes\": {}, \"bytes\": {}, \"misses\": {}, \
                 \"miss_rate\": {:.6}, \"energy_nj\": {:.3}, \"cycles\": {}, \
                 \"pareto\": {}}}{}",
                p.policy,
                e.geometry.sets,
                e.geometry.assoc,
                e.geometry.block_bytes,
                e.geometry.total_bytes(),
                e.misses,
                e.miss_rate(),
                e.energy_nj,
                e.cycles,
                p.on_frontier,
                if i + 1 < self.points.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders every point as CSV
    /// (`policy,sets,assoc,block_bytes,bytes,misses,miss_rate,energy_nj,cycles,pareto`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "policy,sets,assoc,block_bytes,bytes,misses,miss_rate,energy_nj,cycles,pareto\n",
        );
        for p in &self.points {
            let e = &p.evaluation;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.6},{:.3},{},{}",
                p.policy,
                e.geometry.sets,
                e.geometry.assoc,
                e.geometry.block_bytes,
                e.geometry.total_bytes(),
                e.misses,
                e.miss_rate(),
                e.energy_nj,
                e.cycles,
                p.on_frontier
            );
        }
        out
    }
}

/// Explores every candidate of `exploration` over `records`: one fused
/// sweep per policy (one decode + one trace traversal per block size),
/// scoring under `model`, frontier extraction per `mode`.
///
/// `threads` is forwarded to [`dew_core::SweepRequest::threads`]
/// (0 = auto).
///
/// # Errors
///
/// [`DewError`] as [`dew_core::SweepRequest::run`] (unsound options are
/// impossible here — every policy preset validates — though a space wider
/// than a policy's lane capacity, e.g. beyond 64-way under tree-PLRU, is
/// still rejected).
///
/// # Examples
///
/// ```
/// use dew_core::ConfigSpace;
/// use dew_explore::{explore_trace, EnergyModel, ExplorationSpace, ParetoMode};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// let trace: Vec<Record> = (0..3_000u64).map(|i| Record::read((i % 400) * 4)).collect();
/// let space = ExplorationSpace::new(ConfigSpace::new((0, 4), (2, 3), (0, 1))?);
/// let report = explore_trace(&space, &trace, &EnergyModel::default(), ParetoMode::Pruned, 1)?;
/// // 5 set counts x 2 block sizes x 2 associativities, FIFO only; the
/// // monotonicity prefilter drops strictly dominated points up front and
/// // accounts for them in `pruned_dominated`.
/// assert_eq!(
///     report.points().len() as u64 + report.pruned_dominated(),
///     space.candidate_count()
/// );
/// // Two block sizes, one policy: exactly two fused trace traversals.
/// assert_eq!(report.trace_traversals(), 2);
/// assert!(!report.frontier().is_empty());
/// # Ok(())
/// # }
/// ```
pub fn explore_trace(
    exploration: &ExplorationSpace,
    records: &[Record],
    model: &EnergyModel,
    mode: ParetoMode,
    threads: usize,
) -> Result<ExplorationReport, DewError> {
    explore_trace_with_shards(exploration, records, model, mode, threads, None)
}

/// [`explore_trace`] with the underlying sweeps sharded per `spec` (see
/// `dew_core::SweepRequest::sharded`). With `ShardMode::SnapshotHandoff`
/// — the mode the CLI's `--shards` selects — every score is computed from
/// miss counts bit-identical to the unsharded sweep, so the frontier is
/// unchanged; the sharding only bounds per-traversal memory. `None` (or
/// `shards <= 1`) is exactly [`explore_trace`].
///
/// # Errors
///
/// As [`explore_trace`].
pub fn explore_trace_with_shards(
    exploration: &ExplorationSpace,
    records: &[Record],
    model: &EnergyModel,
    mode: ParetoMode,
    threads: usize,
    spec: Option<ShardSpec>,
) -> Result<ExplorationReport, DewError> {
    let start = Instant::now();
    let mut sweeps: Vec<SweepOutcome> = Vec::with_capacity(exploration.policies.len());
    for &policy in &exploration.policies {
        let mut request = SweepRequest::new(&exploration.space)
            .policy(policy)
            .threads(threads);
        if let Some(spec) = spec {
            request = request.sharded(spec);
        }
        sweeps.push(request.run(records)?);
    }
    let sweep_seconds = start.elapsed().as_secs_f64();
    Ok(score_sweeps(
        exploration,
        &sweeps,
        model,
        mode,
        sweep_seconds,
    ))
}

/// The scoring + frontier half of [`explore_trace`], split out so callers
/// who already hold [`SweepOutcome`]s (one per policy, all over the same
/// trace) can re-score them under different models or modes without
/// re-simulating.
#[must_use]
pub fn score_sweeps(
    exploration: &ExplorationSpace,
    sweeps: &[SweepOutcome],
    model: &EnergyModel,
    mode: ParetoMode,
    sweep_seconds: f64,
) -> ExplorationReport {
    let mut points: Vec<ExplorationPoint> = Vec::new();
    let mut over_budget = 0u64;
    let mut trace_traversals = 0u64;
    for sweep in sweeps {
        trace_traversals += sweep.trace_traversals();
        for evaluation in evaluate_sweep(sweep, model) {
            if exploration
                .max_bytes
                .is_some_and(|cap| evaluation.geometry.total_bytes() > cap)
            {
                over_budget += 1;
                continue;
            }
            points.push(ExplorationPoint {
                policy: sweep.policy(),
                evaluation,
                on_frontier: false,
            });
        }
    }

    let pruned_dominated = match mode {
        ParetoMode::Exhaustive => 0,
        ParetoMode::Pruned => prune_by_assoc_monotonicity(&mut points),
    };
    mark_frontier(&mut points);

    // Stable report order: policy in evaluation order, then geometry.
    let policy_rank = |p: TreePolicy| {
        exploration
            .policies
            .iter()
            .position(|&q| q == p)
            .unwrap_or(usize::MAX)
    };
    points.sort_by_key(|p| {
        (
            policy_rank(p.policy),
            p.evaluation.geometry.block_bytes,
            p.evaluation.geometry.assoc,
            p.evaluation.geometry.sets,
        )
    });

    ExplorationReport {
        mode,
        accesses: sweeps.first().map_or(0, SweepOutcome::accesses),
        trace_traversals,
        candidates: exploration.candidate_count(),
        over_budget,
        pruned_dominated,
        sweep_seconds,
        points,
    }
}

/// The monotonicity prefilter: drop every point strictly dominated by a
/// lower-associativity point of the same `(policy, sets, block)` column —
/// the column shares its exact miss counts with one fused traversal, so
/// the check is a handful of comparisons per point. Returns how many
/// points were removed. Only *strictly* dominated points are dropped, so
/// equal-merit duplicates survive exactly as they do in the exhaustive
/// scan.
fn prune_by_assoc_monotonicity(points: &mut Vec<ExplorationPoint>) -> u64 {
    // Group columns by sorting: (policy, sets, block) together, ascending
    // associativity within.
    points.sort_by_key(|p| {
        (
            p.policy == TreePolicy::Lru,
            p.evaluation.geometry.sets,
            p.evaluation.geometry.block_bytes,
            p.evaluation.geometry.assoc,
        )
    });
    let before = points.len();
    let mut kept: Vec<ExplorationPoint> = Vec::with_capacity(before);
    let mut column_start = 0usize;
    let column_key = |p: &ExplorationPoint| {
        (
            p.policy,
            p.evaluation.geometry.sets,
            p.evaluation.geometry.block_bytes,
        )
    };
    for &p in points.iter() {
        let same_column = kept
            .get(column_start)
            .is_some_and(|q| column_key(q) == column_key(&p));
        if !same_column {
            column_start = kept.len();
        }
        // A narrower kept column member with no more misses and no more
        // energy strictly dominates `p` (capacity is strictly smaller).
        // Checking only kept members is enough: domination within a column
        // is transitive through the componentwise comparison.
        let dominated = kept[column_start..].iter().any(|q| {
            q.evaluation.misses <= p.evaluation.misses
                && q.evaluation.energy_nj <= p.evaluation.energy_nj
        });
        if !dominated {
            kept.push(p);
        }
    }
    let removed = (before - kept.len()) as u64;
    *points = kept;
    removed
}

/// Marks the Pareto-optimal points: a point survives unless another point
/// dominates it ([`ExplorationPoint::dominates`]); ties on all three
/// objectives keep both, matching [`crate::pareto_front`]'s semantics.
fn mark_frontier(points: &mut [ExplorationPoint]) {
    for i in 0..points.len() {
        let p = points[i];
        points[i].on_frontier = !points.iter().any(|q| q.dominates(&p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64, footprint: u64) -> Vec<Record> {
        (0..n).map(|i| Record::read((i % footprint) * 4)).collect()
    }

    fn space(set_hi: u32, block: (u32, u32), assoc_hi: u32) -> ExplorationSpace {
        ExplorationSpace::new(ConfigSpace::new((0, set_hi), block, (0, assoc_hi)).expect("valid"))
    }

    #[test]
    fn explore_covers_all_candidates_and_counts_traversals() {
        let trace = records(4_000, 700);
        let exploration = space(4, (2, 4), 2).with_policies(&[TreePolicy::Fifo, TreePolicy::Lru]);
        let report = explore_trace(
            &exploration,
            &trace,
            &EnergyModel::default(),
            ParetoMode::Exhaustive,
            1,
        )
        .expect("explore");
        assert_eq!(report.points().len() as u64, exploration.candidate_count());
        assert_eq!(report.candidates(), 2 * 5 * 3 * 3);
        // 3 block sizes x 2 policies, one fused traversal each.
        assert_eq!(report.trace_traversals(), 6);
        assert_eq!(report.over_budget(), 0);
        assert_eq!(report.pruned_dominated(), 0, "exhaustive never prunes");
        assert_eq!(report.accesses(), 4_000);
    }

    #[test]
    fn pruned_and_exhaustive_frontiers_are_identical() {
        let trace = records(6_000, 900);
        let exploration = space(5, (2, 4), 2).with_policies(&[TreePolicy::Fifo, TreePolicy::Lru]);
        let model = EnergyModel::default();
        let a = explore_trace(&exploration, &trace, &model, ParetoMode::Exhaustive, 1)
            .expect("exhaustive");
        let b = explore_trace(&exploration, &trace, &model, ParetoMode::Pruned, 1).expect("pruned");
        let key = |p: &ExplorationPoint| {
            (
                p.policy == TreePolicy::Lru,
                p.evaluation.geometry.block_bytes,
                p.evaluation.geometry.assoc,
                p.evaluation.geometry.sets,
            )
        };
        let mut fa: Vec<_> = a.frontier();
        let mut fb: Vec<_> = b.frontier();
        fa.sort_by_key(key);
        fb.sort_by_key(key);
        assert_eq!(fa, fb, "pruning must not change the frontier");
        assert!(
            b.pruned_dominated() > 0,
            "a multi-assoc space should prune something"
        );
        assert!(b.points().len() < a.points().len());
    }

    #[test]
    fn every_off_frontier_point_is_dominated() {
        let trace = records(3_000, 300);
        let exploration = space(5, (2, 3), 2);
        let report = explore_trace(
            &exploration,
            &trace,
            &EnergyModel::default(),
            ParetoMode::Exhaustive,
            1,
        )
        .expect("explore");
        let frontier = report.frontier();
        assert!(!frontier.is_empty());
        for p in report.points() {
            if !p.on_frontier {
                assert!(
                    frontier.iter().any(|f| f.dominates(p)),
                    "{p} is off the frontier but undominated"
                );
            }
        }
    }

    #[test]
    fn budget_filters_and_is_counted() {
        let trace = records(1_000, 100);
        let cap = 1024u64;
        let capped = space(6, (2, 3), 2).with_budget(Some(cap));
        let report = explore_trace(
            &capped,
            &trace,
            &EnergyModel::default(),
            ParetoMode::Pruned,
            1,
        )
        .expect("explore");
        assert!(report.over_budget() > 0);
        assert_eq!(
            report.points().len() as u64 + report.over_budget() + report.pruned_dominated(),
            capped.candidate_count()
        );
        for p in report.points() {
            assert!(p.evaluation.geometry.total_bytes() <= cap);
        }
    }

    #[test]
    fn policies_deduplicate_and_default_to_fifo() {
        let s = ConfigSpace::new((0, 1), (2, 2), (0, 0)).expect("valid");
        let e = ExplorationSpace::new(s).with_policies(&[
            TreePolicy::Lru,
            TreePolicy::Lru,
            TreePolicy::Fifo,
        ]);
        assert_eq!(e.policies(), &[TreePolicy::Lru, TreePolicy::Fifo]);
        let empty = ExplorationSpace::new(s).with_policies(&[]);
        assert_eq!(empty.policies(), &[TreePolicy::Fifo]);
    }

    #[test]
    fn report_serialisations_are_well_formed() {
        let trace = records(2_000, 200);
        let exploration = space(3, (2, 3), 1).with_policies(&[TreePolicy::Fifo, TreePolicy::Lru]);
        let report = explore_trace(
            &exploration,
            &trace,
            &EnergyModel::default(),
            ParetoMode::Pruned,
            1,
        )
        .expect("explore");
        let json = report.to_json();
        assert!(json.starts_with("{\n") && json.trim_end().ends_with('}'));
        assert!(json.contains("\"trace_traversals\": 4"), "{json}");
        assert!(json.contains("\"pareto\": true"));
        assert_eq!(
            json.matches("\"policy\"").count(),
            report.points().len(),
            "one object per point"
        );
        let csv = report.to_csv();
        assert!(csv.starts_with("policy,sets,"));
        assert_eq!(csv.lines().count(), 1 + report.points().len());
        assert!(csv.lines().skip(1).all(|l| l.split(',').count() == 10));
    }

    #[test]
    fn evaluations_feed_the_selection_helpers() {
        let trace = records(2_000, 500);
        let exploration = space(5, (2, 3), 1).with_policies(&[TreePolicy::Fifo, TreePolicy::Lru]);
        let report = explore_trace(
            &exploration,
            &trace,
            &EnergyModel::default(),
            ParetoMode::Pruned,
            1,
        )
        .expect("explore");
        let fifo = report.evaluations(TreePolicy::Fifo);
        assert!(!fifo.is_empty());
        let best = crate::best_edp_under(&fifo, 1 << 20).expect("fits");
        assert!(best.geometry.total_bytes() <= 1 << 20);
    }

    #[test]
    fn display_marks_frontier_membership() {
        let trace = records(500, 50);
        let report = explore_trace(
            &space(2, (2, 2), 1),
            &trace,
            &EnergyModel::default(),
            ParetoMode::Pruned,
            1,
        )
        .expect("explore");
        let shown: Vec<String> = report.points().iter().map(ToString::to_string).collect();
        assert!(shown.iter().any(|s| s.ends_with(" *")));
    }
}
