//! Deterministic request-mix generator for service traffic.
//!
//! `dew serve` jobs and the `dew gen` load generator describe their input
//! not as a trace file but as a tiny, reproducible *spec*: a mix kind, a
//! request count and a seed. The server regenerates the stream on demand
//! (and on every retry/resume — the iterator is a pure function of the
//! spec), which keeps job submissions a few bytes instead of megabytes.
//! This mirrors the traffic-generator-driven simulation runner pattern of
//! `cache-rs` (see SNIPPETS.md) with the re-openable-source contract the
//! resilient sweep drivers require.
//!
//! Three archetypes plus an interleaving:
//!
//! * [`MixKind::Zipf`] — heavy-tailed popularity over a hot footprint, the
//!   classic cache-friendly-but-not-trivial profile;
//! * [`MixKind::Loop`] — a sequential loop over the footprint, maximal
//!   spatial locality and periodic reuse;
//! * [`MixKind::Scan`] — a cold strided scan that never revisits a block,
//!   the worst case for any cache;
//! * [`MixKind::Mix`] — the three interleaved in phases, exercising phase
//!   changes the way real applications do.
//!
//! # Examples
//!
//! ```
//! use dew_workloads::traffic::{MixKind, TrafficSpec};
//!
//! let spec = TrafficSpec { kind: MixKind::Zipf, requests: 1_000, seed: 7 };
//! let a: Vec<_> = spec.records().collect();
//! let b: Vec<_> = spec.records().collect();
//! assert_eq!(a.len(), 1_000);
//! assert_eq!(a, b, "the stream replays identically on every open");
//! ```

use dew_trace::Record;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::zipf::Zipf;

/// Hot-set footprint of the generated mixes, in 4-byte words. Spans 1 MiB,
/// comfortably larger than any swept level-1 configuration.
const FOOTPRINT_WORDS: u64 = 1 << 18;
/// Zipf exponent: mildly heavy-tailed, matching the sharded-smoke bench.
const ZIPF_S: f64 = 0.8;
/// Phase length of [`MixKind::Mix`]: the interleave switches archetype
/// every this many requests.
const MIX_PHASE: u64 = 1024;

/// The request-mix archetypes a traffic spec can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Zipf-popular word reads over the hot footprint.
    Zipf,
    /// A sequential loop over the footprint.
    Loop,
    /// A cold 64-byte-strided scan (no block is ever revisited).
    Scan,
    /// Phased interleave of the other three.
    Mix,
}

impl MixKind {
    /// The canonical lower-case name (`zipf`, `loop`, `scan`, `mix`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MixKind::Zipf => "zipf",
            MixKind::Loop => "loop",
            MixKind::Scan => "scan",
            MixKind::Mix => "mix",
        }
    }
}

impl std::fmt::Display for MixKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MixKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "zipf" => Ok(MixKind::Zipf),
            "loop" => Ok(MixKind::Loop),
            "scan" => Ok(MixKind::Scan),
            "mix" => Ok(MixKind::Mix),
            other => Err(format!(
                "unknown mix `{other}` (expected zipf|loop|scan|mix)"
            )),
        }
    }
}

/// A complete, copyable description of one synthetic request stream.
///
/// Two specs with equal fields generate byte-identical streams; see the
/// [module docs](self) for why that matters to the serve layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSpec {
    /// Which archetype to generate.
    pub kind: MixKind,
    /// Stream length in requests.
    pub requests: u64,
    /// Seed of the per-spec RNG (Zipf draws and mix interleaving).
    pub seed: u64,
}

impl TrafficSpec {
    /// A fresh iterator over the spec's stream, starting from the first
    /// request. Pure: every call replays the identical sequence.
    #[must_use]
    pub fn records(&self) -> TrafficIter {
        TrafficIter {
            kind: self.kind,
            zipf: match self.kind {
                MixKind::Zipf | MixKind::Mix => Some(Zipf::new(FOOTPRINT_WORDS as usize, ZIPF_S)),
                MixKind::Loop | MixKind::Scan => None,
            },
            rng: SmallRng::seed_from_u64(self.seed),
            index: 0,
            remaining: self.requests,
        }
    }
}

/// The deterministic record stream of a [`TrafficSpec`].
#[derive(Debug, Clone)]
pub struct TrafficIter {
    kind: MixKind,
    zipf: Option<Zipf>,
    rng: SmallRng,
    index: u64,
    remaining: u64,
}

impl TrafficIter {
    fn zipf_addr(&mut self) -> u64 {
        let z = self.zipf.as_ref().expect("zipf table built for this kind");
        z.sample(&mut self.rng) as u64 * 4
    }

    fn loop_addr(&self) -> u64 {
        (self.index % FOOTPRINT_WORDS) * 4
    }

    fn scan_addr(&self) -> u64 {
        // Past the footprint so the scan never aliases the hot set.
        FOOTPRINT_WORDS * 4 + self.index * 64
    }
}

impl Iterator for TrafficIter {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = match self.kind {
            MixKind::Zipf => self.zipf_addr(),
            MixKind::Loop => self.loop_addr(),
            MixKind::Scan => self.scan_addr(),
            // NOTE: the RNG must advance identically regardless of phase,
            // or the zipf phases would depend on how many preceded them —
            // so every mixed step draws, and non-zipf phases discard.
            MixKind::Mix => {
                let drawn = self.zipf_addr();
                match (self.index / MIX_PHASE) % 3 {
                    0 => drawn,
                    1 => self.loop_addr(),
                    _ => self.scan_addr(),
                }
            }
        };
        self.index += 1;
        Some(Record::read(addr))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_replays_identically_and_parses_by_name() {
        for kind in [MixKind::Zipf, MixKind::Loop, MixKind::Scan, MixKind::Mix] {
            let spec = TrafficSpec {
                kind,
                requests: 2_000,
                seed: 42,
            };
            let a: Vec<Record> = spec.records().collect();
            let b: Vec<Record> = spec.records().collect();
            assert_eq!(a.len(), 2_000);
            assert_eq!(a, b, "{kind} must replay identically");
            assert_eq!(kind.name().parse::<MixKind>().expect("round-trips"), kind);
        }
        assert!("belady".parse::<MixKind>().is_err());
    }

    #[test]
    fn seeds_differentiate_zipf_but_not_loop() {
        let at = |kind, seed| {
            TrafficSpec {
                kind,
                requests: 500,
                seed,
            }
            .records()
            .collect::<Vec<_>>()
        };
        assert_ne!(at(MixKind::Zipf, 1), at(MixKind::Zipf, 2));
        assert_eq!(at(MixKind::Loop, 1), at(MixKind::Loop, 2));
    }

    #[test]
    fn archetypes_have_their_shape() {
        // Scan: strictly increasing, never a repeat.
        let scan: Vec<u64> = TrafficSpec {
            kind: MixKind::Scan,
            requests: 1_000,
            seed: 0,
        }
        .records()
        .map(|r| r.addr)
        .collect();
        assert!(scan.windows(2).all(|w| w[1] > w[0]));

        // Loop: wraps around the footprint.
        let spec = TrafficSpec {
            kind: MixKind::Loop,
            requests: FOOTPRINT_WORDS + 5,
            seed: 0,
        };
        let first = spec.records().next().expect("nonempty");
        let wrapped = spec.records().nth(FOOTPRINT_WORDS as usize).expect("wraps");
        assert_eq!(first.addr, wrapped.addr);

        // Mix: contains scan-range addresses and hot-set addresses.
        let mix: Vec<u64> = TrafficSpec {
            kind: MixKind::Mix,
            requests: 4 * MIX_PHASE,
            seed: 3,
        }
        .records()
        .map(|r| r.addr)
        .collect();
        assert!(mix.iter().any(|&a| a >= FOOTPRINT_WORDS * 4));
        assert!(mix.iter().any(|&a| a < FOOTPRINT_WORDS * 4));
    }
}
