//! Generic memory-locality kernels.
//!
//! Each kernel synthesises one archetypal access pattern — streaming, blocked
//! 2D walks, phased working sets, pointer chasing, Zipf-shaped reuse — and
//! they compose into the Mediabench surrogates of [`crate::mediabench`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dew_trace::{AccessKind, Record, Trace};

use crate::zipf::Zipf;

/// A deterministic trace generator.
///
/// Implementations append records to a caller-provided buffer so kernels can
/// be interleaved; [`Kernel::generate`] is the one-shot convenience.
pub trait Kernel {
    /// Short, stable identifier.
    fn name(&self) -> &'static str;

    /// Appends this kernel's records to `out`, drawing randomness from `rng`.
    fn emit_into(&self, rng: &mut SmallRng, out: &mut Vec<Record>);

    /// Generates the kernel's trace from a seed.
    fn generate(&self, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        self.emit_into(&mut rng, &mut out);
        Trace::from_records(out)
    }
}

/// Linear streaming: `count` accesses of `elem_bytes` each, `stride` bytes
/// apart, repeated for `passes` sweeps — a memcpy/DSP-style pattern with
/// pure spatial locality.
///
/// # Examples
///
/// ```
/// use dew_workloads::kernels::{Kernel, StridedStream};
/// use dew_trace::AccessKind;
///
/// let k = StridedStream {
///     base: 0x1000,
///     count: 8,
///     stride: 16,
///     kind: AccessKind::Read,
///     passes: 1,
/// };
/// let t = k.generate(0);
/// assert_eq!(t.len(), 8);
/// assert_eq!(t.records()[1].addr, 0x1010);
/// ```
#[derive(Debug, Clone)]
pub struct StridedStream {
    /// First element's byte address.
    pub base: u64,
    /// Number of elements per sweep.
    pub count: u64,
    /// Distance between consecutive elements in bytes.
    pub stride: u64,
    /// Kind of every access.
    pub kind: AccessKind,
    /// Number of sweeps over the element range.
    pub passes: u32,
}

impl Kernel for StridedStream {
    fn name(&self) -> &'static str {
        "strided_stream"
    }

    fn emit_into(&self, _rng: &mut SmallRng, out: &mut Vec<Record>) {
        for _ in 0..self.passes {
            for i in 0..self.count {
                out.push(Record::new(self.base + i * self.stride, self.kind));
            }
        }
    }
}

/// A blocked two-dimensional walk: visits an `rows × cols` array of
/// `elem_bytes` elements in `tile × tile` tiles, reading each element —
/// the shape of image and matrix kernels (and of JPEG's 8×8 MCU walks).
#[derive(Debug, Clone)]
pub struct TiledWalk {
    /// Array base byte address.
    pub base: u64,
    /// Rows in the array.
    pub rows: u32,
    /// Columns in the array.
    pub cols: u32,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Tile edge length, in elements (the whole array is walked tile by
    /// tile, row-major within each tile).
    pub tile: u32,
    /// Kind of every access.
    pub kind: AccessKind,
}

impl TiledWalk {
    fn addr(&self, r: u64, c: u64) -> u64 {
        self.base + (r * u64::from(self.cols) + c) * u64::from(self.elem_bytes)
    }
}

impl Kernel for TiledWalk {
    fn name(&self) -> &'static str {
        "tiled_walk"
    }

    fn emit_into(&self, _rng: &mut SmallRng, out: &mut Vec<Record>) {
        let tile = u64::from(self.tile.max(1));
        let (rows, cols) = (u64::from(self.rows), u64::from(self.cols));
        let mut tr = 0;
        while tr < rows {
            let mut tc = 0;
            while tc < cols {
                for r in tr..(tr + tile).min(rows) {
                    for c in tc..(tc + tile).min(cols) {
                        out.push(Record::new(self.addr(r, c), self.kind));
                    }
                }
                tc += tile;
            }
            tr += tile;
        }
    }
}

/// Phased working sets: each phase draws `accesses` Zipf-shaped references
/// from its own region, then the program "moves on" — the classic model of
/// program phase behaviour.
#[derive(Debug, Clone)]
pub struct WorkingSetPhases {
    /// The phases in execution order.
    pub phases: Vec<Phase>,
    /// Zipf exponent shaping intra-phase popularity (higher = hotter heads).
    pub zipf_exponent: f64,
    /// Fraction of accesses that are writes, in `0.0..=1.0`.
    pub write_fraction: f64,
}

/// One phase of a [`WorkingSetPhases`] kernel.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Region base byte address.
    pub base: u64,
    /// Number of 4-byte words in the region.
    pub words: u32,
    /// References issued in this phase.
    pub accesses: u64,
}

impl Kernel for WorkingSetPhases {
    fn name(&self) -> &'static str {
        "working_set_phases"
    }

    fn emit_into(&self, rng: &mut SmallRng, out: &mut Vec<Record>) {
        for phase in &self.phases {
            let zipf = Zipf::new(phase.words.max(1) as usize, self.zipf_exponent);
            for _ in 0..phase.accesses {
                let word = zipf.sample(rng) as u64;
                let kind = if rng.gen_bool(self.write_fraction.clamp(0.0, 1.0)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                out.push(Record::new(phase.base + word * 4, kind));
            }
        }
    }
}

/// Pointer chasing over a random permutation cycle of `nodes` records of
/// `node_bytes` each: every access depends on the previous one and spatial
/// locality is destroyed — the worst case for caches, common in linked data
/// structures.
#[derive(Debug, Clone)]
pub struct PointerChase {
    /// Base byte address of the node pool.
    pub base: u64,
    /// Number of nodes in the cycle.
    pub nodes: u32,
    /// Size of each node in bytes.
    pub node_bytes: u32,
    /// Chase steps to perform.
    pub steps: u64,
}

impl Kernel for PointerChase {
    fn name(&self) -> &'static str {
        "pointer_chase"
    }

    fn emit_into(&self, rng: &mut SmallRng, out: &mut Vec<Record>) {
        let n = self.nodes.max(1) as usize;
        // Sattolo's algorithm: a uniform random single-cycle permutation.
        let mut next: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..i);
            next.swap(i, j);
        }
        let mut cur = 0usize;
        for _ in 0..self.steps {
            out.push(Record::read(
                self.base + cur as u64 * u64::from(self.node_bytes),
            ));
            cur = next[cur] as usize;
        }
    }
}

/// Reuse-distance-controlled reference stream: each access touches the block
/// at a Zipf-sampled depth of an LRU stack (or a brand-new block), giving a
/// precise dial for temporal locality.
#[derive(Debug, Clone)]
pub struct StackDistanceWalk {
    /// Base byte address of the region new blocks come from.
    pub base: u64,
    /// LRU stack depth modelled.
    pub depth: u32,
    /// Zipf exponent over stack depths (higher = more reuse of hot blocks).
    pub zipf_exponent: f64,
    /// Probability of touching a brand-new block instead of a stack entry.
    pub new_block_prob: f64,
    /// References to issue.
    pub accesses: u64,
    /// Block granularity in bytes (addresses are block-aligned).
    pub block_bytes: u32,
}

impl Kernel for StackDistanceWalk {
    fn name(&self) -> &'static str {
        "stack_distance_walk"
    }

    fn emit_into(&self, rng: &mut SmallRng, out: &mut Vec<Record>) {
        let zipf = Zipf::new(self.depth.max(1) as usize, self.zipf_exponent);
        let mut stack: Vec<u64> = Vec::with_capacity(self.depth as usize + 1);
        let mut fresh: u64 = 0;
        for _ in 0..self.accesses {
            let block = if stack.is_empty() || rng.gen_bool(self.new_block_prob.clamp(0.0, 1.0)) {
                let b = fresh;
                fresh += 1;
                b
            } else {
                let d = zipf.sample(rng).min(stack.len() - 1);
                stack[d]
            };
            // Move-to-front maintenance of the LRU stack.
            stack.retain(|&b| b != block);
            stack.insert(0, block);
            stack.truncate(self.depth as usize);
            out.push(Record::read(
                self.base + block * u64::from(self.block_bytes),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_trace::TraceStats;

    #[test]
    fn strided_stream_is_exactly_strided() {
        let k = StridedStream {
            base: 0,
            count: 4,
            stride: 8,
            kind: AccessKind::Write,
            passes: 2,
        };
        let t = k.generate(0);
        assert_eq!(t.len(), 8);
        let addrs: Vec<u64> = t.iter().map(|r| r.addr).collect();
        assert_eq!(addrs, vec![0, 8, 16, 24, 0, 8, 16, 24]);
        assert!(t.iter().all(|r| r.kind == AccessKind::Write));
    }

    #[test]
    fn tiled_walk_covers_every_element_once() {
        let k = TiledWalk {
            base: 0x100,
            rows: 6,
            cols: 10,
            elem_bytes: 2,
            tile: 4,
            kind: AccessKind::Read,
        };
        let t = k.generate(0);
        assert_eq!(t.len(), 60);
        let mut addrs: Vec<u64> = t.iter().map(|r| r.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 60, "no element visited twice");
        assert_eq!(*addrs.first().expect("nonempty"), 0x100);
        assert_eq!(*addrs.last().expect("nonempty"), 0x100 + 59 * 2);
    }

    #[test]
    fn tiled_walk_handles_non_divisible_edges() {
        let k = TiledWalk {
            base: 0,
            rows: 5,
            cols: 7,
            elem_bytes: 1,
            tile: 3,
            kind: AccessKind::Read,
        };
        assert_eq!(k.generate(0).len(), 35);
    }

    #[test]
    fn phases_respect_regions_and_counts() {
        let k = WorkingSetPhases {
            phases: vec![
                Phase {
                    base: 0x1000,
                    words: 16,
                    accesses: 100,
                },
                Phase {
                    base: 0x8000,
                    words: 16,
                    accesses: 50,
                },
            ],
            zipf_exponent: 1.0,
            write_fraction: 0.3,
        };
        let t = k.generate(42);
        assert_eq!(t.len(), 150);
        assert!(t.records()[..100]
            .iter()
            .all(|r| (0x1000..0x1040).contains(&r.addr)));
        assert!(t.records()[100..]
            .iter()
            .all(|r| (0x8000..0x8040).contains(&r.addr)));
        let writes = t.iter().filter(|r| r.kind == AccessKind::Write).count();
        assert!((15..=75).contains(&writes), "write mix near 30%: {writes}");
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        let k = PointerChase {
            base: 0,
            nodes: 16,
            node_bytes: 64,
            steps: 16,
        };
        let t = k.generate(9);
        let mut visited: Vec<u64> = t.iter().map(|r| r.addr / 64).collect();
        visited.sort_unstable();
        visited.dedup();
        assert_eq!(
            visited.len(),
            16,
            "a single cycle visits every node once per lap"
        );
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let k = PointerChase {
            base: 0,
            nodes: 32,
            node_bytes: 16,
            steps: 100,
        };
        assert_eq!(k.generate(5), k.generate(5));
        assert_ne!(k.generate(5), k.generate(6));
    }

    #[test]
    fn stack_distance_walk_controls_footprint() {
        let hot = StackDistanceWalk {
            base: 0,
            depth: 8,
            zipf_exponent: 2.0,
            new_block_prob: 0.01,
            accesses: 5000,
            block_bytes: 16,
        };
        let cold = StackDistanceWalk {
            new_block_prob: 0.9,
            ..hot.clone()
        };
        let footprint = |t: &Trace| {
            let mut s = TraceStats::new();
            for r in t {
                s.observe(*r);
            }
            s.unique_blocks(4).expect("tracked")
        };
        let hot_fp = footprint(&hot.generate(1));
        let cold_fp = footprint(&cold.generate(1));
        assert!(
            cold_fp > hot_fp * 10,
            "new-block probability drives footprint: hot={hot_fp} cold={cold_fp}"
        );
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(
            StridedStream {
                base: 0,
                count: 1,
                stride: 1,
                kind: AccessKind::Read,
                passes: 1
            }
            .name(),
            "strided_stream"
        );
        assert_eq!(
            PointerChase {
                base: 0,
                nodes: 1,
                node_bytes: 1,
                steps: 0
            }
            .name(),
            "pointer_chase"
        );
    }
}
