//! A small instruction-stream model.
//!
//! SimpleScalar traces (the paper's input) interleave instruction fetches
//! with data accesses; the instruction stream of a loop kernel is a tight
//! sequential walk over the loop body with occasional calls into helper
//! routines. [`CodeWalker`] models exactly that: 4-byte sequential fetches
//! through a body region, wrapping at the end (the backward branch), with
//! optional excursions to helper bodies.

use dew_trace::Record;

/// Byte address where the model places program text (mirrors a typical
/// embedded load address).
pub const CODE_BASE: u64 = 0x0040_0000;

/// Sequential instruction-fetch generator over a loop body.
///
/// # Examples
///
/// ```
/// use dew_workloads::code::CodeWalker;
///
/// let mut code = CodeWalker::new(0x40_0000, 4); // 4-instruction loop body
/// let pcs: Vec<u64> = (0..6).map(|_| code.fetch().addr).collect();
/// assert_eq!(pcs, vec![0x40_0000, 0x40_0004, 0x40_0008, 0x40_000c, 0x40_0000, 0x40_0004]);
/// ```
#[derive(Debug, Clone)]
pub struct CodeWalker {
    base: u64,
    body_bytes: u64,
    pc: u64,
}

impl CodeWalker {
    /// A walker over `instructions` 4-byte instructions starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero.
    #[must_use]
    pub fn new(base: u64, instructions: u64) -> Self {
        assert!(instructions > 0, "a loop body has at least one instruction");
        CodeWalker {
            base,
            body_bytes: instructions * 4,
            pc: base,
        }
    }

    /// Emits the next instruction fetch, advancing (and wrapping) the PC.
    pub fn fetch(&mut self) -> Record {
        let r = Record::ifetch(self.pc);
        self.pc += 4;
        if self.pc >= self.base + self.body_bytes {
            self.pc = self.base;
        }
        r
    }

    /// Emits `n` consecutive fetches into `out`.
    pub fn fetch_into(&mut self, n: usize, out: &mut Vec<Record>) {
        for _ in 0..n {
            out.push(self.fetch());
        }
    }

    /// Restarts the body from its first instruction (a taken backward
    /// branch to the loop head).
    pub fn restart(&mut self) {
        self.pc = self.base;
    }

    /// The body's base address.
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// The body length in bytes.
    #[must_use]
    pub const fn body_bytes(&self) -> u64 {
        self.body_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_trace::AccessKind;

    #[test]
    fn fetches_are_sequential_and_wrap() {
        let mut w = CodeWalker::new(CODE_BASE, 3);
        let addrs: Vec<u64> = (0..7).map(|_| w.fetch().addr).collect();
        assert_eq!(
            addrs,
            vec![
                CODE_BASE,
                CODE_BASE + 4,
                CODE_BASE + 8,
                CODE_BASE,
                CODE_BASE + 4,
                CODE_BASE + 8,
                CODE_BASE
            ]
        );
    }

    #[test]
    fn fetch_kind_is_ifetch() {
        let mut w = CodeWalker::new(0x1000, 1);
        assert_eq!(w.fetch().kind, AccessKind::InstrFetch);
    }

    #[test]
    fn restart_returns_to_head() {
        let mut w = CodeWalker::new(0x1000, 8);
        w.fetch();
        w.fetch();
        w.restart();
        assert_eq!(w.fetch().addr, 0x1000);
    }

    #[test]
    fn fetch_into_appends() {
        let mut w = CodeWalker::new(0x1000, 2);
        let mut out = Vec::new();
        w.fetch_into(3, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].addr, 0x1000);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn zero_instructions_panics() {
        let _ = CodeWalker::new(0x1000, 0);
    }
}
