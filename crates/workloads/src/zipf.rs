//! A small table-based Zipf sampler used to shape temporal locality.
//!
//! Memory reuse distances in real programs are heavy-tailed; sampling stack
//! depths from a Zipf distribution is the standard way to synthesise traces
//! with controllable locality (see the stack-distance generator in
//! [`crate::kernels::StackDistanceWalk`]).

use rand::Rng;

/// Zipf distribution over `0..n` with exponent `s`: weight of rank `k` is
/// `1 / (k + 1)^s`.
///
/// # Examples
///
/// ```
/// use dew_workloads::zipf::Zipf;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let samples: Vec<usize> = (0..1000).map(|_| z.sample(&mut rng)).collect();
/// // Rank 0 is the most popular by a wide margin.
/// let zeros = samples.iter().filter(|&&x| x == 0).count();
/// let nineties = samples.iter().filter(|&&x| x >= 90).count();
/// assert!(zeros > nineties);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite(), "zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `false`: the sampler always has at least one rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn exponent_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut head_share = |s: f64| {
            let z = Zipf::new(50, s);
            let hits = (0..20_000).filter(|_| z.sample(&mut rng) == 0).count();
            hits as f64 / 20_000.0
        };
        assert!(head_share(2.0) > head_share(0.5));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 3.0);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }
}
