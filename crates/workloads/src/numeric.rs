//! Numeric-kernel access patterns: matrix multiplication (naive and tiled)
//! and FFT butterflies.
//!
//! These kernels are the classic subjects of cache design-space studies: the
//! naive-vs-tiled matmul pair shows how the *best* cache depends on the
//! software variant (motivating per-application tuning, the paper's premise),
//! and the FFT's bit-reversed butterflies stress conflict behaviour at
//! power-of-two strides — the worst case for power-of-two set mappings.

use rand::rngs::SmallRng;

use dew_trace::Record;

use crate::kernels::Kernel;

/// `C = A × B` over `n×n` matrices of `elem_bytes` elements.
///
/// With `tile == 0` the walk is the naive triple loop (i, j, k): `B` is
/// streamed column-wise `n` times — quadratic reuse distance. With a positive
/// `tile`, the loops are blocked so each `tile×tile` sub-problem fits a small
/// cache.
///
/// # Examples
///
/// ```
/// use dew_workloads::numeric::MatMul;
/// use dew_workloads::kernels::Kernel;
///
/// let naive = MatMul { n: 8, elem_bytes: 8, tile: 0, base: 0x1000 };
/// // Each of the n^3 steps reads A and B and writes C once: 3 accesses.
/// assert_eq!(naive.generate(0).len(), 3 * 8 * 8 * 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatMul {
    /// Matrix dimension (matrices are `n × n`).
    pub n: u32,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Tile edge length in elements; `0` selects the naive loop order.
    pub tile: u32,
    /// Base byte address; `A`, `B` and `C` are laid out consecutively.
    pub base: u64,
}

impl MatMul {
    fn addr(&self, matrix: u64, row: u64, col: u64) -> u64 {
        let n = u64::from(self.n);
        let e = u64::from(self.elem_bytes);
        self.base + matrix * n * n * e + (row * n + col) * e
    }

    fn emit_block(
        &self,
        out: &mut Vec<Record>,
        (i0, i1): (u64, u64),
        (j0, j1): (u64, u64),
        (k0, k1): (u64, u64),
    ) {
        for i in i0..i1 {
            for j in j0..j1 {
                for k in k0..k1 {
                    out.push(Record::read(self.addr(0, i, k))); // A[i][k]
                    out.push(Record::read(self.addr(1, k, j))); // B[k][j]
                    out.push(Record::write(self.addr(2, i, j))); // C[i][j]
                }
            }
        }
    }
}

impl Kernel for MatMul {
    fn name(&self) -> &'static str {
        if self.tile == 0 {
            "matmul_naive"
        } else {
            "matmul_tiled"
        }
    }

    fn emit_into(&self, _rng: &mut SmallRng, out: &mut Vec<Record>) {
        let n = u64::from(self.n);
        if self.tile == 0 {
            self.emit_block(out, (0, n), (0, n), (0, n));
            return;
        }
        let t = u64::from(self.tile);
        let mut i = 0;
        while i < n {
            let mut j = 0;
            while j < n {
                let mut k = 0;
                while k < n {
                    self.emit_block(
                        out,
                        (i, (i + t).min(n)),
                        (j, (j + t).min(n)),
                        (k, (k + t).min(n)),
                    );
                    k += t;
                }
                j += t;
            }
            i += t;
        }
    }
}

/// An in-place radix-2 FFT's data traffic over `2^log2_n` complex elements:
/// `log2_n` passes of butterflies at doubling strides, preceded by the
/// bit-reversal permutation.
#[derive(Debug, Clone, Copy)]
pub struct FftButterflies {
    /// `log2` of the transform length.
    pub log2_n: u32,
    /// Bytes per complex element (e.g. 8 for two `f32`s).
    pub elem_bytes: u32,
    /// Base byte address of the in-place buffer.
    pub base: u64,
}

impl FftButterflies {
    fn addr(&self, index: u64) -> u64 {
        self.base + index * u64::from(self.elem_bytes)
    }
}

impl Kernel for FftButterflies {
    fn name(&self) -> &'static str {
        "fft_butterflies"
    }

    fn emit_into(&self, _rng: &mut SmallRng, out: &mut Vec<Record>) {
        let n = 1u64 << self.log2_n;
        // Bit-reversal permutation: swap element i with rev(i).
        for i in 0..n {
            let rev = i.reverse_bits() >> (64 - self.log2_n);
            if i < rev {
                out.push(Record::read(self.addr(i)));
                out.push(Record::read(self.addr(rev)));
                out.push(Record::write(self.addr(i)));
                out.push(Record::write(self.addr(rev)));
            }
        }
        // log2(n) butterfly stages with doubling stride.
        for stage in 0..self.log2_n {
            let half = 1u64 << stage;
            let step = half * 2;
            let mut group = 0;
            while group < n {
                for k in 0..half {
                    let (top, bot) = (group + k, group + k + half);
                    out.push(Record::read(self.addr(top)));
                    out.push(Record::read(self.addr(bot)));
                    out.push(Record::write(self.addr(top)));
                    out.push(Record::write(self.addr(bot)));
                }
                group += step;
            }
        }
    }
}

/// Call-stack traffic: a random walk of calls and returns over a downward-
/// growing stack, with a frame of `frame_words` words written on every call
/// and read on every return — the strongly temporal pattern that makes even
/// tiny caches effective for stack data.
#[derive(Debug, Clone, Copy)]
pub struct CallStack {
    /// Byte address of the stack top (grows downward).
    pub stack_top: u64,
    /// Words written per call frame.
    pub frame_words: u32,
    /// Maximum call depth.
    pub max_depth: u32,
    /// Number of call/return events.
    pub events: u64,
}

impl Kernel for CallStack {
    fn name(&self) -> &'static str {
        "call_stack"
    }

    fn emit_into(&self, rng: &mut SmallRng, out: &mut Vec<Record>) {
        use rand::Rng;
        let frame_bytes = u64::from(self.frame_words) * 4;
        let mut depth: u32 = 0;
        for _ in 0..self.events {
            let call = depth == 0 || (depth < self.max_depth && rng.gen_bool(0.5));
            if call {
                depth += 1;
                let frame = self.stack_top - u64::from(depth) * frame_bytes;
                for w in 0..u64::from(self.frame_words) {
                    out.push(Record::write(frame + w * 4));
                }
            } else {
                let frame = self.stack_top - u64::from(depth) * frame_bytes;
                for w in 0..u64::from(self.frame_words) {
                    out.push(Record::read(frame + w * 4));
                }
                depth -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    #[test]
    fn naive_and_tiled_matmul_touch_the_same_data() {
        let naive = MatMul {
            n: 12,
            elem_bytes: 8,
            tile: 0,
            base: 0,
        };
        let tiled = MatMul {
            n: 12,
            elem_bytes: 8,
            tile: 4,
            base: 0,
        };
        let tn = naive.generate(0);
        let tt = tiled.generate(0);
        assert_eq!(tn.len(), tt.len(), "same work, different order");
        let addr_set = |t: &dew_trace::Trace| {
            let mut v: Vec<u64> = t.iter().map(|r| r.addr).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        assert_eq!(addr_set(&tn), addr_set(&tt));
    }

    #[test]
    fn tiling_cuts_misses_in_a_small_cache() {
        // 60x60 doubles: each matrix is ~28 KiB, far over a 4 KiB cache; a
        // 6x6 tile working set (~1 KiB) fits comfortably. The non-power-of-
        // two row stride (480 B) spreads tile rows across sets instead of
        // aliasing them all onto one — the usual padding trick.
        let naive = MatMul {
            n: 60,
            elem_bytes: 8,
            tile: 0,
            base: 0,
        };
        let tiled = MatMul {
            n: 60,
            elem_bytes: 8,
            tile: 6,
            base: 0,
        };
        let config = CacheConfig::new(16, 8, 32, Replacement::Lru).expect("4 KiB cache");
        let m_naive = simulate_trace(config, naive.generate(0).records()).misses();
        let m_tiled = simulate_trace(config, tiled.generate(0).records()).misses();
        assert!(
            m_tiled * 2 < m_naive,
            "tiling should at least halve misses: naive {m_naive}, tiled {m_tiled}"
        );
    }

    #[test]
    fn fft_event_count_matches_formula() {
        let fft = FftButterflies {
            log2_n: 6,
            elem_bytes: 8,
            base: 0,
        };
        let t = fft.generate(0);
        let n = 64u64;
        // Butterflies: log2(n) stages x n/2 butterflies x 4 accesses.
        let butterfly_accesses = 6 * (n / 2) * 4;
        assert!(t.len() as u64 >= butterfly_accesses);
        // All traffic stays inside the n-element buffer.
        assert!(t.iter().all(|r| r.addr < n * 8));
    }

    #[test]
    fn fft_strides_conflict_in_direct_mapped_caches() {
        // A direct-mapped cache whose set count divides the late-stage
        // strides sees the top/bottom of each butterfly collide; doubling
        // associativity at the same capacity removes those conflicts.
        let fft = FftButterflies {
            log2_n: 10,
            elem_bytes: 8,
            base: 0,
        };
        let t = fft.generate(0);
        let dm = CacheConfig::new(64, 1, 16, Replacement::Lru).expect("valid");
        let sa = CacheConfig::new(32, 2, 16, Replacement::Lru).expect("same capacity");
        let m_dm = simulate_trace(dm, t.records()).misses();
        let m_sa = simulate_trace(sa, t.records()).misses();
        assert!(
            m_sa < m_dm,
            "associativity must help the FFT: dm {m_dm}, 2-way {m_sa}"
        );
    }

    #[test]
    fn call_stack_is_extremely_cache_friendly() {
        let k = CallStack {
            stack_top: 0x7fff_0000,
            frame_words: 16,
            max_depth: 12,
            events: 2000,
        };
        let t = k.generate(3);
        assert!(!t.is_empty());
        let config = CacheConfig::new(16, 2, 32, Replacement::Fifo).expect("1 KiB");
        let stats = simulate_trace(config, t.records());
        assert!(
            stats.miss_rate() < 0.05,
            "stack traffic should almost always hit: {}",
            stats.miss_rate()
        );
    }

    #[test]
    fn call_stack_respects_depth_bound() {
        let k = CallStack {
            stack_top: 0x1_0000,
            frame_words: 4,
            max_depth: 3,
            events: 500,
        };
        let t = k.generate(1);
        let lowest = t.iter().map(|r| r.addr).min().expect("nonempty");
        assert!(
            lowest >= 0x1_0000 - 3 * 16,
            "never deeper than max_depth frames"
        );
    }
}
