//! Mediabench-like surrogate workloads.
//!
//! The paper evaluates DEW on six Mediabench applications traced with
//! SimpleScalar (Table 2). Neither the binaries nor the traces are available
//! here, so this module synthesises traces with the same *structural* memory
//! behaviour (see `DESIGN.md`, substitutions):
//!
//! * **JPEG encode/decode** — 8×8-block transforms over an image with
//!   quantisation-table reuse and sequential coefficient I/O;
//! * **G721 encode/decode** — a long sample loop over streaming input with a
//!   small, extremely hot predictor state and quantiser tables;
//! * **MPEG2 encode** — macroblock motion search scanning overlapping
//!   windows of a reference frame (heavy spatial reuse);
//! * **MPEG2 decode** — IDCT workspaces plus motion-compensation copies at
//!   small random displacements.
//!
//! Instruction fetches are interleaved through [`crate::code::CodeWalker`]
//! loop bodies, as in a SimpleScalar trace. Every generator is deterministic
//! given a seed, and emits exactly the requested number of records.
//!
//! # Examples
//!
//! ```
//! use dew_workloads::mediabench::App;
//!
//! let trace = App::JpegEncode.generate(10_000, 42);
//! assert_eq!(trace.len(), 10_000);
//! // Table 2 reference count for scaling experiments:
//! assert_eq!(App::JpegEncode.paper_requests(), 25_680_911);
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dew_trace::{Record, Trace};

use crate::code::CodeWalker;

/// Data-segment base addresses (disjoint regions of a flat address space).
mod layout {
    pub const CODE: u64 = 0x0040_0000;
    pub const INPUT: u64 = 0x1000_0000;
    pub const OUTPUT: u64 = 0x1800_0000;
    pub const TABLES: u64 = 0x2000_0000;
    pub const STATE: u64 = 0x2100_0000;
    pub const WORK: u64 = 0x2200_0000;
    pub const REF_FRAME: u64 = 0x3000_0000;
}

/// The six Mediabench applications of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// JPEG compression (`cjpeg`).
    JpegEncode,
    /// JPEG decompression (`djpeg`).
    JpegDecode,
    /// G.721 voice encoding.
    G721Encode,
    /// G.721 voice decoding.
    G721Decode,
    /// MPEG-2 video encoding.
    Mpeg2Encode,
    /// MPEG-2 video decoding.
    Mpeg2Decode,
}

impl App {
    /// All six applications, in the paper's Table 2 order.
    pub const ALL: [App; 6] = [
        App::JpegEncode,
        App::JpegDecode,
        App::G721Encode,
        App::G721Decode,
        App::Mpeg2Encode,
        App::Mpeg2Decode,
    ];

    /// The short name used in the paper's tables and figures.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            App::JpegEncode => "CJPEG",
            App::JpegDecode => "DJPEG",
            App::G721Encode => "G721_Enc",
            App::G721Decode => "G721_Dec",
            App::Mpeg2Encode => "MPEG2_Enc",
            App::Mpeg2Decode => "MPEG2_Dec",
        }
    }

    /// The request count of the paper's trace (Table 2), for scaling.
    #[must_use]
    pub const fn paper_requests(self) -> u64 {
        match self {
            App::JpegEncode => 25_680_911,
            App::JpegDecode => 7_617_458,
            App::G721Encode => 154_999_563,
            App::G721Decode => 154_856_346,
            App::Mpeg2Encode => 3_738_851_450,
            App::Mpeg2Decode => 1_411_434_040,
        }
    }

    /// Generates a surrogate trace of exactly `requests` records.
    #[must_use]
    pub fn generate(self, requests: u64, seed: u64) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed ^ (self as u64) << 32);
        let mut out: Vec<Record> = Vec::with_capacity(requests as usize);
        let target = requests as usize;
        while out.len() < target {
            match self {
                App::JpegEncode => jpeg_unit(&mut out, &mut rng, true),
                App::JpegDecode => jpeg_unit(&mut out, &mut rng, false),
                App::G721Encode => g721_unit(&mut out, &mut rng, true),
                App::G721Decode => g721_unit(&mut out, &mut rng, false),
                App::Mpeg2Encode => mpeg2_encode_unit(&mut out, &mut rng),
                App::Mpeg2Decode => mpeg2_decode_unit(&mut out, &mut rng),
            }
        }
        out.truncate(target);
        Trace::from_records(out)
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Image geometry shared by the JPEG and MPEG2 models.
const IMG_W: u64 = 512;
const IMG_H: u64 = 512;

/// One 8×8 MCU of JPEG work: pixel block I/O, a DCT workspace, quantisation
/// table lookups, and sequential coefficient traffic.
fn jpeg_unit(out: &mut Vec<Record>, rng: &mut SmallRng, encode: bool) {
    let mcu_per_row = IMG_W / 8;
    let mcu_count = mcu_per_row * (IMG_H / 8);
    // Walk MCUs in raster order, deriving the index from how many units ran.
    let unit = (out.len() as u64 / 640) % mcu_count;
    let (mx, my) = (unit % mcu_per_row, unit / mcu_per_row);
    let pixel_base = layout::INPUT + (my * 8 * IMG_W + mx * 8);
    let coeff_base = layout::OUTPUT + unit * 128; // 64 i16 coefficients
    let mut code = CodeWalker::new(layout::CODE, 24);

    for row in 0..8u64 {
        for col in 0..8u64 {
            code.fetch_into(2, out);
            let pixel = pixel_base + row * IMG_W + col;
            let coeff = coeff_base + (row * 8 + col) * 2;
            if encode {
                out.push(Record::read(pixel));
            } else {
                out.push(Record::read(coeff));
            }
            // DCT workspace: a hot 64-entry i32 scratch block.
            out.push(Record::write(layout::WORK + (row * 8 + col) * 4));
        }
    }
    // Transform + quantise: workspace read/write sweeps and table lookups.
    let mut helper = CodeWalker::new(layout::CODE + 0x200, 40);
    for i in 0..64u64 {
        helper.fetch_into(3, out);
        out.push(Record::read(layout::WORK + i * 4));
        out.push(Record::read(layout::TABLES + i * 2)); // quant table
        if encode {
            out.push(Record::write(coeff_base + i * 2));
        } else {
            // Huffman/zigzag tables with skewed popularity.
            let e = rng.gen_range(0..256u64);
            out.push(Record::read(layout::TABLES + 0x400 + ((e * e) >> 8) * 2));
            out.push(Record::write(pixel_base + (i / 8) * IMG_W + (i % 8)));
        }
    }
}

/// One G.721 ADPCM sample: streaming input, a ~26-word predictor state that
/// is touched many times per sample, small quantiser tables, nibble output.
fn g721_unit(out: &mut Vec<Record>, rng: &mut SmallRng, encode: bool) {
    let sample = out.len() as u64 / 60;
    let mut code = CodeWalker::new(layout::CODE + 0x1000, 52);

    code.fetch_into(3, out);
    if encode {
        out.push(Record::read(layout::INPUT + sample * 2)); // 16-bit PCM in
    } else {
        out.push(Record::read(layout::INPUT + sample / 2)); // packed nibbles in
    }
    // Predictor update: the hot state struct dominates (b-coefficients,
    // delayed samples, step size), read-modify-write.
    for w in 0..13u64 {
        code.fetch_into(2, out);
        out.push(Record::read(layout::STATE + w * 4));
        if w % 3 == 0 {
            out.push(Record::write(layout::STATE + w * 4));
        }
    }
    // Log-quantiser table lookups (skewed: quiet samples hit low entries).
    let mut helper = CodeWalker::new(layout::CODE + 0x1200, 16);
    for _ in 0..4 {
        helper.fetch_into(2, out);
        let idx = (rng.gen_range(0..16u64) * rng.gen_range(0..16u64)) >> 4;
        out.push(Record::read(layout::TABLES + 0x800 + idx * 2));
    }
    code.fetch_into(2, out);
    if encode {
        out.push(Record::write(layout::OUTPUT + sample / 2)); // nibble out
    } else {
        out.push(Record::write(layout::OUTPUT + sample * 2)); // PCM out
    }
}

/// Macroblock geometry of the MPEG2 models.
const MB: u64 = 16;

/// One MPEG2-encode macroblock: read the current block, scan candidate
/// positions of a search window in the reference frame (the dominant,
/// high-reuse phase), then write reconstruction and coefficients.
fn mpeg2_encode_unit(out: &mut Vec<Record>, rng: &mut SmallRng) {
    let mb_per_row = IMG_W / MB;
    let mb_count = mb_per_row * (IMG_H / MB);
    let unit = (out.len() as u64 / 3600) % mb_count;
    let (mx, my) = (unit % mb_per_row, unit / mb_per_row);
    let cur_base = layout::INPUT + (my * MB * IMG_W + mx * MB);
    let mut code = CodeWalker::new(layout::CODE + 0x2000, 32);

    // Load the current macroblock once.
    for row in 0..MB {
        code.fetch_into(2, out);
        for col in (0..MB).step_by(4) {
            out.push(Record::read(cur_base + row * IMG_W + col));
        }
    }
    // Three-step-search style motion estimation: candidate displacements
    // re-read overlapping reference rows (spatial + temporal reuse).
    let mut search = CodeWalker::new(layout::CODE + 0x2400, 48);
    for step in [4i64, 2, 1] {
        for (dy, dx) in [
            (0i64, 0i64),
            (-1, 0),
            (1, 0),
            (0, -1),
            (0, 1),
            (-1, -1),
            (1, 1),
        ] {
            let ry = (my * MB) as i64 + dy * step + rng.gen_range(-1i64..=1);
            let rx = (mx * MB) as i64 + dx * step + rng.gen_range(-1i64..=1);
            let ry = ry.clamp(0, (IMG_H - MB) as i64) as u64;
            let rx = rx.clamp(0, (IMG_W - MB) as i64) as u64;
            let cand = layout::REF_FRAME + ry * IMG_W + rx;
            for row in 0..MB {
                search.fetch_into(2, out);
                for col in (0..MB).step_by(4) {
                    out.push(Record::read(cand + row * IMG_W + col));
                }
            }
        }
    }
    // Residual transform and output.
    for i in 0..64u64 {
        code.fetch_into(1, out);
        out.push(Record::read(layout::TABLES + i * 2));
        out.push(Record::write(layout::OUTPUT + unit * 256 + i * 4));
    }
}

/// One MPEG2-decode macroblock: coefficient input, IDCT workspace sweeps,
/// one motion-compensated copy from the reference frame.
fn mpeg2_decode_unit(out: &mut Vec<Record>, rng: &mut SmallRng) {
    let mb_per_row = IMG_W / MB;
    let mb_count = mb_per_row * (IMG_H / MB);
    let unit = (out.len() as u64 / 1300) % mb_count;
    let (mx, my) = (unit % mb_per_row, unit / mb_per_row);
    let out_base = layout::OUTPUT + (my * MB * IMG_W + mx * MB);
    let mut code = CodeWalker::new(layout::CODE + 0x3000, 36);

    // Coefficients in, IDCT over four 8x8 blocks in a hot workspace.
    for blk in 0..4u64 {
        for i in 0..64u64 {
            code.fetch_into(2, out);
            out.push(Record::read(layout::INPUT + unit * 512 + blk * 128 + i * 2));
            out.push(Record::write(layout::WORK + 0x100 + i * 4));
            if i % 8 == 7 {
                out.push(Record::read(layout::WORK + 0x100 + (i - 7) * 4));
            }
        }
    }
    // Motion compensation: copy a displaced reference macroblock.
    let dy = rng.gen_range(-8i64..=8);
    let dx = rng.gen_range(-8i64..=8);
    let ry = ((my * MB) as i64 + dy).clamp(0, (IMG_H - MB) as i64) as u64;
    let rx = ((mx * MB) as i64 + dx).clamp(0, (IMG_W - MB) as i64) as u64;
    let mc = layout::REF_FRAME + ry * IMG_W + rx;
    let mut copy = CodeWalker::new(layout::CODE + 0x3400, 12);
    for row in 0..MB {
        copy.fetch_into(2, out);
        for col in (0..MB).step_by(4) {
            out.push(Record::read(mc + row * IMG_W + col));
            out.push(Record::write(out_base + row * IMG_W + col));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_trace::{AccessKind, TraceStats};

    #[test]
    fn exact_lengths_and_determinism() {
        for app in App::ALL {
            let t1 = app.generate(5_000, 7);
            let t2 = app.generate(5_000, 7);
            assert_eq!(t1.len(), 5_000, "{app}");
            assert_eq!(t1, t2, "{app} deterministic per seed");
            // JPEG encode is a fully deterministic pipeline (no stochastic
            // component); every other surrogate draws from its RNG.
            if app != App::JpegEncode {
                let t3 = app.generate(5_000, 8);
                assert_ne!(t1, t3, "{app} varies with seed");
            }
        }
    }

    #[test]
    fn traces_mix_all_access_kinds() {
        for app in App::ALL {
            let stats = app.generate(30_000, 1).stats();
            for kind in AccessKind::ALL {
                assert!(stats.count(kind) > 0, "{app} lacks {kind} accesses");
            }
            let f = stats.ifetch_fraction();
            assert!((0.2..0.8).contains(&f), "{app} ifetch fraction {f}");
        }
    }

    #[test]
    fn paper_request_counts_match_table2() {
        let total: u64 = App::ALL.iter().map(|a| a.paper_requests()).sum();
        assert_eq!(
            total,
            25_680_911 + 7_617_458 + 154_999_563 + 154_856_346 + 3_738_851_450 + 1_411_434_040
        );
    }

    #[test]
    fn apps_have_distinct_locality_signatures() {
        let mut footprints = Vec::new();
        for app in App::ALL {
            let t = app.generate(40_000, 3);
            let mut s = TraceStats::new();
            for r in &t {
                s.observe(*r);
            }
            footprints.push((app, s.unique_blocks(4).expect("tracked")));
        }
        // G721's footprint (tiny hot state + streaming) is far below MPEG2
        // encode's (large search windows over a frame).
        let g721 = footprints
            .iter()
            .find(|(a, _)| *a == App::G721Encode)
            .expect("present")
            .1;
        let mpeg2 = footprints
            .iter()
            .find(|(a, _)| *a == App::Mpeg2Encode)
            .expect("present")
            .1;
        assert!(mpeg2 > g721, "mpeg2 {mpeg2} vs g721 {g721}");
    }

    #[test]
    fn regions_do_not_collide() {
        use super::layout::*;
        let mut bases = [CODE, INPUT, OUTPUT, TABLES, STATE, WORK, REF_FRAME];
        bases.sort_unstable();
        for w in bases.windows(2) {
            assert!(w[1] - w[0] >= 0x0010_0000, "regions at least 1 MiB apart");
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(App::JpegEncode.name(), "CJPEG");
        assert_eq!(App::Mpeg2Decode.name(), "MPEG2_Dec");
        assert_eq!(App::ALL.len(), 6);
    }
}
