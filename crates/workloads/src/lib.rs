//! Synthetic memory-trace workload generators for the DEW reproduction.
//!
//! The DEW paper evaluates on Mediabench applications traced with
//! SimpleScalar; those artefacts are not available offline, so this crate
//! synthesises traces with equivalent *structure* (see `DESIGN.md` for the
//! substitution argument):
//!
//! * [`kernels`] — archetypal locality patterns (streaming, tiled 2D walks,
//!   phased working sets, pointer chasing, reuse-distance-controlled
//!   streams), each a composable [`kernels::Kernel`];
//! * [`code`] — a loop-body instruction-fetch model for interleaving ifetch
//!   traffic the way SimpleScalar traces do;
//! * [`mediabench`] — six surrogates mirroring the paper's Table 2
//!   applications (JPEG/G721/MPEG2, encode and decode);
//! * [`zipf`] — the popularity distribution shaping temporal locality;
//! * [`traffic`] — compact, replayable request-mix specs (zipf/loop/scan)
//!   for the `dew serve` job protocol and the `dew gen` load generator.
//!
//! # Examples
//!
//! ```
//! use dew_workloads::mediabench::App;
//! use dew_workloads::kernels::{Kernel, PointerChase};
//!
//! // A scaled-down CJPEG-like trace:
//! let trace = App::JpegEncode.generate(50_000, 1);
//! assert_eq!(trace.len(), 50_000);
//!
//! // A cache-hostile kernel for stress tests:
//! let chase = PointerChase { base: 0, nodes: 4096, node_bytes: 64, steps: 10_000 };
//! assert_eq!(chase.generate(1).len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod kernels;
pub mod mediabench;
pub mod numeric;
pub mod traffic;
pub mod zipf;
