//! The trace-emitting interpreter: the workspace's SimpleScalar stand-in.
//!
//! Executes an assembled program, emitting one instruction-fetch record per
//! executed instruction plus a data record per load/store — the same record
//! stream SimpleScalar produced for the paper's Mediabench runs. Memory is a
//! sparse byte store, so programs can use realistic embedded address maps.

use std::collections::HashMap;

use dew_trace::{Record, Trace};

use crate::isa::{Instr, Reg};

/// Base byte address of the text segment (each instruction occupies 4
/// bytes, as in the PISA traces).
pub const TEXT_BASE: u64 = 0x0040_0000;
/// Conventional initial stack pointer (the stack grows down).
pub const STACK_TOP: u64 = 0x7fff_f000;

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// A `halt` instruction was executed.
    Halted,
    /// The step budget ran out first.
    FuelExhausted,
    /// The program counter left the program.
    PcOutOfRange(usize),
    /// `ret` with an empty call stack.
    ReturnUnderflow,
}

/// The result of a run: the emitted trace plus machine state for assertions.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The emitted memory-access trace (ifetches + data records).
    pub trace: Trace,
    /// Why execution ended.
    pub stop: Stop,
    /// Instructions executed.
    pub instructions: u64,
    /// Final register file.
    pub regs: [i64; 16],
}

/// The interpreter.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [i64; 16],
    mem: HashMap<u64, u8>,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A fresh machine: zero registers (SP at [`STACK_TOP`]), empty memory.
    #[must_use]
    pub fn new() -> Self {
        let mut regs = [0i64; 16];
        regs[Reg::SP.0 as usize] = STACK_TOP as i64;
        Cpu {
            regs,
            mem: HashMap::new(),
        }
    }

    /// Reads a register (`r0` is always zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Pre-loads a 32-bit word (for program inputs), without emitting trace
    /// records.
    pub fn poke_word(&mut self, addr: u64, value: u32) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.mem.insert(addr + i as u64, *b);
        }
    }

    /// Reads a 32-bit word back (for result assertions), without emitting
    /// trace records.
    #[must_use]
    pub fn peek_word(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.mem.get(&(addr + i as u64)).copied().unwrap_or(0);
        }
        u32::from_le_bytes(bytes)
    }

    fn load(&mut self, addr: u64, bytes: u64, out: &mut Vec<Record>) -> i64 {
        out.push(Record::read(addr));
        let mut v = 0u64;
        for i in 0..bytes {
            let byte = self.mem.get(&addr.wrapping_add(i)).copied().unwrap_or(0);
            v |= u64::from(byte) << (8 * i);
        }
        v as i64
    }

    fn store(&mut self, addr: u64, bytes: u64, value: i64, out: &mut Vec<Record>) {
        out.push(Record::write(addr));
        for i in 0..bytes {
            self.mem
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Runs `program` for at most `fuel` instructions, emitting the trace.
    pub fn run(&mut self, program: &[Instr], fuel: u64) -> RunOutcome {
        let mut out: Vec<Record> = Vec::new();
        let mut call_stack: Vec<usize> = Vec::new();
        let mut pc = 0usize;
        let mut executed = 0u64;
        let stop = loop {
            if executed >= fuel {
                break Stop::FuelExhausted;
            }
            let Some(&instr) = program.get(pc) else {
                break Stop::PcOutOfRange(pc);
            };
            out.push(Record::ifetch(TEXT_BASE + pc as u64 * 4));
            executed += 1;
            pc += 1;
            match instr {
                Instr::Li(d, i) => self.set_reg(d, i),
                Instr::Add(d, a, b) => self.set_reg(d, self.reg(a).wrapping_add(self.reg(b))),
                Instr::Sub(d, a, b) => self.set_reg(d, self.reg(a).wrapping_sub(self.reg(b))),
                Instr::Mul(d, a, b) => self.set_reg(d, self.reg(a).wrapping_mul(self.reg(b))),
                Instr::Addi(d, a, i) => self.set_reg(d, self.reg(a).wrapping_add(i)),
                Instr::Sari(d, a, i) => self.set_reg(d, self.reg(a) >> i),
                Instr::Andi(d, a, i) => self.set_reg(d, self.reg(a) & i),
                Instr::Lw(d, a, off) => {
                    let addr = (self.reg(a).wrapping_add(off)) as u64;
                    let v = self.load(addr, 4, &mut out);
                    self.set_reg(d, v as u32 as i64);
                }
                Instr::Sw(s, a, off) => {
                    let addr = (self.reg(a).wrapping_add(off)) as u64;
                    self.store(addr, 4, self.reg(s), &mut out);
                }
                Instr::Lb(d, a, off) => {
                    let addr = (self.reg(a).wrapping_add(off)) as u64;
                    let v = self.load(addr, 1, &mut out);
                    self.set_reg(d, v as u8 as i64);
                }
                Instr::Sb(s, a, off) => {
                    let addr = (self.reg(a).wrapping_add(off)) as u64;
                    self.store(addr, 1, self.reg(s), &mut out);
                }
                Instr::Beq(a, b, t) => {
                    if self.reg(a) == self.reg(b) {
                        pc = t;
                    }
                }
                Instr::Bne(a, b, t) => {
                    if self.reg(a) != self.reg(b) {
                        pc = t;
                    }
                }
                Instr::Blt(a, b, t) => {
                    if self.reg(a) < self.reg(b) {
                        pc = t;
                    }
                }
                Instr::Jmp(t) => pc = t,
                Instr::Call(t) => {
                    // Push the return index on the memory stack, like a real
                    // ABI would — call-heavy code produces stack traffic.
                    let sp = (self.reg(Reg::SP).wrapping_sub(4)) as u64;
                    self.set_reg(Reg::SP, sp as i64);
                    self.store(sp, 4, pc as i64, &mut out);
                    call_stack.push(pc);
                    pc = t;
                }
                Instr::Ret => {
                    if call_stack.pop().is_none() {
                        break Stop::ReturnUnderflow;
                    }
                    let sp = self.reg(Reg::SP) as u64;
                    let ret = self.load(sp, 4, &mut out);
                    self.set_reg(Reg::SP, sp.wrapping_add(4) as i64);
                    pc = ret as usize;
                }
                Instr::Halt => break Stop::Halted,
                Instr::Nop => {}
            }
        };
        RunOutcome {
            trace: Trace::from_records(out),
            stop,
            instructions: executed,
            regs: self.regs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use dew_trace::AccessKind;

    fn run(src: &str, fuel: u64) -> (Cpu, RunOutcome) {
        let program = assemble(src).expect("assembles");
        let mut cpu = Cpu::new();
        let out = cpu.run(&program, fuel);
        (cpu, out)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, out) = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nhalt\n", 100);
        assert_eq!(out.stop, Stop::Halted);
        assert_eq!(cpu.reg(Reg(3)), 42);
        assert_eq!(out.instructions, 4);
        // 4 ifetches, no data traffic.
        assert_eq!(out.trace.len(), 4);
        assert!(out.trace.iter().all(|r| r.kind == AccessKind::InstrFetch));
    }

    #[test]
    fn loops_execute_and_fetch_sequentially() {
        let (cpu, out) = run(
            "li r1, 10\nli r2, 0\nloop: add r2, r2, r1\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n",
            1000,
        );
        assert_eq!(out.stop, Stop::Halted);
        assert_eq!(cpu.reg(Reg(2)), (1..=10).sum::<i64>());
        // The loop body refetches the same three instruction addresses.
        let fetches: Vec<u64> = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::InstrFetch)
            .map(|r| r.addr)
            .collect();
        assert!(fetches.iter().filter(|&&a| a == TEXT_BASE + 2 * 4).count() == 10);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let (cpu, out) = run(
            "li r1, 0x1000\nli r2, 123456\nsw r2, 8(r1)\nlw r3, 8(r1)\nhalt\n",
            100,
        );
        assert_eq!(cpu.reg(Reg(3)), 123456);
        let reads = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Read)
            .count();
        let writes = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .count();
        assert_eq!((reads, writes), (1, 1));
        assert_eq!(cpu.peek_word(0x1008), 123456);
    }

    #[test]
    fn byte_accesses_are_byte_sized() {
        let (cpu, _) = run(
            "li r1, 0x2000\nli r2, 0x1ff\nsb r2, (r1)\nlb r3, (r1)\nhalt\n",
            100,
        );
        assert_eq!(cpu.reg(Reg(3)), 0xff, "byte store truncates");
    }

    #[test]
    fn calls_produce_stack_traffic_and_return() {
        let (cpu, out) = run(
            "li r1, 5\ncall double\nhalt\ndouble: add r1, r1, r1\nret\n",
            100,
        );
        assert_eq!(out.stop, Stop::Halted);
        assert_eq!(cpu.reg(Reg(1)), 10);
        // call pushes, ret pops: one write + one read near STACK_TOP.
        let stack_traffic: Vec<&Record> = out
            .trace
            .iter()
            .filter(|r| r.kind != AccessKind::InstrFetch)
            .collect();
        assert_eq!(stack_traffic.len(), 2);
        assert!(stack_traffic.iter().all(|r| r.addr >= STACK_TOP - 64));
    }

    #[test]
    fn fuel_bounds_runaway_programs() {
        let (_, out) = run("spin: jmp spin\n", 5_000);
        assert_eq!(out.stop, Stop::FuelExhausted);
        assert_eq!(out.instructions, 5_000);
    }

    #[test]
    fn falling_off_the_end_and_ret_underflow_are_reported() {
        let (_, out) = run("nop\n", 10);
        assert_eq!(out.stop, Stop::PcOutOfRange(1));
        let (_, out) = run("ret\n", 10);
        assert_eq!(out.stop, Stop::ReturnUnderflow);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _) = run("li r0, 99\nadd r1, r0, r0\nhalt\n", 10);
        assert_eq!(cpu.reg(Reg(0)), 0);
        assert_eq!(cpu.reg(Reg(1)), 0);
    }

    #[test]
    fn poke_and_peek_do_not_emit_records() {
        let mut cpu = Cpu::new();
        cpu.poke_word(0x3000, 77);
        let program = assemble("li r1, 0x3000\nlw r2, (r1)\nhalt\n").expect("assembles");
        let out = cpu.run(&program, 10);
        assert_eq!(cpu.reg(Reg(2)), 77);
        assert_eq!(
            out.trace
                .iter()
                .filter(|r| r.kind == AccessKind::Read)
                .count(),
            1
        );
    }
}
