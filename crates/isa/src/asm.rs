//! A two-pass assembler for the little ISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! # comment
//! loop:                       ; a label
//!     li   r1, 100
//!     lw   r2, 8(r3)          ; loads use imm(reg) addressing
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! ```
//!
//! Labels are resolved to instruction indices in a second pass.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{Instr, Reg};

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The kinds of assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Unknown mnemonic.
    UnknownOp(String),
    /// Malformed operand list.
    BadOperands(String),
    /// A register outside `r0..r15`.
    BadRegister(String),
    /// An unparsable immediate.
    BadImmediate(String),
    /// A label used but never defined.
    UndefinedLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            AsmErrorKind::UnknownOp(s) => format!("unknown instruction `{s}`"),
            AsmErrorKind::BadOperands(s) => format!("bad operands `{s}`"),
            AsmErrorKind::BadRegister(s) => format!("bad register `{s}`"),
            AsmErrorKind::BadImmediate(s) => format!("bad immediate `{s}`"),
            AsmErrorKind::UndefinedLabel(s) => format!("undefined label `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => format!("duplicate label `{s}`"),
        };
        write!(f, "line {}: {what}", self.line)
    }
}

impl Error for AsmError {}

/// Assembles source text into instructions.
///
/// # Errors
///
/// The first [`AsmError`] encountered, with its source line.
///
/// # Examples
///
/// ```
/// use dew_isa::assemble;
///
/// let program = assemble(
///     "start:\n  li r1, 3\n  addi r1, r1, -1\n  bne r1, r0, start\n  halt\n",
/// )?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), dew_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instr>, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut statements: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split(&['#', ';'][..]).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label (e.g. an operand list) — let pass 2 judge
            }
            if labels.insert(label.to_owned(), statements.len()).is_some() {
                return Err(AsmError {
                    line: lineno + 1,
                    kind: AsmErrorKind::DuplicateLabel(label.to_owned()),
                });
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            statements.push((lineno + 1, rest.to_owned()));
        }
    }

    // Pass 2: encode.
    let mut program = Vec::with_capacity(statements.len());
    for (line, stmt) in statements {
        program.push(encode(&stmt, line, &labels)?);
    }
    Ok(program)
}

fn reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadRegister(tok.to_owned()),
    };
    let digits = tok.trim().strip_prefix('r').ok_or_else(bad)?;
    let n: u8 = digits.parse().map_err(|_| bad())?;
    if n > 15 {
        return Err(bad());
    }
    Ok(Reg(n))
}

fn imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let parse = |s: &str, radix| i64::from_str_radix(s, radix);
    let value = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        parse(hex, 16)
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        parse(hex, 16).map(|v| -v)
    } else {
        tok.parse()
    };
    value.map_err(|_| AsmError {
        line,
        kind: AsmErrorKind::BadImmediate(tok.to_owned()),
    })
}

/// Parses `imm(reg)` memory operands.
fn mem(tok: &str, line: usize) -> Result<(Reg, i64), AsmError> {
    let bad = || AsmError {
        line,
        kind: AsmErrorKind::BadOperands(tok.to_owned()),
    };
    let open = tok.find('(').ok_or_else(bad)?;
    let close = tok.rfind(')').ok_or_else(bad)?;
    if close < open {
        return Err(bad());
    }
    let offset = tok[..open].trim();
    let offset = if offset.is_empty() {
        0
    } else {
        imm(offset, line)?
    };
    Ok((reg(&tok[open + 1..close], line)?, offset))
}

/// Resolves a branch target: a label name, or `@N` for an absolute
/// instruction index (the form `Instr`'s `Display` emits, so disassembled
/// programs re-assemble).
fn label(tok: &str, line: usize, labels: &HashMap<String, usize>) -> Result<usize, AsmError> {
    let tok = tok.trim();
    if let Some(index) = tok.strip_prefix('@') {
        return index.parse().map_err(|_| AsmError {
            line,
            kind: AsmErrorKind::UndefinedLabel(tok.to_owned()),
        });
    }
    labels.get(tok).copied().ok_or_else(|| AsmError {
        line,
        kind: AsmErrorKind::UndefinedLabel(tok.to_owned()),
    })
}

fn encode(stmt: &str, line: usize, labels: &HashMap<String, usize>) -> Result<Instr, AsmError> {
    let (op, rest) = stmt.split_once(char::is_whitespace).unwrap_or((stmt, ""));
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let want = |n: usize| {
        if ops.len() == n {
            Ok(())
        } else {
            Err(AsmError {
                line,
                kind: AsmErrorKind::BadOperands(rest.trim().to_owned()),
            })
        }
    };
    let instr = match op.to_lowercase().as_str() {
        "li" => {
            want(2)?;
            Instr::Li(reg(ops[0], line)?, imm(ops[1], line)?)
        }
        "add" => {
            want(3)?;
            Instr::Add(reg(ops[0], line)?, reg(ops[1], line)?, reg(ops[2], line)?)
        }
        "sub" => {
            want(3)?;
            Instr::Sub(reg(ops[0], line)?, reg(ops[1], line)?, reg(ops[2], line)?)
        }
        "mul" => {
            want(3)?;
            Instr::Mul(reg(ops[0], line)?, reg(ops[1], line)?, reg(ops[2], line)?)
        }
        "addi" => {
            want(3)?;
            Instr::Addi(reg(ops[0], line)?, reg(ops[1], line)?, imm(ops[2], line)?)
        }
        "sari" => {
            want(3)?;
            let shift = imm(ops[2], line)?;
            Instr::Sari(
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                shift.clamp(0, 63) as u32,
            )
        }
        "andi" => {
            want(3)?;
            Instr::Andi(reg(ops[0], line)?, reg(ops[1], line)?, imm(ops[2], line)?)
        }
        "lw" => {
            want(2)?;
            let (base, off) = mem(ops[1], line)?;
            Instr::Lw(reg(ops[0], line)?, base, off)
        }
        "sw" => {
            want(2)?;
            let (base, off) = mem(ops[1], line)?;
            Instr::Sw(reg(ops[0], line)?, base, off)
        }
        "lb" => {
            want(2)?;
            let (base, off) = mem(ops[1], line)?;
            Instr::Lb(reg(ops[0], line)?, base, off)
        }
        "sb" => {
            want(2)?;
            let (base, off) = mem(ops[1], line)?;
            Instr::Sb(reg(ops[0], line)?, base, off)
        }
        "beq" => {
            want(3)?;
            Instr::Beq(
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                label(ops[2], line, labels)?,
            )
        }
        "bne" => {
            want(3)?;
            Instr::Bne(
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                label(ops[2], line, labels)?,
            )
        }
        "blt" => {
            want(3)?;
            Instr::Blt(
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                label(ops[2], line, labels)?,
            )
        }
        "jmp" => {
            want(1)?;
            Instr::Jmp(label(ops[0], line, labels)?)
        }
        "call" => {
            want(1)?;
            Instr::Call(label(ops[0], line, labels)?)
        }
        "ret" => {
            want(0)?;
            Instr::Ret
        }
        "halt" => {
            want(0)?;
            Instr::Halt
        }
        "nop" => {
            want(0)?;
            Instr::Nop
        }
        other => {
            return Err(AsmError {
                line,
                kind: AsmErrorKind::UnknownOp(other.to_owned()),
            });
        }
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loops_with_labels() {
        let p = assemble(
            "# count down\n\
             \tli r1, 5\n\
             loop: addi r1, r1, -1\n\
             \tbne r1, r0, loop\n\
             \thalt\n",
        )
        .expect("assembles");
        assert_eq!(p.len(), 4);
        assert_eq!(p[2], Instr::Bne(Reg(1), Reg(0), 1));
    }

    #[test]
    fn memory_operands_parse() {
        let p = assemble("lw r1, 8(r2)\nsw r3, (r4)\nlb r5, -4(r6)\nhalt\n").expect("assembles");
        assert_eq!(p[0], Instr::Lw(Reg(1), Reg(2), 8));
        assert_eq!(p[1], Instr::Sw(Reg(3), Reg(4), 0));
        assert_eq!(p[2], Instr::Lb(Reg(5), Reg(6), -4));
    }

    #[test]
    fn hex_immediates_and_comments() {
        let p = assemble("li r1, 0x1000 ; base\nli r2, -0x10 # neg\nhalt").expect("assembles");
        assert_eq!(p[0], Instr::Li(Reg(1), 0x1000));
        assert_eq!(p[1], Instr::Li(Reg(2), -16));
    }

    #[test]
    fn multiple_labels_share_a_target() {
        let p = assemble("a: b: nop\njmp a\njmp b\n").expect("assembles");
        assert_eq!(p[1], Instr::Jmp(0));
        assert_eq!(p[2], Instr::Jmp(0));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nfrobnicate r1\n").expect_err("unknown op");
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, AsmErrorKind::UnknownOp(_)));

        let err = assemble("lw r1, 8(r99)\n").expect_err("bad register");
        assert!(matches!(err.kind, AsmErrorKind::BadRegister(_)));

        let err = assemble("jmp nowhere\n").expect_err("undefined label");
        assert!(matches!(err.kind, AsmErrorKind::UndefinedLabel(_)));

        let err = assemble("x: nop\nx: nop\n").expect_err("duplicate label");
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));

        let err = assemble("li r1\n").expect_err("operand count");
        assert!(matches!(err.kind, AsmErrorKind::BadOperands(_)));

        let err = assemble("li r1, banana\n").expect_err("immediate");
        assert!(matches!(err.kind, AsmErrorKind::BadImmediate(_)));
    }

    #[test]
    fn display_of_errors_mentions_line() {
        let err = assemble("nop\nbip\n").expect_err("unknown");
        assert!(err.to_string().contains("line 2"));
    }
}
