//! A little RISC ISA, assembler and trace-emitting interpreter.
//!
//! The DEW paper's traces come from **executing programs** (Mediabench
//! binaries under SimpleScalar/PISA); this crate is the workspace's
//! SimpleScalar stand-in. Programs written in a small assembly language are
//! executed by [`Cpu`], which emits one instruction fetch per executed
//! instruction plus a data record per load/store — a trace stream with the
//! structure of the paper's inputs, backed by a computation whose *results*
//! can be asserted (so the traces are known to come from real executions,
//! not just plausible-looking generators).
//!
//! * [`mod@isa`] — the instruction set (16 registers, 4-byte
//!   instructions, word/byte memory ops, calls through a memory stack);
//! * [`assemble`] — a two-pass assembler with labels and line-precise
//!   errors;
//! * [`Cpu`] — the interpreter (fuel-bounded, sparse byte memory);
//! * [`programs`] — verifiable kernels: vector sum, memcpy, naive matmul,
//!   histogram, recursive Fibonacci.
//!
//! # Examples
//!
//! ```
//! use dew_isa::{assemble, Cpu};
//!
//! let program = assemble(
//!     "li r1, 0x1000\n\
//!      li r2, 41\n\
//!      addi r2, r2, 1\n\
//!      sw r2, (r1)\n\
//!      halt\n",
//! )?;
//! let mut cpu = Cpu::new();
//! let run = cpu.run(&program, 1_000);
//! assert_eq!(cpu.peek_word(0x1000), 42);
//! assert_eq!(run.trace.len(), 6); // 5 ifetches + 1 store
//! # Ok::<(), dew_isa::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod cpu;
pub mod isa;
pub mod programs;

pub use asm::{assemble, AsmError, AsmErrorKind};
pub use cpu::{Cpu, RunOutcome, Stop, STACK_TOP, TEXT_BASE};
