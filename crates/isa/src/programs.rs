//! A library of assembly kernels whose executions produce verifiable traces.
//!
//! Each constructor returns assembly source parameterised by problem size;
//! [`run_program`] assembles, executes and hands back both the memory trace
//! and the machine state, so tests can check the *computation* was right
//! before trusting the *trace* — the property that distinguishes an executed
//! trace from a synthetic one.

use crate::asm::{assemble, AsmError};
use crate::cpu::{Cpu, RunOutcome};

/// Byte address of the first input array in all kernels.
pub const A_BASE: u64 = 0x0010_0000;
/// Byte address of the second input / output array.
pub const B_BASE: u64 = 0x0020_0000;
/// Byte address of results (sums, match counts).
pub const OUT_BASE: u64 = 0x0030_0000;

/// Sums `n` words of `A` into `OUT[0]` — a pure streaming read kernel.
#[must_use]
pub fn vector_sum(n: u32) -> String {
    format!(
        "\
        li   r1, {a}          # cursor\n\
        li   r2, {n}          # remaining\n\
        li   r3, 0            # accumulator\n\
        loop:\n\
        lw   r4, (r1)\n\
        add  r3, r3, r4\n\
        addi r1, r1, 4\n\
        addi r2, r2, -1\n\
        bne  r2, r0, loop\n\
        li   r5, {out}\n\
        sw   r3, (r5)\n\
        halt\n",
        a = A_BASE,
        n = n,
        out = OUT_BASE
    )
}

/// Copies `n` words from `A` to `B` — interleaved read/write streams.
#[must_use]
pub fn memcpy_words(n: u32) -> String {
    format!(
        "\
        li   r1, {a}\n\
        li   r2, {b}\n\
        li   r3, {n}\n\
        loop:\n\
        lw   r4, (r1)\n\
        sw   r4, (r2)\n\
        addi r1, r1, 4\n\
        addi r2, r2, 4\n\
        addi r3, r3, -1\n\
        bne  r3, r0, loop\n\
        halt\n",
        a = A_BASE,
        b = B_BASE,
        n = n
    )
}

/// Naive `n×n` word matrix multiply `OUT = A × B` — the column walks of `B`
/// are the classic cache stressor.
#[must_use]
pub fn matmul(n: u32) -> String {
    format!(
        "\
        li   r10, {n}\n\
        li   r11, 4\n\
        li   r1, 0            # i\n\
        iloop:\n\
        li   r2, 0            # j\n\
        jloop:\n\
        li   r3, 0            # k\n\
        li   r4, 0            # acc\n\
        kloop:\n\
        mul  r5, r1, r10      # A[i][k]\n\
        add  r5, r5, r3\n\
        mul  r5, r5, r11\n\
        addi r5, r5, {a}\n\
        lw   r6, (r5)\n\
        mul  r7, r3, r10      # B[k][j]\n\
        add  r7, r7, r2\n\
        mul  r7, r7, r11\n\
        addi r7, r7, {b}\n\
        lw   r8, (r7)\n\
        mul  r6, r6, r8\n\
        add  r4, r4, r6\n\
        addi r3, r3, 1\n\
        blt  r3, r10, kloop\n\
        mul  r5, r1, r10      # OUT[i][j]\n\
        add  r5, r5, r2\n\
        mul  r5, r5, r11\n\
        addi r5, r5, {out}\n\
        sw   r4, (r5)\n\
        addi r2, r2, 1\n\
        blt  r2, r10, jloop\n\
        addi r1, r1, 1\n\
        blt  r1, r10, iloop\n\
        halt\n",
        n = n,
        a = A_BASE,
        b = B_BASE,
        out = OUT_BASE
    )
}

/// Histogram of `n` bytes of `A` into 256 word counters at `OUT` — data-
/// dependent scattered writes over a small hot table.
#[must_use]
pub fn histogram(n: u32) -> String {
    format!(
        "\
        li   r1, {a}\n\
        li   r2, {n}\n\
        li   r3, {out}\n\
        loop:\n\
        lb   r4, (r1)\n\
        add  r5, r4, r4\n\
        add  r5, r5, r5       # r5 = 4*byte\n\
        add  r5, r5, r3       # counter address\n\
        lw   r6, (r5)\n\
        addi r6, r6, 1\n\
        sw   r6, (r5)\n\
        addi r1, r1, 1\n\
        addi r2, r2, -1\n\
        bne  r2, r0, loop\n\
        halt\n",
        a = A_BASE,
        n = n,
        out = OUT_BASE
    )
}

/// Recursive Fibonacci of `n` via the call stack — call/return heavy,
/// exercising stack locality.
#[must_use]
pub fn fib_recursive(n: u32) -> String {
    format!(
        "\
        li   r1, {n}\n\
        call fib\n\
        li   r5, {out}\n\
        sw   r2, (r5)\n\
        halt\n\
        # fib(r1) -> r2, clobbers r3, r4; uses the memory stack for locals\n\
        fib:\n\
        li   r3, 2\n\
        blt  r1, r3, base\n\
        addi r15, r15, -8     # frame: save n and fib(n-1)\n\
        sw   r1, (r15)\n\
        addi r1, r1, -1\n\
        call fib\n\
        sw   r2, 4(r15)\n\
        lw   r1, (r15)\n\
        addi r1, r1, -2\n\
        call fib\n\
        lw   r4, 4(r15)\n\
        add  r2, r2, r4\n\
        addi r15, r15, 8\n\
        ret\n\
        base:\n\
        add  r2, r1, r0       # fib(0)=0, fib(1)=1\n\
        ret\n",
        n = n,
        out = OUT_BASE
    )
}

/// Assembles and runs a program with inputs pre-loaded, returning the
/// outcome and the machine for result inspection.
///
/// # Errors
///
/// [`AsmError`] when the source does not assemble.
pub fn run_program(
    source: &str,
    inputs: &[(u64, u32)],
    fuel: u64,
) -> Result<(Cpu, RunOutcome), AsmError> {
    let program = assemble(source)?;
    let mut cpu = Cpu::new();
    for &(addr, value) in inputs {
        cpu.poke_word(addr, value);
    }
    let outcome = cpu.run(&program, fuel);
    Ok((cpu, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Stop;
    use dew_trace::AccessKind;

    #[test]
    fn vector_sum_computes_and_streams() {
        let inputs: Vec<(u64, u32)> = (0..50).map(|i| (A_BASE + i * 4, (i + 1) as u32)).collect();
        let (cpu, out) = run_program(&vector_sum(50), &inputs, 10_000).expect("assembles");
        assert_eq!(out.stop, Stop::Halted);
        assert_eq!(cpu.peek_word(OUT_BASE), (1..=50).sum::<u32>());
        let reads = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Read)
            .count();
        assert_eq!(reads, 50, "one load per element");
    }

    #[test]
    fn memcpy_copies_exactly() {
        let inputs: Vec<(u64, u32)> = (0..32)
            .map(|i| (A_BASE + i * 4, 0xA0_0000 + i as u32))
            .collect();
        let (cpu, out) = run_program(&memcpy_words(32), &inputs, 10_000).expect("assembles");
        assert_eq!(out.stop, Stop::Halted);
        for i in 0..32u64 {
            assert_eq!(cpu.peek_word(B_BASE + i * 4), 0xA0_0000 + i as u32);
        }
        let writes = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .count();
        assert_eq!(writes, 32);
    }

    #[test]
    fn histogram_counts_every_byte() {
        // Bytes 0..16 repeated: counter b gets n/16 increments.
        let mut inputs = Vec::new();
        for w in 0..16u64 {
            // four bytes per word: w*4, w*4+1, ...
            let b0 = (w * 4 % 16) as u32;
            let word = b0 | ((b0 + 1) % 16) << 8 | ((b0 + 2) % 16) << 16 | ((b0 + 3) % 16) << 24;
            inputs.push((A_BASE + w * 4, word));
        }
        let (cpu, out) = run_program(&histogram(64), &inputs, 50_000).expect("assembles");
        assert_eq!(out.stop, Stop::Halted);
        let total: u32 = (0..256u64).map(|b| cpu.peek_word(OUT_BASE + b * 4)).sum();
        assert_eq!(total, 64, "every byte counted once");
    }

    #[test]
    fn matmul_computes_the_product() {
        // 3x3: A = row-major 1..9, B = identity -> OUT == A.
        let n = 3u64;
        let mut inputs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                inputs.push((A_BASE + (i * n + j) * 4, (i * n + j + 1) as u32));
                inputs.push((B_BASE + (i * n + j) * 4, u32::from(i == j)));
            }
        }
        let (cpu, out) = run_program(&matmul(3), &inputs, 100_000).expect("assembles");
        assert_eq!(out.stop, Stop::Halted);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    cpu.peek_word(OUT_BASE + (i * n + j) * 4),
                    (i * n + j + 1) as u32,
                    "OUT[{i}][{j}]"
                );
            }
        }
        // n^3 loads of A and of B each, n^2 stores.
        let reads = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Read)
            .count() as u64;
        let writes = out
            .trace
            .iter()
            .filter(|r| r.kind == AccessKind::Write)
            .count() as u64;
        assert_eq!(reads, 2 * n * n * n);
        assert_eq!(writes, n * n);
    }

    #[test]
    fn fib_recursive_is_correct_and_stack_heavy() {
        let (cpu, out) = run_program(&fib_recursive(12), &[], 1_000_000).expect("assembles");
        assert_eq!(out.stop, Stop::Halted);
        assert_eq!(cpu.peek_word(OUT_BASE), 144, "fib(12)");
        // Recursion drives significant stack traffic.
        let data = out
            .trace
            .iter()
            .filter(|r| r.kind != AccessKind::InstrFetch)
            .count();
        assert!(data > 500, "stack frames read and written: {data}");
    }

    #[test]
    fn executed_traces_have_realistic_ifetch_majorities() {
        let inputs: Vec<(u64, u32)> = (0..100).map(|i| (A_BASE + i * 4, i as u32)).collect();
        let (_, out) = run_program(&vector_sum(100), &inputs, 10_000).expect("assembles");
        let f = out.trace.stats().ifetch_fraction();
        assert!((0.5..0.95).contains(&f), "ifetch fraction {f}");
    }
}
