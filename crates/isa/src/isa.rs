//! The instruction set: a 16-register little RISC machine.
//!
//! Sixteen 64-bit registers `r0..r15` (`r0` reads as zero; `r15` is the
//! stack pointer by convention), 4-byte instructions, byte-addressed memory
//! with word (4-byte) and byte loads/stores. Rich enough to express the
//! loop/call/table-lookup structure of embedded kernels, small enough to
//! interpret in a page of code.

use std::fmt;

/// A register name `r0..r15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);
    /// The conventional stack pointer.
    pub const SP: Reg = Reg(15);
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction. Branch/jump/call targets are instruction indices
/// (resolved from labels by the assembler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = imm`
    Li(Reg, i64),
    /// `rd = ra + rb`
    Add(Reg, Reg, Reg),
    /// `rd = ra - rb`
    Sub(Reg, Reg, Reg),
    /// `rd = ra * rb`
    Mul(Reg, Reg, Reg),
    /// `rd = ra + imm`
    Addi(Reg, Reg, i64),
    /// `rd = ra >> imm` (arithmetic)
    Sari(Reg, Reg, u32),
    /// `rd = ra & imm`
    Andi(Reg, Reg, i64),
    /// `rd = mem32[ra + imm]` (sign-less 32-bit load)
    Lw(Reg, Reg, i64),
    /// `mem32[ra + imm] = rs`
    Sw(Reg, Reg, i64),
    /// `rd = mem8[ra + imm]`
    Lb(Reg, Reg, i64),
    /// `mem8[ra + imm] = rs`
    Sb(Reg, Reg, i64),
    /// branch to `target` when `ra == rb`
    Beq(Reg, Reg, usize),
    /// branch to `target` when `ra != rb`
    Bne(Reg, Reg, usize),
    /// branch to `target` when `ra < rb` (signed)
    Blt(Reg, Reg, usize),
    /// unconditional jump
    Jmp(usize),
    /// push the return index on the stack and jump
    Call(usize),
    /// pop the return index and jump to it
    Ret,
    /// stop execution
    Halt,
    /// do nothing
    Nop,
}

impl Instr {
    /// `true` for instructions that end a basic block.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Beq(..)
                | Instr::Bne(..)
                | Instr::Blt(..)
                | Instr::Jmp(_)
                | Instr::Call(_)
                | Instr::Ret
                | Instr::Halt
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Li(d, i) => write!(f, "li {d}, {i}"),
            Instr::Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Instr::Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Instr::Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Instr::Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Instr::Sari(d, a, i) => write!(f, "sari {d}, {a}, {i}"),
            Instr::Andi(d, a, i) => write!(f, "andi {d}, {a}, {i}"),
            Instr::Lw(d, a, i) => write!(f, "lw {d}, {i}({a})"),
            Instr::Sw(s, a, i) => write!(f, "sw {s}, {i}({a})"),
            Instr::Lb(d, a, i) => write!(f, "lb {d}, {i}({a})"),
            Instr::Sb(s, a, i) => write!(f, "sb {s}, {i}({a})"),
            Instr::Beq(a, b, t) => write!(f, "beq {a}, {b}, @{t}"),
            Instr::Bne(a, b, t) => write!(f, "bne {a}, {b}, @{t}"),
            Instr::Blt(a, b, t) => write!(f, "blt {a}, {b}, @{t}"),
            Instr::Jmp(t) => write!(f, "jmp @{t}"),
            Instr::Call(t) => write!(f, "call @{t}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Halt => write!(f, "halt"),
            Instr::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Jmp(0).is_control_flow());
        assert!(Instr::Ret.is_control_flow());
        assert!(Instr::Halt.is_control_flow());
        assert!(!Instr::Add(Reg(1), Reg(2), Reg(3)).is_control_flow());
        assert!(!Instr::Lw(Reg(1), Reg(2), 0).is_control_flow());
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(Instr::Li(Reg(3), -7).to_string(), "li r3, -7");
        assert_eq!(Instr::Lw(Reg(1), Reg(2), 8).to_string(), "lw r1, 8(r2)");
        assert_eq!(Instr::Beq(Reg(1), Reg(0), 5).to_string(), "beq r1, r0, @5");
    }
}
