//! Property tests for the ISA crate: display/assemble round trips and
//! interpreter safety under arbitrary programs.

use proptest::prelude::*;

use dew_isa::isa::{Instr, Reg};
use dew_isa::{assemble, Cpu};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg)
}

/// Arbitrary instructions with branch targets inside `0..len` and memory
/// addressing kept in a safe data window.
fn instr_strategy(len: usize) -> impl Strategy<Value = Instr> {
    let r = reg_strategy;
    prop_oneof![
        (r(), -1_000_000i64..1_000_000).prop_map(|(d, i)| Instr::Li(d, i)),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Add(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Sub(d, a, b)),
        (r(), r(), r()).prop_map(|(d, a, b)| Instr::Mul(d, a, b)),
        (r(), r(), -4096i64..4096).prop_map(|(d, a, i)| Instr::Addi(d, a, i)),
        (r(), r(), 0u32..64).prop_map(|(d, a, i)| Instr::Sari(d, a, i)),
        (r(), r(), 0i64..0xffff).prop_map(|(d, a, i)| Instr::Andi(d, a, i)),
        (r(), r(), 0i64..4096).prop_map(|(d, a, i)| Instr::Lw(d, a, i)),
        (r(), r(), 0i64..4096).prop_map(|(s, a, i)| Instr::Sw(s, a, i)),
        (r(), r(), 0i64..4096).prop_map(|(d, a, i)| Instr::Lb(d, a, i)),
        (r(), r(), 0i64..4096).prop_map(|(s, a, i)| Instr::Sb(s, a, i)),
        (r(), r(), 0..len).prop_map(|(a, b, t)| Instr::Beq(a, b, t)),
        (r(), r(), 0..len).prop_map(|(a, b, t)| Instr::Bne(a, b, t)),
        (r(), r(), 0..len).prop_map(|(a, b, t)| Instr::Blt(a, b, t)),
        (0..len).prop_map(Instr::Jmp),
        Just(Instr::Nop),
        Just(Instr::Halt),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Instr>> {
    (1usize..40).prop_flat_map(|len| prop::collection::vec(instr_strategy(len), len))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn display_then_assemble_round_trips(program in program_strategy()) {
        let source: String =
            program.iter().map(|i| format!("{i}\n")).collect();
        let back = assemble(&source).expect("display output assembles");
        prop_assert_eq!(back, program);
    }

    #[test]
    fn interpreter_is_fuel_safe_on_arbitrary_programs(
        program in program_strategy(),
        fuel in 1u64..20_000,
    ) {
        // No panic, bounded work, bounded trace, regardless of the program.
        let mut cpu = Cpu::new();
        let out = cpu.run(&program, fuel);
        prop_assert!(out.instructions <= fuel);
        // Each instruction emits at most 2 records (ifetch + 1 data access).
        prop_assert!(out.trace.len() as u64 <= 2 * out.instructions);
        prop_assert!(cpu.reg(Reg::ZERO) == 0, "r0 stays zero");
    }

    #[test]
    fn executed_traces_feed_dew_exactly(program in program_strategy()) {
        use dew_cachesim::{simulate_trace, CacheConfig, Replacement};
        use dew_core::{DewOptions, DewTree, PassConfig};

        let mut cpu = Cpu::new();
        let out = cpu.run(&program, 3_000);
        if out.trace.is_empty() {
            return Ok(());
        }
        let pass = PassConfig::new(2, 0, 4, 2).expect("valid");
        let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
        tree.run(out.trace.iter().copied());
        for set_bits in 0..=4u32 {
            let sets = 1u32 << set_bits;
            for assoc in [1u32, 2] {
                let config =
                    CacheConfig::new(sets, assoc, 4, Replacement::Fifo).expect("valid");
                let expected = simulate_trace(config, out.trace.records()).misses();
                prop_assert_eq!(tree.results().misses(sets, assoc), Some(expected));
            }
        }
    }
}
