//! The `dew serve` server: a bounded-admission, deadline-aware, drainable
//! simulation service over plain `std::net` TCP.
//!
//! Architecture (no async runtime — blocking threads end to end):
//!
//! ```text
//!             accept loop (nonblocking, 10 ms poll)
//!                  │ one thread per connection
//!                  ▼
//!   parse line → admission ──full──▶ rejected: overloaded   (shed, never queued)
//!                  │ try_push(id)
//!                  ▼
//!           BoundedQueue<u64> ◀── close_and_drain() at shutdown (→ shed)
//!                  │ pop()
//!                  ▼
//!            worker pool (fixed) ── per-job CancelToken (deadline at admission)
//!                  │ sweep_trace_streamed_resilient + MemoryCheckpointStore
//!                  ▼
//!        job table: exactly one terminal state per admitted job
//!        {completed | deadline_exceeded | cancelled | failed | shed}
//! ```
//!
//! Invariants the soak bench asserts:
//!
//! * every submission gets exactly one response: an id (admitted) or a
//!   structured rejection (shed) — the accept path never blocks on the
//!   worker pool;
//! * every admitted job reaches exactly one terminal state, and the
//!   server's counters reconcile with the client-side log;
//! * graceful shutdown stops admissions, drains in-flight jobs (bounded
//!   by the drain timeout, after which their tokens are cancelled and the
//!   jobs checkpoint via the resilient-sweep machinery), and reports
//!   drained vs cancelled vs shed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::{num, obj, str, Json};
use crate::protocol::{JobKind, Request, SubmitRequest};
use crate::queue::{BoundedQueue, PushError};
use dew_core::{
    CancelReason, CancelToken, ConfigSpace, DewOptions, FailureKind, MemoryCheckpointStore,
    Resilience, RetryPolicy, SweepOutcome, SweepRequest,
};
use dew_explore::{best_edp_under, evaluate_sweep, pareto_front, EnergyModel};
use dew_trace::{FaultPlan, FaultyTraceSource, Record, TraceError, TraceSource};

/// Tunables of one server instance. [`ServeConfig::default`] suits tests
/// and the soak bench; the CLI maps flags onto these fields.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are shed.
    pub queue_capacity: usize,
    /// Deadline applied when a submit omits `deadline_ms`.
    pub default_deadline: Duration,
    /// Upper bound on client-requested deadlines.
    pub max_deadline: Duration,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// How long graceful shutdown waits for in-flight jobs before
    /// cancelling their tokens (they checkpoint and finish promptly).
    pub drain_timeout: Duration,
    /// Simulation threads per job (jobs are the unit of parallelism, so 1
    /// is the right default; the worker pool provides the concurrency).
    pub sim_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_capacity: 16,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            io_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            sim_threads: 1,
        }
    }
}

/// Aggregate counters; every field is monotonic, so a client can diff two
/// snapshots. `submitted == accepted + rejected_overloaded +
/// rejected_draining`, and every accepted job eventually lands in exactly
/// one of the five terminal counters.
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    accepted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_draining: AtomicU64,
    malformed: AtomicU64,
    completed: AtomicU64,
    deadline_exceeded: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Json {
        obj([
            ("submitted", num(self.submitted.load(Ordering::Relaxed))),
            ("accepted", num(self.accepted.load(Ordering::Relaxed))),
            (
                "rejected_overloaded",
                num(self.rejected_overloaded.load(Ordering::Relaxed)),
            ),
            (
                "rejected_draining",
                num(self.rejected_draining.load(Ordering::Relaxed)),
            ),
            ("malformed", num(self.malformed.load(Ordering::Relaxed))),
            ("completed", num(self.completed.load(Ordering::Relaxed))),
            (
                "deadline_exceeded",
                num(self.deadline_exceeded.load(Ordering::Relaxed)),
            ),
            ("cancelled", num(self.cancelled.load(Ordering::Relaxed))),
            ("failed", num(self.failed.load(Ordering::Relaxed))),
            ("shed", num(self.shed.load(Ordering::Relaxed))),
        ])
    }
}

/// One admitted job's lifecycle state.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Completed {
        summary: Json,
    },
    DeadlineExceeded {
        records_done: u64,
        checkpointed: bool,
    },
    Cancelled {
        records_done: u64,
        checkpointed: bool,
    },
    Failed {
        error: String,
    },
    Shed,
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed { .. } => "completed",
            JobState::DeadlineExceeded { .. } => "deadline_exceeded",
            JobState::Cancelled { .. } => "cancelled",
            JobState::Failed { .. } => "failed",
            JobState::Shed => "shed",
        }
    }

    fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

#[derive(Debug)]
struct JobEntry {
    req: SubmitRequest,
    token: CancelToken,
    state: JobState,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

struct Inner {
    cfg: ServeConfig,
    queue: BoundedQueue<u64>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    job_done: Condvar,
    next_id: AtomicU64,
    stats: Stats,
    /// Admissions stopped (drain begun).
    draining: AtomicBool,
    /// Accept loop should exit.
    stopping: AtomicBool,
    /// Serialises shutdown; holds the one computed report.
    drain_report: Mutex<Option<DrainReport>>,
}

/// What graceful shutdown did, for the `shutdown` response and the CLI's
/// exit report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs running or queued when the drain began.
    pub in_flight: u64,
    /// Of those, jobs that reached a natural terminal state
    /// (completed/deadline/failed) within the drain timeout.
    pub drained: u64,
    /// Jobs force-cancelled when the drain timeout expired; each flushed
    /// a final checkpoint through the resilient-sweep machinery.
    pub cancelled: u64,
    /// Queued jobs that never started and were shed at shutdown.
    pub shed: u64,
}

impl DrainReport {
    /// The report as a protocol JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj([
            ("in_flight", num(self.in_flight)),
            ("drained", num(self.drained)),
            ("cancelled", num(self.cancelled)),
            ("shed", num(self.shed)),
        ])
    }
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drain: {} in flight, {} drained, {} cancelled (checkpointed), {} shed",
            self.in_flight, self.drained, self.cancelled, self.shed
        )
    }
}

/// A running `dew serve` instance. Dropping without [`Server::stop`] leaks
/// the threads until process exit; call `stop` for an orderly teardown.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            queue: BoundedQueue::new(cfg.queue_capacity),
            jobs: Mutex::new(HashMap::new()),
            job_done: Condvar::new(),
            next_id: AtomicU64::new(1),
            stats: Stats::default(),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            drain_report: Mutex::new(None),
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("dew-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dew-serve-accept".to_owned())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawn accept loop")
        };
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been initiated (locally or via the protocol).
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        self.inner.stopping.load(Ordering::Acquire)
    }

    /// Initiates (or joins an already-running) graceful shutdown and
    /// returns its report. Admissions stop, queued jobs are shed,
    /// in-flight jobs get the drain timeout to finish before their
    /// cancellation tokens fire.
    pub fn begin_shutdown(&self) -> DrainReport {
        self.inner.shutdown()
    }

    /// Graceful shutdown plus thread teardown. Returns the drain report.
    pub fn stop(mut self) -> DrainReport {
        let report = self.inner.shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        report
    }
}

impl Inner {
    fn shutdown(&self) -> DrainReport {
        let mut slot = self.drain_report.lock().expect("drain lock poisoned");
        if let Some(report) = *slot {
            return report;
        }
        self.draining.store(true, Ordering::Release);

        // Shed everything still queued; those jobs never started.
        let shed_ids = self.queue.close_and_drain();
        let (in_flight, shed) = {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            let mut shed = 0;
            for id in shed_ids {
                if let Some(entry) = jobs.get_mut(&id) {
                    if !entry.state.is_terminal() {
                        entry.state = JobState::Shed;
                        entry.finished = Some(Instant::now());
                        Stats::bump(&self.stats.shed);
                        shed += 1;
                    }
                }
            }
            let running: Vec<u64> = jobs
                .iter()
                .filter(|(_, e)| !e.state.is_terminal())
                .map(|(id, _)| *id)
                .collect();
            self.job_done.notify_all();
            (running, shed)
        };

        // Phase 1: let in-flight jobs drain naturally.
        let drain_deadline = Instant::now() + self.cfg.drain_timeout;
        self.await_terminal(&in_flight, Some(drain_deadline));

        // Phase 2: cancel stragglers; they checkpoint and exit at the next
        // chunk boundary, so this wait is short and unbounded on purpose.
        {
            let jobs = self.jobs.lock().expect("job table poisoned");
            for id in &in_flight {
                if let Some(e) = jobs.get(id) {
                    if !e.state.is_terminal() {
                        e.token.cancel();
                    }
                }
            }
        }
        self.await_terminal(&in_flight, None);

        let (drained, cancelled) = {
            let jobs = self.jobs.lock().expect("job table poisoned");
            let mut drained = 0;
            let mut cancelled = 0;
            for id in &in_flight {
                match jobs.get(id).map(|e| &e.state) {
                    Some(JobState::Cancelled { .. }) => cancelled += 1,
                    Some(s) if s.is_terminal() && !matches!(s, JobState::Shed) => drained += 1,
                    _ => {}
                }
            }
            (drained, cancelled)
        };
        let report = DrainReport {
            in_flight: in_flight.len() as u64,
            drained,
            cancelled,
            shed,
        };
        *slot = Some(report);
        self.stopping.store(true, Ordering::Release);
        report
    }

    /// Blocks until every id in `ids` is terminal, or `until` passes.
    fn await_terminal(&self, ids: &[u64], until: Option<Instant>) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        loop {
            let pending = ids
                .iter()
                .any(|id| jobs.get(id).is_some_and(|e| !e.state.is_terminal()));
            if !pending {
                return;
            }
            let wait = match until {
                Some(deadline) => match deadline.checked_duration_since(Instant::now()) {
                    Some(left) => left.min(Duration::from_millis(50)),
                    None => return,
                },
                None => Duration::from_millis(50),
            };
            jobs = self
                .job_done
                .wait_timeout(jobs, wait)
                .expect("job table poisoned")
                .0;
        }
    }

    fn handle(&self, req: Request) -> Json {
        match req {
            Request::Submit(submit) => self.submit(submit),
            Request::Status { id } => self.status(id),
            Request::Wait { id, timeout_ms } => self.wait(id, timeout_ms),
            Request::Cancel { id } => self.cancel(id),
            Request::Stats => obj([
                ("ok", Json::Bool(true)),
                ("stats", self.stats.snapshot()),
                ("queue_depth", num(self.queue.depth() as u64)),
                ("workers", num(self.cfg.workers as u64)),
                (
                    "draining",
                    Json::Bool(self.draining.load(Ordering::Acquire)),
                ),
            ]),
            Request::Health => obj([
                ("ok", Json::Bool(true)),
                (
                    "status",
                    str(if self.draining.load(Ordering::Acquire) {
                        "draining"
                    } else {
                        "ok"
                    }),
                ),
                ("queue_depth", num(self.queue.depth() as u64)),
            ]),
            Request::Shutdown => {
                let report = self.shutdown();
                obj([
                    ("ok", Json::Bool(true)),
                    ("status", str("stopped")),
                    ("drain", report.to_json()),
                ])
            }
        }
    }

    fn submit(&self, req: SubmitRequest) -> Json {
        Stats::bump(&self.stats.submitted);
        if self.draining.load(Ordering::Acquire) {
            Stats::bump(&self.stats.rejected_draining);
            return obj([("ok", Json::Bool(false)), ("rejected", str("draining"))]);
        }
        // Validate the space up front so a bad geometry is a submit error,
        // not a failed job.
        if let Err(e) = ConfigSpace::new(req.set_bits, req.block_bits, req.assoc_bits) {
            Stats::bump(&self.stats.malformed);
            return obj([
                ("ok", Json::Bool(false)),
                ("error", str(format!("invalid space: {e}"))),
            ]);
        }
        let deadline = req
            .deadline_ms
            .map_or(self.cfg.default_deadline, Duration::from_millis)
            .min(self.cfg.max_deadline);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = JobEntry {
            req,
            // The deadline clock starts at admission: queueing time counts,
            // so a deadline bounds *response* time, not just compute time.
            token: CancelToken::with_deadline(deadline),
            state: JobState::Queued,
            submitted: Instant::now(),
            started: None,
            finished: None,
        };
        self.jobs
            .lock()
            .expect("job table poisoned")
            .insert(id, entry);
        match self.queue.try_push(id) {
            Ok(()) => {
                Stats::bump(&self.stats.accepted);
                obj([
                    ("ok", Json::Bool(true)),
                    ("id", num(id)),
                    ("status", str("queued")),
                ])
            }
            Err((why, _)) => {
                // Shed: withdraw the table entry — the job was never
                // admitted, and the client is told to back off.
                self.jobs.lock().expect("job table poisoned").remove(&id);
                let (counter, label) = match why {
                    PushError::Full => (&self.stats.rejected_overloaded, "overloaded"),
                    PushError::Closed => (&self.stats.rejected_draining, "draining"),
                };
                Stats::bump(counter);
                obj([
                    ("ok", Json::Bool(false)),
                    ("rejected", str(label)),
                    ("retry_after_ms", num(50)),
                ])
            }
        }
    }

    fn status(&self, id: u64) -> Json {
        let jobs = self.jobs.lock().expect("job table poisoned");
        match jobs.get(&id) {
            None => unknown_id(id),
            Some(entry) => status_json(id, entry),
        }
    }

    fn wait(&self, id: u64, timeout_ms: Option<u64>) -> Json {
        const MAX_WAIT: Duration = Duration::from_secs(300);
        let cap = timeout_ms
            .map_or(Duration::from_secs(60), Duration::from_millis)
            .min(MAX_WAIT);
        let deadline = Instant::now() + cap;
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        loop {
            match jobs.get(&id) {
                None => return unknown_id(id),
                Some(entry) if entry.state.is_terminal() => return status_json(id, entry),
                Some(entry) => {
                    let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                        let mut v = status_json(id, entry);
                        if let Json::Obj(m) = &mut v {
                            m.insert("timed_out".to_owned(), Json::Bool(true));
                        }
                        return v;
                    };
                    jobs = self
                        .job_done
                        .wait_timeout(jobs, left.min(Duration::from_millis(100)))
                        .expect("job table poisoned")
                        .0;
                }
            }
        }
    }

    fn cancel(&self, id: u64) -> Json {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        match jobs.get_mut(&id) {
            None => unknown_id(id),
            Some(entry) => match &entry.state {
                JobState::Queued => {
                    // Never started: terminal immediately. The worker that
                    // later pops this id sees a terminal state and skips.
                    entry.state = JobState::Cancelled {
                        records_done: 0,
                        checkpointed: false,
                    };
                    entry.finished = Some(Instant::now());
                    entry.token.cancel();
                    Stats::bump(&self.stats.cancelled);
                    self.job_done.notify_all();
                    obj([
                        ("ok", Json::Bool(true)),
                        ("id", num(id)),
                        ("status", str("cancelled")),
                    ])
                }
                JobState::Running => {
                    // Cooperative: the token fires at the job's next chunk
                    // boundary; the terminal state arrives via wait/status.
                    entry.token.cancel();
                    obj([
                        ("ok", Json::Bool(true)),
                        ("id", num(id)),
                        ("status", str("cancelling")),
                    ])
                }
                terminal => obj([
                    ("ok", Json::Bool(true)),
                    ("id", num(id)),
                    ("status", str(terminal.name())),
                    ("already_terminal", Json::Bool(true)),
                ]),
            },
        }
    }
}

fn unknown_id(id: u64) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("error", str(format!("unknown job id {id}"))),
    ])
}

fn status_json(id: u64, entry: &JobEntry) -> Json {
    let mut m = match &entry.state {
        JobState::Completed { summary } => {
            let mut m = std::collections::BTreeMap::new();
            m.insert("result".to_owned(), summary.clone());
            m
        }
        JobState::DeadlineExceeded {
            records_done,
            checkpointed,
        }
        | JobState::Cancelled {
            records_done,
            checkpointed,
        } => {
            let mut m = std::collections::BTreeMap::new();
            m.insert("records_done".to_owned(), num(*records_done));
            m.insert("checkpointed".to_owned(), Json::Bool(*checkpointed));
            m
        }
        JobState::Failed { error } => {
            let mut m = std::collections::BTreeMap::new();
            m.insert("error".to_owned(), str(error.clone()));
            m
        }
        _ => std::collections::BTreeMap::new(),
    };
    m.insert("ok".to_owned(), Json::Bool(true));
    m.insert("id".to_owned(), num(id));
    m.insert("status".to_owned(), str(entry.state.name()));
    #[allow(clippy::cast_possible_truncation)]
    if let Some(started) = entry.started {
        let queued_ms = started.duration_since(entry.submitted).as_millis() as u64;
        m.insert("queued_ms".to_owned(), num(queued_ms));
        if let Some(finished) = entry.finished {
            let run_ms = finished.duration_since(started).as_millis() as u64;
            m.insert("run_ms".to_owned(), num(run_ms));
        }
    }
    Json::Obj(m)
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        if inner.stopping.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("dew-serve-conn".to_owned())
                    .spawn(move || serve_connection(stream, &inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(inner.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(inner.cfg.io_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(_) => return, // read timeout or reset: drop the connection
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = match Request::parse(trimmed) {
            Ok(req) => inner.handle(req),
            Err(msg) => {
                Stats::bump(&inner.stats.malformed);
                obj([("ok", Json::Bool(false)), ("error", str(msg))])
            }
        };
        let mut out = response.emit();
        out.push('\n');
        if writer.write_all(out.as_bytes()).is_err() {
            return;
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(id) = inner.queue.pop() {
        // Claim the job; skip ids that were cancelled while queued.
        let claimed = {
            let mut jobs = inner.jobs.lock().expect("job table poisoned");
            match jobs.get_mut(&id) {
                Some(entry) if matches!(entry.state, JobState::Queued) => {
                    entry.state = JobState::Running;
                    entry.started = Some(Instant::now());
                    Some((entry.req, entry.token.clone()))
                }
                _ => None,
            }
        };
        let Some((req, token)) = claimed else {
            continue;
        };
        let result = run_job(&req, &token, inner.cfg.sim_threads);
        let mut jobs = inner.jobs.lock().expect("job table poisoned");
        if let Some(entry) = jobs.get_mut(&id) {
            // A cancel-while-queued cannot have raced us (we claimed the
            // Queued→Running transition under the lock), so the state here
            // is still Running; record the terminal outcome.
            let (state, counter) = match result {
                RunResult::Done(summary) => {
                    (JobState::Completed { summary }, &inner.stats.completed)
                }
                RunResult::Deadline {
                    records_done,
                    checkpointed,
                } => (
                    JobState::DeadlineExceeded {
                        records_done,
                        checkpointed,
                    },
                    &inner.stats.deadline_exceeded,
                ),
                RunResult::Cancelled {
                    records_done,
                    checkpointed,
                } => (
                    JobState::Cancelled {
                        records_done,
                        checkpointed,
                    },
                    &inner.stats.cancelled,
                ),
                RunResult::Failed(error) => (JobState::Failed { error }, &inner.stats.failed),
            };
            entry.state = state;
            entry.finished = Some(Instant::now());
            Stats::bump(counter);
        }
        inner.job_done.notify_all();
    }
}

enum RunResult {
    Done(Json),
    Deadline {
        records_done: u64,
        checkpointed: bool,
    },
    Cancelled {
        records_done: u64,
        checkpointed: bool,
    },
    Failed(String),
}

fn ok_record(r: Record) -> Result<Record, TraceError> {
    Ok(r)
}

/// The chaos plan a `"chaos": true` submission wraps its source in:
/// transient open/read faults exercising retry/backoff, plus latency
/// injection ([`FaultPlan::delay_every`]) so the retry path is also
/// exercised under a *slow* source, not just a failing one. The budgets
/// are within the worker's retry policy, so chaos jobs still complete.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: seed ^ 0x5eed_cafe,
        fail_opens: 1,
        transient_per_10k: 2,
        transient_budget: 6,
        delay_every: 4096,
        delay: Duration::from_micros(200),
        ..FaultPlan::none()
    }
}

fn run_job(req: &SubmitRequest, token: &CancelToken, sim_threads: usize) -> RunResult {
    let space = match ConfigSpace::new(req.set_bits, req.block_bits, req.assoc_bits) {
        Ok(s) => s,
        Err(e) => return RunResult::Failed(format!("invalid space: {e}")),
    };
    let options = DewOptions::for_policy(req.policy);
    let spec = req.traffic;
    let store = MemoryCheckpointStore::new();
    // Checkpoint a handful of times per job so cancellation always has a
    // recent cut to flush, without dominating small jobs.
    let every = (spec.requests / 4).max(1_000);
    let source = move || Ok(spec.records().map(ok_record));
    let outcome = if req.chaos {
        let faulty = FaultyTraceSource::new(source, chaos_plan(spec.seed));
        sweep_with(&space, &faulty, options, sim_threads, every, &store, token)
    } else {
        sweep_with(&space, &source, options, sim_threads, every, &store, token)
    };
    summarise(req, &store, token, outcome)
}

fn sweep_with<S: TraceSource>(
    space: &ConfigSpace,
    source: &S,
    options: DewOptions,
    threads: usize,
    every: u64,
    store: &MemoryCheckpointStore,
    token: &CancelToken,
) -> Result<SweepOutcome, dew_core::DewError> {
    let res = Resilience::new()
        .with_retry(RetryPolicy {
            max_retries: 16,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(20),
        })
        .fail_fast(false)
        .with_checkpoint(every, store)
        .with_cancel(token);
    SweepRequest::new(space)
        .options(options)
        .threads(threads)
        .resilient(&res)
        .run_streamed(source)
}

fn summarise(
    req: &SubmitRequest,
    store: &MemoryCheckpointStore,
    token: &CancelToken,
    outcome: Result<SweepOutcome, dew_core::DewError>,
) -> RunResult {
    let checkpointed = store.latest().is_some();
    match outcome {
        Ok(out) if !out.is_partial() => RunResult::Done(summary_json(req, &out)),
        Ok(out) => {
            let cancelled_only = out
                .failed_jobs()
                .iter()
                .all(|f| f.kind == FailureKind::Cancelled);
            match token.cancelled() {
                Some(reason) if cancelled_only => {
                    let records_done = out.records_simulated();
                    match reason {
                        CancelReason::DeadlineExceeded => RunResult::Deadline {
                            records_done,
                            checkpointed,
                        },
                        CancelReason::Requested => RunResult::Cancelled {
                            records_done,
                            checkpointed,
                        },
                    }
                }
                // Partial for another reason (e.g. chaos exhausted its
                // retry budget): a failure, reported verbatim.
                _ => RunResult::Failed(
                    out.failed_jobs()
                        .first()
                        .map_or_else(|| "partial outcome".to_owned(), |f| f.error.clone()),
                ),
            }
        }
        Err(e) => match token.cancelled() {
            Some(CancelReason::DeadlineExceeded) => RunResult::Deadline {
                records_done: 0,
                checkpointed,
            },
            Some(CancelReason::Requested) => RunResult::Cancelled {
                records_done: 0,
                checkpointed,
            },
            None => RunResult::Failed(e.to_string()),
        },
    }
}

fn summary_json(req: &SubmitRequest, out: &SweepOutcome) -> Json {
    let mut m = std::collections::BTreeMap::new();
    m.insert("configs".to_owned(), num(out.config_count() as u64));
    m.insert("accesses".to_owned(), num(out.accesses()));
    m.insert("records_simulated".to_owned(), num(out.records_simulated()));
    m.insert("traversals".to_owned(), num(out.trace_traversals()));
    m.insert("retries".to_owned(), num(out.retries()));
    if req.kind == JobKind::Explore {
        let evals = evaluate_sweep(out, &EnergyModel::default());
        let front = pareto_front(&evals);
        m.insert("pareto_front".to_owned(), num(front.len() as u64));
        if let Some(best) = best_edp_under(&evals, 64 * 1024) {
            m.insert(
                "best_edp".to_owned(),
                obj([
                    ("sets", num(u64::from(best.geometry.sets))),
                    ("assoc", num(u64::from(best.geometry.assoc))),
                    ("block_bytes", num(u64::from(best.geometry.block_bytes))),
                ]),
            );
        }
    }
    Json::Obj(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_report_renders_both_ways() {
        let r = DrainReport {
            in_flight: 3,
            drained: 2,
            cancelled: 1,
            shed: 4,
        };
        assert_eq!(
            r.to_json().emit(),
            r#"{"cancelled":1,"drained":2,"in_flight":3,"shed":4}"#
        );
        assert!(r.to_string().contains("2 drained"));
        assert!(r.to_string().contains("4 shed"));
    }

    #[test]
    fn job_states_name_and_terminality() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        for (s, name) in [
            (
                JobState::Completed {
                    summary: Json::Null,
                },
                "completed",
            ),
            (
                JobState::DeadlineExceeded {
                    records_done: 1,
                    checkpointed: true,
                },
                "deadline_exceeded",
            ),
            (
                JobState::Cancelled {
                    records_done: 0,
                    checkpointed: false,
                },
                "cancelled",
            ),
            (
                JobState::Failed {
                    error: "x".to_owned(),
                },
                "failed",
            ),
            (JobState::Shed, "shed"),
        ] {
            assert!(s.is_terminal());
            assert_eq!(s.name(), name);
        }
    }

    #[test]
    fn chaos_plan_is_deterministic_and_within_retry_budget() {
        assert_eq!(chaos_plan(9), chaos_plan(9));
        let plan = chaos_plan(9);
        assert!(plan.delay_every > 0, "latency injection is wired in");
        assert!(plan.transient_budget <= 16, "faults stay recoverable");
    }
}
