//! `dew gen`: a load generator for `dew serve`.
//!
//! Drives a server with a configurable request mix at a configurable
//! pressure, and — crucially for the soak harness — keeps a *client-side
//! log of every job's terminal outcome*, so the run can be reconciled
//! against the server's counters: every submitted job must end in exactly
//! one of completed / rejected / deadline-exceeded / cancelled / failed /
//! shed, with nothing lost and nothing double-counted.
//!
//! Two pressure modes:
//!
//! * **closed loop** (`rate: None`) — each client thread submits its next
//!   job as soon as the previous one reaches a terminal state; pressure
//!   adapts to service capacity (the classic saturation probe);
//! * **open loop** (`rate: Some(r)`) — jobs are released on a fixed
//!   schedule of `r` jobs/second across all threads regardless of
//!   completions, which is what actually exercises admission control: a
//!   slow server faces a growing backlog and must shed.
//!
//! The report carries jobs/sec plus p50/p95/p99 submit→terminal latency
//! over completed jobs, and every rejection/timeout tally.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dew_workloads::traffic::MixKind;

use crate::json::{num, obj, str, Json};

/// One protocol connection: line out, line in.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects and applies `io_timeout` to reads and writes.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the connection cannot be established.
    pub fn connect(addr: &str, io_timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request object, returns the one response object.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] on transport failure, a closed connection, or a
    /// response that is not valid JSON.
    pub fn request(&mut self, body: &Json) -> std::io::Result<Json> {
        let mut line = body.emit();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response JSON: {e}"),
            )
        })
    }
}

/// What one generated job's lifecycle ended as, from the client's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobOutcome {
    /// Terminal `completed`.
    Completed,
    /// Terminal `deadline_exceeded`.
    DeadlineExceeded,
    /// Terminal `cancelled`.
    Cancelled,
    /// Terminal `failed`.
    Failed,
    /// Terminal `shed` (queued job dropped by a server drain).
    Shed,
    /// Never admitted: `rejected: overloaded`.
    RejectedOverloaded,
    /// Never admitted: `rejected: draining`.
    RejectedDraining,
    /// The wait timed out before a terminal state was observed.
    WaitTimeout,
    /// The connection failed mid-job.
    TransportError,
}

/// Load-generator parameters; the CLI maps `dew gen` flags onto these.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total jobs to submit across all threads.
    pub jobs: u64,
    /// Client threads (each with its own connection).
    pub concurrency: usize,
    /// Request mix submitted with every job.
    pub mix: MixKind,
    /// Requests per job.
    pub requests: u64,
    /// Base seed; job `i` is submitted with `seed + i` so every job's
    /// stream is distinct yet the whole run replays deterministically.
    pub seed: u64,
    /// `Some(r)`: open-loop at `r` jobs/sec overall; `None`: closed loop.
    pub rate: Option<f64>,
    /// Per-job deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
    /// Submit jobs with chaos (fault-injected sources) enabled.
    pub chaos: bool,
    /// Client-side cap on each terminal-state wait.
    pub wait_timeout_ms: u64,
    /// Connection I/O timeout.
    pub io_timeout: Duration,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            addr: String::new(),
            jobs: 16,
            concurrency: 4,
            mix: MixKind::Zipf,
            requests: 20_000,
            seed: 1,
            rate: None,
            deadline_ms: None,
            chaos: false,
            wait_timeout_ms: 60_000,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// The reconciled result of one generator run.
#[derive(Debug, Clone, Default)]
pub struct GenReport {
    /// Jobs the generator attempted to submit.
    pub submitted: u64,
    /// Terminal `completed` observations.
    pub completed: u64,
    /// Terminal `deadline_exceeded` observations.
    pub deadline_exceeded: u64,
    /// Terminal `cancelled` observations.
    pub cancelled: u64,
    /// Terminal `failed` observations.
    pub failed: u64,
    /// Terminal `shed` observations.
    pub shed: u64,
    /// `rejected: overloaded` responses.
    pub rejected_overloaded: u64,
    /// `rejected: draining` responses.
    pub rejected_draining: u64,
    /// Client-side wait timeouts (job never observed terminal).
    pub wait_timeouts: u64,
    /// Transport failures.
    pub transport_errors: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Submit→terminal latencies of *completed* jobs, milliseconds,
    /// sorted ascending.
    pub latencies_ms: Vec<f64>,
}

impl GenReport {
    /// Every submitted job is accounted for exactly once.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        self.completed
            + self.deadline_exceeded
            + self.cancelled
            + self.failed
            + self.shed
            + self.rejected_overloaded
            + self.rejected_draining
            + self.wait_timeouts
            + self.transport_errors
            == self.submitted
    }

    /// Completed jobs per second of wall clock.
    #[must_use]
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            #[allow(clippy::cast_precision_loss)]
            {
                self.completed as f64 / secs
            }
        } else {
            0.0
        }
    }

    /// Latency percentile (`p` in 0..=100) over completed jobs, by the
    /// nearest-rank method; 0.0 when nothing completed.
    #[must_use]
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let n = self.latencies_ms.len();
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ms[rank - 1]
    }

    /// The report as a JSON object (the shape `dew gen --json` prints).
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj([
            ("submitted", num(self.submitted)),
            ("completed", num(self.completed)),
            ("deadline_exceeded", num(self.deadline_exceeded)),
            ("cancelled", num(self.cancelled)),
            ("failed", num(self.failed)),
            ("shed", num(self.shed)),
            ("rejected_overloaded", num(self.rejected_overloaded)),
            ("rejected_draining", num(self.rejected_draining)),
            ("wait_timeouts", num(self.wait_timeouts)),
            ("transport_errors", num(self.transport_errors)),
            ("elapsed_ms", Json::Num(self.elapsed.as_secs_f64() * 1e3)),
            ("jobs_per_sec", Json::Num(self.jobs_per_sec())),
            ("p50_ms", Json::Num(self.percentile_ms(50.0))),
            ("p95_ms", Json::Num(self.percentile_ms(95.0))),
            ("p99_ms", Json::Num(self.percentile_ms(99.0))),
        ])
    }

    fn record(&mut self, outcome: JobOutcome, latency: Duration) {
        self.submitted += 1;
        match outcome {
            JobOutcome::Completed => {
                self.completed += 1;
                self.latencies_ms.push(latency.as_secs_f64() * 1e3);
            }
            JobOutcome::DeadlineExceeded => self.deadline_exceeded += 1,
            JobOutcome::Cancelled => self.cancelled += 1,
            JobOutcome::Failed => self.failed += 1,
            JobOutcome::Shed => self.shed += 1,
            JobOutcome::RejectedOverloaded => self.rejected_overloaded += 1,
            JobOutcome::RejectedDraining => self.rejected_draining += 1,
            JobOutcome::WaitTimeout => self.wait_timeouts += 1,
            JobOutcome::TransportError => self.transport_errors += 1,
        }
    }

    fn merge(&mut self, other: GenReport) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.deadline_exceeded += other.deadline_exceeded;
        self.cancelled += other.cancelled;
        self.failed += other.failed;
        self.shed += other.shed;
        self.rejected_overloaded += other.rejected_overloaded;
        self.rejected_draining += other.rejected_draining;
        self.wait_timeouts += other.wait_timeouts;
        self.transport_errors += other.transport_errors;
        self.latencies_ms.extend(other.latencies_ms);
    }
}

impl std::fmt::Display for GenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gen: {} submitted in {:.2}s ({:.1} completed jobs/s)",
            self.submitted,
            self.elapsed.as_secs_f64(),
            self.jobs_per_sec()
        )?;
        writeln!(
            f,
            "  completed {}  deadline {}  cancelled {}  failed {}  shed {}",
            self.completed, self.deadline_exceeded, self.cancelled, self.failed, self.shed
        )?;
        writeln!(
            f,
            "  rejected: overloaded {}  draining {}  wait-timeouts {}  transport {}",
            self.rejected_overloaded,
            self.rejected_draining,
            self.wait_timeouts,
            self.transport_errors
        )?;
        write!(
            f,
            "  latency ms: p50 {:.1}  p95 {:.1}  p99 {:.1}",
            self.percentile_ms(50.0),
            self.percentile_ms(95.0),
            self.percentile_ms(99.0)
        )
    }
}

fn submit_body(cfg: &GenConfig, job_index: u64) -> Json {
    let mut m = std::collections::BTreeMap::new();
    m.insert("cmd".to_owned(), str("submit"));
    m.insert("mix".to_owned(), str(cfg.mix.name()));
    m.insert("requests".to_owned(), num(cfg.requests));
    m.insert("seed".to_owned(), num(cfg.seed + job_index));
    if let Some(ms) = cfg.deadline_ms {
        m.insert("deadline_ms".to_owned(), num(ms));
    }
    if cfg.chaos {
        m.insert("chaos".to_owned(), Json::Bool(true));
    }
    Json::Obj(m)
}

/// Drives one job to its client-visible end state.
fn run_one(client: &mut Client, cfg: &GenConfig, job_index: u64) -> (JobOutcome, Duration) {
    let begin = Instant::now();
    let response = match client.request(&submit_body(cfg, job_index)) {
        Ok(r) => r,
        Err(_) => return (JobOutcome::TransportError, begin.elapsed()),
    };
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        let outcome = match response.get("rejected").and_then(Json::as_str) {
            Some("overloaded") => JobOutcome::RejectedOverloaded,
            Some("draining") => JobOutcome::RejectedDraining,
            _ => JobOutcome::Failed,
        };
        return (outcome, begin.elapsed());
    }
    let Some(id) = response.get("id").and_then(Json::as_u64) else {
        return (JobOutcome::TransportError, begin.elapsed());
    };
    let wait = obj([
        ("cmd", str("wait")),
        ("id", num(id)),
        ("timeout_ms", num(cfg.wait_timeout_ms)),
    ]);
    let terminal = match client.request(&wait) {
        Ok(r) => r,
        Err(_) => return (JobOutcome::TransportError, begin.elapsed()),
    };
    let latency = begin.elapsed();
    if terminal.get("timed_out").and_then(Json::as_bool) == Some(true) {
        return (JobOutcome::WaitTimeout, latency);
    }
    let outcome = match terminal.get("status").and_then(Json::as_str) {
        Some("completed") => JobOutcome::Completed,
        Some("deadline_exceeded") => JobOutcome::DeadlineExceeded,
        Some("cancelled") => JobOutcome::Cancelled,
        Some("shed") => JobOutcome::Shed,
        _ => JobOutcome::Failed,
    };
    (outcome, latency)
}

/// Runs the full generator: `cfg.jobs` submissions spread over
/// `cfg.concurrency` threads, each logged to a terminal outcome.
///
/// A connection that dies is reopened for the next job, so one reset does
/// not poison a whole thread's schedule.
#[must_use]
pub fn run_gen(cfg: &GenConfig) -> GenReport {
    let started = Instant::now();
    let threads = cfg.concurrency.max(1);
    let reports: Vec<GenReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut report = GenReport::default();
                    let mut client = Client::connect(&cfg.addr, cfg.io_timeout).ok();
                    let mut index = t as u64;
                    while index < cfg.jobs {
                        // Open loop: release job `index` at its scheduled
                        // instant regardless of past completions.
                        if let Some(rate) = cfg.rate {
                            let due =
                                started + Duration::from_secs_f64(index as f64 / rate.max(0.001));
                            if let Some(pause) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(pause);
                            }
                        }
                        if client.is_none() {
                            client = Client::connect(&cfg.addr, cfg.io_timeout).ok();
                        }
                        match client.as_mut() {
                            None => report.record(JobOutcome::TransportError, Duration::ZERO),
                            Some(c) => {
                                let (outcome, latency) = run_one(c, cfg, index);
                                if outcome == JobOutcome::TransportError {
                                    client = None; // reconnect next job
                                }
                                report.record(outcome, latency);
                            }
                        }
                        index += threads as u64;
                    }
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gen thread panicked"))
            .collect()
    });
    let mut total = GenReport::default();
    for r in reports {
        total.merge(r);
    }
    total.elapsed = started.elapsed();
    total
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    total
}

/// Fetches the server's `stats` counters over a fresh connection —
/// the other half of the reconciliation the soak harness performs.
///
/// # Errors
///
/// [`std::io::Error`] on transport failure or a malformed response.
pub fn fetch_stats(addr: &str, io_timeout: Duration) -> std::io::Result<Json> {
    let mut client = Client::connect(addr, io_timeout)?;
    client.request(&obj([("cmd", str("stats"))]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reconciles_and_ranks_percentiles() {
        let mut r = GenReport::default();
        for (i, outcome) in [
            JobOutcome::Completed,
            JobOutcome::Completed,
            JobOutcome::Completed,
            JobOutcome::Completed,
            JobOutcome::DeadlineExceeded,
            JobOutcome::RejectedOverloaded,
            JobOutcome::Cancelled,
        ]
        .into_iter()
        .enumerate()
        {
            r.record(outcome, Duration::from_millis(10 * (i as u64 + 1)));
        }
        r.elapsed = Duration::from_secs(2);
        r.latencies_ms
            .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!(r.reconciles());
        assert_eq!(r.submitted, 7);
        assert_eq!(r.completed, 4);
        assert!((r.jobs_per_sec() - 2.0).abs() < 1e-9);
        // Latencies 10,20,30,40 → p50 = 20, p99 = 40 by nearest rank.
        assert!((r.percentile_ms(50.0) - 20.0).abs() < 1e-9);
        assert!((r.percentile_ms(99.0) - 40.0).abs() < 1e-9);
        // One unaccounted job breaks reconciliation.
        r.submitted += 1;
        assert!(!r.reconciles());
    }

    #[test]
    fn empty_report_is_safe() {
        let r = GenReport::default();
        assert!(r.reconciles());
        assert_eq!(r.jobs_per_sec(), 0.0);
        assert_eq!(r.percentile_ms(99.0), 0.0);
        assert!(r.to_json().emit().contains("\"p99_ms\":0"));
    }

    #[test]
    fn submit_bodies_vary_seed_and_carry_flags() {
        let cfg = GenConfig {
            mix: MixKind::Mix,
            deadline_ms: Some(500),
            chaos: true,
            seed: 100,
            ..GenConfig::default()
        };
        let a = submit_body(&cfg, 0).emit();
        let b = submit_body(&cfg, 3).emit();
        assert!(a.contains("\"seed\":100"));
        assert!(b.contains("\"seed\":103"));
        assert!(a.contains("\"deadline_ms\":500"));
        assert!(a.contains("\"chaos\":true"));
        assert!(a.contains("\"mix\":\"mix\""));
    }
}
