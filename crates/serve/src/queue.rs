//! A bounded MPMC admission queue with explicit load shedding.
//!
//! The server's accept loop must never block on a slow worker pool, so
//! admission uses [`BoundedQueue::try_push`]: when the queue is at
//! capacity the push fails *immediately* and the caller sheds the job
//! with a structured `rejected: overloaded` response. Workers block on
//! [`BoundedQueue::pop`] until a job arrives or the queue is closed for
//! drain.
//!
//! Built on `Mutex` + `Condvar` only — no async runtime, matching the
//! workspace's std-only constraint.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the job must be shed, not queued.
    Full,
    /// The queue has been closed (server draining); no new admissions.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared between the accept loop and the worker
/// pool. See the [module docs](self) for the shedding contract.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking admission: enqueues `item` unless the queue is full
    /// or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (load-shed the item),
    /// [`PushError::Closed`] after [`BoundedQueue::close`]. The item
    /// rides back in the error so the caller can report on it.
    pub fn try_push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        if s.closed {
            return Err((PushError::Closed, item));
        }
        if s.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty; `None` means the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock poisoned");
        }
    }

    /// Stops admissions. Already-queued items still drain through
    /// [`BoundedQueue::pop`]; blocked workers wake and exit once the
    /// queue empties.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Closes the queue and removes every not-yet-claimed item,
    /// returning them so the caller can mark each one shed.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut s = self.state.lock().expect("queue lock poisoned");
        s.closed = true;
        let shed = s.items.drain(..).collect();
        drop(s);
        self.ready.notify_all();
        shed
    }

    /// Items currently waiting (racy by nature; for stats reporting).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_reports_closed() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        assert_eq!(q.try_push(3), Err((PushError::Full, 3)));
        assert_eq!(q.depth(), 2);

        assert_eq!(q.pop(), Some(1));
        q.try_push(3).expect("space freed");

        q.close();
        assert_eq!(q.try_push(4), Err((PushError::Closed, 4)));
        // Queued items still drain after close.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None, "closed and empty");
    }

    #[test]
    fn close_and_drain_returns_the_unclaimed_tail() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("fits");
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.close_and_drain(), vec![1, 2, 3, 4]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for i in 0..50 {
            loop {
                match q.try_push(i) {
                    Ok(()) => break,
                    Err((PushError::Full, _)) => std::thread::yield_now(),
                    Err((PushError::Closed, _)) => unreachable!("not closed yet"),
                }
            }
        }
        // Let the workers drain, then close so they exit.
        while q.depth() > 0 {
            std::thread::yield_now();
        }
        q.close();
        let mut all: Vec<i32> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker ok"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>(), "no loss, no duplication");
    }
}
