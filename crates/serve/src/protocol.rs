//! The line-delimited JSON request protocol of `dew serve`.
//!
//! Every request is one JSON object on one line; every request gets
//! exactly one JSON object back on one line. That invariant is what lets
//! the load generator reconcile its client-side log against the server's
//! counters: a submitted job ends in exactly one terminal state, and the
//! response stream never interleaves.
//!
//! Requests (`cmd` selects the verb):
//!
//! | `cmd`      | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `submit`   | `kind` (`sweep`\|`explore`), `mix`, `requests`, `seed`, `sets`, `blocks`, `assocs` (`LO..HI` log2 ranges), `policy` (`fifo`\|`lru`\|`plru`\|`slru`), `deadline_ms`, `chaos` |
//! | `status`   | `id`                                                          |
//! | `wait`     | `id`, `timeout_ms` (optional)                                 |
//! | `cancel`   | `id`                                                          |
//! | `stats`    | —                                                             |
//! | `health`   | —                                                             |
//! | `shutdown` | —                                                             |
//!
//! Unknown fields are rejected (like the CLI's `reject_unknown`), so a
//! typo'd `deadline` never silently runs without its deadline.

use std::str::FromStr;

use dew_core::TreePolicy;
use dew_workloads::traffic::{MixKind, TrafficSpec};

use crate::json::Json;

/// Default request count for a submit that omits `requests`.
pub const DEFAULT_REQUESTS: u64 = 20_000;
/// Cap on per-job request counts, so one submission cannot wedge a worker
/// for minutes. Large studies belong in batch `dew sweep`.
pub const MAX_REQUESTS: u64 = 5_000_000;

/// What a submitted job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A fused miss-rate sweep over the configuration space.
    Sweep,
    /// The sweep plus energy/EDP evaluation and a Pareto front.
    Explore,
}

impl JobKind {
    /// The protocol name (`sweep` / `explore`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Explore => "explore",
        }
    }
}

/// A validated `submit` request: everything a worker needs to run the job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitRequest {
    /// Sweep or explore.
    pub kind: JobKind,
    /// The synthetic request stream to simulate.
    pub traffic: TrafficSpec,
    /// Inclusive log2 set-count range.
    pub set_bits: (u32, u32),
    /// Inclusive log2 block-size range.
    pub block_bits: (u32, u32),
    /// Inclusive log2 associativity range.
    pub assoc_bits: (u32, u32),
    /// Replacement policy.
    pub policy: TreePolicy,
    /// Per-job wall-clock deadline; `None` means the server default.
    pub deadline_ms: Option<u64>,
    /// Wrap the trace source in fault injection (transients + latency).
    pub chaos: bool,
}

/// One parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job for admission.
    Submit(SubmitRequest),
    /// Poll a job's current state.
    Status {
        /// Job id from the submit response.
        id: u64,
    },
    /// Block until the job reaches a terminal state (or the wait times out).
    Wait {
        /// Job id from the submit response.
        id: u64,
        /// Optional cap on the wait, in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// Job id from the submit response.
        id: u64,
    },
    /// Server counters (submitted/completed/rejected/…).
    Stats,
    /// Liveness probe.
    Health,
    /// Begin graceful shutdown: stop admissions, drain, report.
    Shutdown,
}

impl Request {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// A human-readable message (sent back as an `error` response) on
    /// malformed JSON, an unknown `cmd`, unknown fields, or out-of-range
    /// values.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let Json::Obj(_) = &v else {
            return Err("request must be a JSON object".to_owned());
        };
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing string field `cmd`")?;
        match cmd {
            "submit" => parse_submit(&v),
            "status" => Ok(Request::Status {
                id: required_id(&v)?,
            }),
            "wait" => {
                reject_unknown(&v, &["cmd", "id", "timeout_ms"])?;
                Ok(Request::Wait {
                    id: required_id(&v)?,
                    timeout_ms: opt_u64(&v, "timeout_ms")?,
                })
            }
            "cancel" => Ok(Request::Cancel {
                id: required_id(&v)?,
            }),
            "stats" => {
                reject_unknown(&v, &["cmd"])?;
                Ok(Request::Stats)
            }
            "health" => {
                reject_unknown(&v, &["cmd"])?;
                Ok(Request::Health)
            }
            "shutdown" => {
                reject_unknown(&v, &["cmd"])?;
                Ok(Request::Shutdown)
            }
            other => Err(format!(
                "unknown cmd `{other}` (expected submit|status|wait|cancel|stats|health|shutdown)"
            )),
        }
    }
}

fn parse_submit(v: &Json) -> Result<Request, String> {
    reject_unknown(
        v,
        &[
            "cmd",
            "kind",
            "mix",
            "requests",
            "seed",
            "sets",
            "blocks",
            "assocs",
            "policy",
            "deadline_ms",
            "chaos",
        ],
    )?;
    let kind = match v.get("kind").map(|k| k.as_str().ok_or(k)) {
        None => JobKind::Sweep,
        Some(Ok("sweep")) => JobKind::Sweep,
        Some(Ok("explore")) => JobKind::Explore,
        Some(Ok(other)) => return Err(format!("unknown kind `{other}` (expected sweep|explore)")),
        Some(Err(_)) => return Err("field `kind` must be a string".to_owned()),
    };
    let mix = match v.get("mix") {
        None => MixKind::Zipf,
        Some(m) => MixKind::from_str(m.as_str().ok_or("field `mix` must be a string")?)?,
    };
    let requests = opt_u64(v, "requests")?.unwrap_or(DEFAULT_REQUESTS);
    if requests == 0 || requests > MAX_REQUESTS {
        return Err(format!(
            "requests must be in 1..={MAX_REQUESTS}, got {requests}"
        ));
    }
    let seed = opt_u64(v, "seed")?.unwrap_or(1);
    // An unknown policy dies here, as a structured protocol error on the
    // submit response — never as a worker-side job failure.
    let policy = match v.get("policy").map(Json::as_str) {
        None => TreePolicy::Fifo,
        Some(Some(name)) => TreePolicy::from_name(name).ok_or(format!(
            "unknown policy `{name}` (expected fifo|lru|plru|slru)"
        ))?,
        Some(None) => return Err("field `policy` must be a string".to_owned()),
    };
    let deadline_ms = opt_u64(v, "deadline_ms")?;
    if deadline_ms == Some(0) {
        return Err("deadline_ms must be positive".to_owned());
    }
    let chaos = match v.get("chaos") {
        None => false,
        Some(b) => b.as_bool().ok_or("field `chaos` must be a boolean")?,
    };
    Ok(Request::Submit(SubmitRequest {
        kind,
        traffic: TrafficSpec {
            kind: mix,
            requests,
            seed,
        },
        set_bits: opt_range(v, "sets")?.unwrap_or((4, 8)),
        block_bits: opt_range(v, "blocks")?.unwrap_or((5, 7)),
        assoc_bits: opt_range(v, "assocs")?.unwrap_or((0, 2)),
        policy,
        deadline_ms,
        chaos,
    }))
}

fn reject_unknown(v: &Json, known: &[&str]) -> Result<(), String> {
    let Json::Obj(map) = v else { return Ok(()) };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }
    Ok(())
}

fn required_id(v: &Json) -> Result<u64, String> {
    reject_unknown(v, &["cmd", "id", "timeout_ms"])?;
    v.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing integer field `id`".to_owned())
}

fn opt_u64(v: &Json, field: &str) -> Result<Option<u64>, String> {
    match v.get(field) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{field}` must be a non-negative integer")),
    }
}

/// Parses an inclusive `LO..HI` log2 range (same grammar as the CLI's
/// `--sets`/`--blocks`/`--assocs` flags).
fn opt_range(v: &Json, field: &str) -> Result<Option<(u32, u32)>, String> {
    let Some(raw) = v.get(field) else {
        return Ok(None);
    };
    let text = raw
        .as_str()
        .ok_or_else(|| format!("field `{field}` must be a `LO..HI` string"))?;
    let (lo, hi) = text
        .split_once("..")
        .ok_or_else(|| format!("field `{field}`: expected LO..HI, got `{text}`"))?;
    let lo: u32 = lo
        .trim()
        .parse()
        .map_err(|_| format!("field `{field}`: bad low bound `{lo}`"))?;
    let hi: u32 = hi
        .trim()
        .parse()
        .map_err(|_| format!("field `{field}`: bad high bound `{hi}`"))?;
    if lo > hi {
        return Err(format!("field `{field}`: empty range {lo}..{hi}"));
    }
    Ok(Some((lo, hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_defaults_and_full_form() {
        let def = Request::parse(r#"{"cmd":"submit"}"#).expect("defaults ok");
        let Request::Submit(s) = def else { panic!() };
        assert_eq!(s.kind, JobKind::Sweep);
        assert_eq!(s.traffic.kind, MixKind::Zipf);
        assert_eq!(s.traffic.requests, DEFAULT_REQUESTS);
        assert_eq!(s.set_bits, (4, 8));
        assert_eq!(s.deadline_ms, None);
        assert!(!s.chaos);

        let full = Request::parse(
            r#"{"cmd":"submit","kind":"explore","mix":"mix","requests":5000,"seed":9,"sets":"3..6","blocks":"5..6","assocs":"0..1","policy":"lru","deadline_ms":750,"chaos":true}"#,
        )
        .expect("full ok");
        let Request::Submit(s) = full else { panic!() };
        assert_eq!(s.kind, JobKind::Explore);
        assert_eq!(s.traffic.kind, MixKind::Mix);
        assert_eq!(s.traffic.requests, 5_000);
        assert_eq!(s.traffic.seed, 9);
        assert_eq!(
            (s.set_bits, s.block_bits, s.assoc_bits),
            ((3, 6), (5, 6), (0, 1))
        );
        assert_eq!(s.policy, TreePolicy::Lru);
        assert_eq!(s.deadline_ms, Some(750));
        assert!(s.chaos);
    }

    #[test]
    fn every_fused_policy_name_parses() {
        for (name, policy) in [
            ("fifo", TreePolicy::Fifo),
            ("lru", TreePolicy::Lru),
            ("plru", TreePolicy::Plru),
            ("slru", TreePolicy::Slru),
        ] {
            let line = format!(r#"{{"cmd":"submit","policy":"{name}"}}"#);
            let Request::Submit(s) = Request::parse(&line).expect(name) else {
                panic!("{name} must parse as a submit");
            };
            assert_eq!(s.policy, policy);
        }
    }

    #[test]
    fn the_other_verbs_parse() {
        assert_eq!(
            Request::parse(r#"{"cmd":"status","id":3}"#).expect("ok"),
            Request::Status { id: 3 }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"wait","id":3,"timeout_ms":100}"#).expect("ok"),
            Request::Wait {
                id: 3,
                timeout_ms: Some(100)
            }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"cancel","id":1}"#).expect("ok"),
            Request::Cancel { id: 1 }
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"stats"}"#).expect("ok"),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"health"}"#).expect("ok"),
            Request::Health
        );
        assert_eq!(
            Request::parse(r#"{"cmd":"shutdown"}"#).expect("ok"),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("nonsense", "bad JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":1}"#, "missing string field `cmd`"),
            (r#"{"cmd":"fly"}"#, "unknown cmd `fly`"),
            (r#"{"cmd":"status"}"#, "missing integer field `id`"),
            (r#"{"cmd":"submit","mix":"belady"}"#, "unknown mix"),
            (r#"{"cmd":"submit","requests":0}"#, "requests must be"),
            (r#"{"cmd":"submit","deadline_ms":0}"#, "must be positive"),
            (r#"{"cmd":"submit","sets":"9..4"}"#, "empty range"),
            (r#"{"cmd":"submit","sets":"abc"}"#, "expected LO..HI"),
            (
                r#"{"cmd":"submit","deadine_ms":5}"#,
                "unknown field `deadine_ms`",
            ),
            (r#"{"cmd":"stats","id":1}"#, "unknown field `id`"),
            (r#"{"cmd":"submit","policy":"rand"}"#, "unknown policy"),
            (r#"{"cmd":"submit","kind":"dream"}"#, "unknown kind"),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(
                err.contains(needle),
                "`{line}` → `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn oversized_requests_are_capped() {
        let line = format!(r#"{{"cmd":"submit","requests":{}}}"#, MAX_REQUESTS + 1);
        assert!(Request::parse(&line)
            .expect_err("over cap")
            .contains("requests"));
    }
}
