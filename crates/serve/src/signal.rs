//! Minimal async-signal-safe SIGINT latching.
//!
//! The rest of the workspace forbids `unsafe`; this module is the single
//! exception, and the unsafety is two lines: declaring libc's `signal`
//! (std already links libc on every supported Unix) and registering a
//! handler whose body is one atomic store. Everything else — bridging the
//! latch to a [`dew_core::CancelToken`], drain timing, resume hints — is
//! ordinary safe code that *polls* [`hits`].
//!
//! Polling instead of relying on `EINTR` is deliberate: `signal(2)`
//! semantics around syscall restart differ across platforms, so the serve
//! accept loop and the CLI's batch sweep both run their own short-interval
//! polls and never depend on a blocking call being interrupted.
//!
//! On non-Unix targets [`install`] is a no-op and [`hits`] stays zero,
//! so callers need no `cfg` of their own (Ctrl-C then simply terminates
//! the process the default way).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;

/// How many times SIGINT has been delivered since [`install`].
static HITS: AtomicU32 = AtomicU32::new(0);

static INSTALL: Once = Once::new();

#[cfg(unix)]
mod imp {
    use super::HITS;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        HITS.fetch_add(1, Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the libc function std itself links; the
        // handler does only an atomic increment, which is async-signal-
        // safe per POSIX.
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT latch (idempotent). After this, Ctrl-C no longer
/// kills the process; callers poll [`hits`] and shut down cooperatively.
pub fn install() {
    INSTALL.call_once(imp::install);
}

/// SIGINT deliveries since [`install`] (0 when never installed, or on
/// non-Unix targets). The first hit should trigger graceful shutdown; a
/// caller seeing ≥ 2 should treat it as "force quit now".
#[must_use]
pub fn hits() -> u32 {
    HITS.load(Ordering::Relaxed)
}

/// Test-only reset so independent tests see a clean counter.
#[cfg(test)]
pub(crate) fn reset_for_tests() {
    HITS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_install_is_idempotent() {
        reset_for_tests();
        assert_eq!(hits(), 0);
        install();
        install();
        assert_eq!(hits(), 0, "installing must not count as a hit");
    }

    #[cfg(unix)]
    #[test]
    fn a_raised_sigint_is_latched_not_fatal() {
        // `raise` via the same extern mechanism; delivering SIGINT to
        // ourselves proves the handler is installed (otherwise the test
        // process would die here).
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        install();
        let before = hits();
        // SAFETY: raise(SIGINT) delivers to this process; our handler is
        // installed and async-signal-safe.
        unsafe {
            raise(2);
        }
        // Delivery is synchronous for `raise` per POSIX.
        assert!(hits() > before, "handler latched the signal");
    }
}
