//! A minimal JSON value: just enough for the line-delimited `dew serve`
//! protocol, with no third-party dependency (the workspace builds offline).
//!
//! Supports the full JSON grammar except scientific-notation emission;
//! parsing accepts any RFC 8259 number. Strings escape the mandatory set
//! (`"`, `\`, control characters) on output and understand the standard
//! escapes plus `\uXXXX` (surrogate pairs included) on input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`], so emission order is deterministic — handy
/// for tests and for diffing server responses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

/// Why a document failed to parse: a message and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the failure position on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup; `None` for non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (rejects fractions, negatives
    /// and anything beyond 2^53).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialises compactly (no insignificant whitespace, keys sorted).
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_str(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Shorthand for a numeric member.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

/// Shorthand for a string member.
#[must_use]
pub fn str(s: impl Into<String>) -> Json {
    Json::Str(s.into())
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected : after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: \uXXXX\uXXXX.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected \\u for low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        // Caller advances past the escape; position the cursor on the last
        // consumed byte so the shared `self.pos += 1` below the match in
        // `string` is not double-applied (we `continue` instead).
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let doc = r#"{"cmd":"submit","kind":"sweep","requests":50000,"deadline_ms":250,"chaos":true,"mix":"zipf"}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("requests").and_then(Json::as_u64), Some(50_000));
        assert_eq!(v.get("chaos").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        let emitted = v.emit();
        assert_eq!(Json::parse(&emitted).expect("re-parses"), v);
    }

    #[test]
    fn numbers_strings_arrays_and_escapes() {
        let v = Json::parse(r#"[-1.5, 2e3, 0, "a\"b\\c\nd", [true, false, null]]"#).expect("ok");
        let Json::Arr(items) = &v else { panic!() };
        assert_eq!(items[0].as_f64(), Some(-1.5));
        assert_eq!(items[1].as_f64(), Some(2000.0));
        assert_eq!(items[0].as_u64(), None, "negative/fractional rejected");
        assert_eq!(items[3].as_str(), Some("a\"b\\c\nd"));
        assert_eq!(Json::parse(&v.emit()).expect("round-trip"), v);

        let uni = Json::parse(r#""\u00e9\ud83d\ude00""#).expect("unicode escapes");
        assert_eq!(uni.as_str(), Some("é😀"));
    }

    #[test]
    fn malformed_documents_error_with_position() {
        for bad in [
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "\"\\q\"",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn builders_compose() {
        let v = obj([
            ("ok", Json::Bool(true)),
            ("id", num(7)),
            ("status", str("queued")),
        ]);
        assert_eq!(v.emit(), r#"{"id":7,"ok":true,"status":"queued"}"#);
    }
}
