//! `dew serve` — a fault-tolerant, concurrent simulation service — and
//! `dew gen`, its load generator.
//!
//! This crate turns the batch sweep machinery of `dew-core` into a
//! long-running service with the robustness properties a shared simulation
//! box needs:
//!
//! * **admission control** — a bounded queue ([`queue::BoundedQueue`])
//!   between the accept loop and a fixed worker pool; when it fills, new
//!   submissions are *shed* with a structured `rejected: overloaded`
//!   response instead of queueing unboundedly or blocking the accept loop;
//! * **deadlines** — every job carries a [`dew_core::CancelToken`] whose
//!   deadline starts at admission; the resilient sweep drivers poll it at
//!   chunk boundaries, flush a final checkpoint, and the job terminates as
//!   `deadline_exceeded` with its partial progress accounted for;
//! * **graceful drain** — shutdown (protocol `shutdown` or SIGINT via
//!   [`signal`]) stops admissions, sheds the queue, gives in-flight jobs a
//!   drain window, then cancels stragglers (which checkpoint through the
//!   same machinery) and reports drained vs cancelled vs shed
//!   ([`server::DrainReport`]);
//! * **accounting that reconciles** — every submission ends in exactly one
//!   terminal state, client-observable and server-counted, so the
//!   `serve_soak` bench can assert zero lost and zero duplicated
//!   responses under overload, chaos, and shutdown.
//!
//! The wire protocol is line-delimited JSON over TCP ([`protocol`]),
//! parsed with a small vendored-free JSON module ([`json`]) because the
//! build environment is offline. No async runtime anywhere: blocking
//! threads, `Mutex`/`Condvar`, and a nonblocking accept poll.
//!
//! # Example
//!
//! ```
//! use dew_serve::gen::{run_gen, GenConfig};
//! use dew_serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).expect("binds");
//! let report = run_gen(&GenConfig {
//!     addr: server.addr().to_string(),
//!     jobs: 4,
//!     concurrency: 2,
//!     requests: 2_000,
//!     ..GenConfig::default()
//! });
//! assert!(report.reconciles(), "every job reached one terminal state");
//! assert_eq!(report.completed, 4);
//! let drain = server.stop();
//! assert_eq!(drain.in_flight, 0, "nothing was running at shutdown");
//! ```

// `signal` declares libc's `signal()` — the one unsafe block in the
// workspace — so this crate cannot carry `#![forbid(unsafe_code)]`; the
// rest of the crate is kept unsafe-free by the deny + targeted allow.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use gen::{run_gen, Client, GenConfig, GenReport, JobOutcome};
pub use protocol::{JobKind, Request, SubmitRequest};
pub use server::{DrainReport, ServeConfig, Server};
