//! End-to-end protocol tests: a real `Server` on a loopback port, driven
//! through real sockets, asserting the robustness contracts the crate
//! exists for — one response per request, one terminal state per job,
//! counters that reconcile, shedding under overload, deadline and cancel
//! semantics, and graceful drain.

use std::time::Duration;

use dew_serve::gen::{fetch_stats, run_gen, Client, GenConfig};
use dew_serve::json::{num, obj, str, Json};
use dew_serve::server::{ServeConfig, Server};
use dew_workloads::traffic::MixKind;

fn start(cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(cfg).expect("server binds on loopback");
    let addr = server.addr().to_string();
    (server, addr)
}

fn client(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(30)).expect("client connects")
}

fn stat(stats: &Json, field: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats field {field} missing in {}", stats.emit()))
}

#[test]
fn submit_wait_complete_and_counters_reconcile() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = client(&addr);

    let sub = c
        .request(&Json::parse(r#"{"cmd":"submit","mix":"loop","requests":5000,"seed":3}"#).unwrap())
        .expect("submit");
    assert_eq!(
        sub.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        sub.emit()
    );
    let id = sub.get("id").and_then(Json::as_u64).expect("job id");

    let done = c
        .request(&obj([
            ("cmd", str("wait")),
            ("id", num(id)),
            ("timeout_ms", num(30_000)),
        ]))
        .expect("wait");
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("completed"),
        "{}",
        done.emit()
    );
    let result = done.get("result").expect("completed jobs carry a summary");
    // 5 set sizes × 3 block sizes × 3 assocs = 45 configurations.
    assert_eq!(result.get("configs").and_then(Json::as_u64), Some(45));
    assert_eq!(result.get("accesses").and_then(Json::as_u64), Some(5_000));

    // Status after the fact returns the same terminal state.
    let status = c
        .request(&obj([("cmd", str("status")), ("id", num(id))]))
        .expect("status");
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );

    let stats = fetch_stats(&addr, Duration::from_secs(5)).expect("stats");
    assert_eq!(stat(&stats, "submitted"), 1);
    assert_eq!(stat(&stats, "accepted"), 1);
    assert_eq!(stat(&stats, "completed"), 1);
    assert_eq!(stat(&stats, "rejected_overloaded"), 0);

    let health = c.request(&obj([("cmd", str("health"))])).expect("health");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    server.stop();
}

#[test]
fn explore_jobs_return_a_pareto_summary() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = client(&addr);
    let sub = c
        .request(
            &Json::parse(r#"{"cmd":"submit","kind":"explore","mix":"mix","requests":8000}"#)
                .unwrap(),
        )
        .expect("submit");
    let id = sub.get("id").and_then(Json::as_u64).expect("id");
    let done = c
        .request(&obj([
            ("cmd", str("wait")),
            ("id", num(id)),
            ("timeout_ms", num(30_000)),
        ]))
        .expect("wait");
    let result = done.get("result").expect("summary");
    assert!(
        result
            .get("pareto_front")
            .and_then(Json::as_u64)
            .expect("front size")
            >= 1
    );
    assert!(result.get("best_edp").is_some(), "{}", done.emit());
    server.stop();
}

#[test]
fn overload_sheds_with_structured_rejections_and_nothing_is_lost() {
    // One worker, a queue of one, and a closed-loop burst wider than both:
    // admission control must shed, and the ledger must still reconcile.
    let (server, addr) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let mut c = client(&addr);
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for seed in 0..8 {
        let line = format!(r#"{{"cmd":"submit","mix":"zipf","requests":150000,"seed":{seed}}}"#);
        let resp = c.request(&Json::parse(&line).unwrap()).expect("submit");
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            accepted.push(resp.get("id").and_then(Json::as_u64).expect("id"));
        } else {
            assert_eq!(
                resp.get("rejected").and_then(Json::as_str),
                Some("overloaded"),
                "rejections must be structured: {}",
                resp.emit()
            );
            assert!(resp.get("retry_after_ms").is_some());
            rejected += 1;
        }
    }
    assert!(rejected > 0, "8 bursts into a 1+1 pipeline must shed");
    assert!(!accepted.is_empty(), "the pipeline still admits work");

    for id in &accepted {
        let done = c
            .request(&obj([
                ("cmd", str("wait")),
                ("id", num(*id)),
                ("timeout_ms", num(60_000)),
            ]))
            .expect("wait");
        assert_eq!(
            done.get("status").and_then(Json::as_str),
            Some("completed"),
            "{}",
            done.emit()
        );
    }

    let stats = fetch_stats(&addr, Duration::from_secs(5)).expect("stats");
    assert_eq!(stat(&stats, "submitted"), 8);
    assert_eq!(stat(&stats, "accepted"), accepted.len() as u64);
    assert_eq!(stat(&stats, "rejected_overloaded"), rejected);
    assert_eq!(stat(&stats, "completed"), accepted.len() as u64);
    server.stop();
}

#[test]
fn cancel_reaches_a_cancelled_terminal_state() {
    let (server, addr) = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut c = client(&addr);
    // A long job (5M zipf requests) so cancellation lands mid-flight.
    let sub = c
        .request(&Json::parse(r#"{"cmd":"submit","requests":5000000}"#).unwrap())
        .expect("submit");
    let id = sub.get("id").and_then(Json::as_u64).expect("id");

    let cancel = c
        .request(&obj([("cmd", str("cancel")), ("id", num(id))]))
        .expect("cancel");
    assert_eq!(cancel.get("ok").and_then(Json::as_bool), Some(true));

    let done = c
        .request(&obj([
            ("cmd", str("wait")),
            ("id", num(id)),
            ("timeout_ms", num(30_000)),
        ]))
        .expect("wait");
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("cancelled"),
        "{}",
        done.emit()
    );

    // Cancelling again reports the terminal state without double counting.
    let again = c
        .request(&obj([("cmd", str("cancel")), ("id", num(id))]))
        .expect("re-cancel");
    assert_eq!(
        again.get("already_terminal").and_then(Json::as_bool),
        Some(true)
    );

    let stats = fetch_stats(&addr, Duration::from_secs(5)).expect("stats");
    assert_eq!(stat(&stats, "cancelled"), 1);
    assert_eq!(stat(&stats, "completed"), 0);
    server.stop();
}

#[test]
fn deadlines_terminate_jobs_with_a_checkpointed_cut() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = client(&addr);
    // 1 ms of deadline against 5M requests: the deadline always wins.
    let sub = c
        .request(&Json::parse(r#"{"cmd":"submit","requests":5000000,"deadline_ms":1}"#).unwrap())
        .expect("submit");
    let id = sub.get("id").and_then(Json::as_u64).expect("id");
    let done = c
        .request(&obj([
            ("cmd", str("wait")),
            ("id", num(id)),
            ("timeout_ms", num(30_000)),
        ]))
        .expect("wait");
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "{}",
        done.emit()
    );
    // The job checkpointed whatever prefix it simulated before expiring.
    assert_eq!(done.get("checkpointed").and_then(Json::as_bool), Some(true));
    let stats = fetch_stats(&addr, Duration::from_secs(5)).expect("stats");
    assert_eq!(stat(&stats, "deadline_exceeded"), 1);
    server.stop();
}

#[test]
fn chaos_jobs_complete_through_retries() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = client(&addr);
    let sub = c
        .request(&Json::parse(r#"{"cmd":"submit","requests":20000,"chaos":true}"#).unwrap())
        .expect("submit");
    let id = sub.get("id").and_then(Json::as_u64).expect("id");
    let done = c
        .request(&obj([
            ("cmd", str("wait")),
            ("id", num(id)),
            ("timeout_ms", num(60_000)),
        ]))
        .expect("wait");
    assert_eq!(
        done.get("status").and_then(Json::as_str),
        Some("completed"),
        "chaos faults are transient, so the retry machinery must absorb them: {}",
        done.emit()
    );
    let retries = done
        .get("result")
        .and_then(|r| r.get("retries"))
        .and_then(Json::as_u64)
        .expect("retry tally");
    assert!(
        retries > 0,
        "the injected open fault must have forced a retry"
    );
    server.stop();
}

#[test]
fn graceful_shutdown_drains_and_sheds_with_a_report() {
    let (server, addr) = start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        drain_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut c = client(&addr);
    // Fill the pipeline: one long job runs, several queue behind it.
    let mut ids = Vec::new();
    for seed in 0..4 {
        let line = format!(r#"{{"cmd":"submit","requests":5000000,"seed":{seed}}}"#);
        let resp = c.request(&Json::parse(&line).unwrap()).expect("submit");
        ids.push(resp.get("id").and_then(Json::as_u64).expect("admitted"));
    }

    let down = c
        .request(&obj([("cmd", str("shutdown"))]))
        .expect("shutdown responds before the socket closes");
    assert_eq!(down.get("ok").and_then(Json::as_bool), Some(true));
    let drain = down.get("drain").expect("drain report");
    let in_flight = drain
        .get("in_flight")
        .and_then(Json::as_u64)
        .expect("in_flight");
    let drained = drain
        .get("drained")
        .and_then(Json::as_u64)
        .expect("drained");
    let cancelled = drain
        .get("cancelled")
        .and_then(Json::as_u64)
        .expect("cancelled");
    let shed = drain.get("shed").and_then(Json::as_u64).expect("shed");
    assert_eq!(
        in_flight + shed,
        4,
        "every admitted job is in the report: {}",
        down.emit()
    );
    assert_eq!(
        drained + cancelled,
        in_flight,
        "in-flight jobs drained or cancelled"
    );
    assert!(
        shed >= 2,
        "queued jobs behind a 5M-request job must be shed"
    );

    // Every job is in a terminal state; none lost.
    for id in &ids {
        let status = c
            .request(&obj([("cmd", str("status")), ("id", num(*id))]))
            .expect("status after shutdown");
        let s = status.get("status").and_then(Json::as_str).expect("state");
        assert!(
            ["completed", "cancelled", "deadline_exceeded", "shed"].contains(&s),
            "job {id} ended as {s}"
        );
    }

    // Admissions are now refused as draining.
    let refused = c
        .request(&Json::parse(r#"{"cmd":"submit","requests":1000}"#).unwrap())
        .expect("post-shutdown submit gets a response");
    assert_eq!(
        refused.get("rejected").and_then(Json::as_str),
        Some("draining")
    );

    let report = server.stop();
    assert_eq!(report.in_flight + report.shed, 4);
    server_stopped_is_idempotent(report.shed, shed);
}

fn server_stopped_is_idempotent(a: u64, b: u64) {
    assert_eq!(a, b, "stop() returns the same report the protocol saw");
}

#[test]
fn malformed_lines_and_unknown_ids_get_structured_errors() {
    let (server, addr) = start(ServeConfig::default());
    let mut c = client(&addr);
    let bad = c
        .request(&Json::parse(r#"{"cmd":"fly"}"#).unwrap())
        .expect("response");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert!(bad
        .get("error")
        .and_then(Json::as_str)
        .expect("msg")
        .contains("unknown cmd"));

    let missing = c
        .request(&obj([("cmd", str("status")), ("id", num(999))]))
        .expect("response");
    assert!(missing
        .get("error")
        .and_then(Json::as_str)
        .expect("msg")
        .contains("unknown job id 999"));

    // An invalid geometry is a submit-time error, not a failed job.
    let invalid = c
        .request(&Json::parse(r#"{"cmd":"submit","sets":"0..31"}"#).unwrap())
        .expect("response");
    assert!(invalid
        .get("error")
        .and_then(Json::as_str)
        .expect("msg")
        .contains("invalid space"));

    // Same for an unregistered policy: the submit response carries a
    // structured protocol error naming the valid set — the job never
    // reaches a worker, so no job id is allocated and nothing fails
    // worker-side.
    let unknown_policy = c
        .request(&Json::parse(r#"{"cmd":"submit","policy":"lfu"}"#).unwrap())
        .expect("response");
    assert_eq!(
        unknown_policy.get("ok").and_then(Json::as_bool),
        Some(false)
    );
    let msg = unknown_policy
        .get("error")
        .and_then(Json::as_str)
        .expect("msg");
    assert!(
        msg.contains("unknown policy `lfu`") && msg.contains("fifo|lru|plru|slru"),
        "unexpected error message: {msg}"
    );
    assert!(
        unknown_policy.get("id").is_none(),
        "a rejected submit must not allocate a job id"
    );
    server.stop();
}

#[test]
fn open_loop_gen_against_a_small_server_reconciles() {
    // Concurrency (6) far above workers (2) with a tiny queue: the classic
    // soak shape, shrunk to test size. Zero lost responses is the claim.
    let (server, addr) = start(ServeConfig {
        workers: 2,
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    let report = run_gen(&GenConfig {
        addr,
        jobs: 24,
        concurrency: 6,
        mix: MixKind::Zipf,
        requests: 60_000,
        rate: Some(400.0),
        ..GenConfig::default()
    });
    assert_eq!(report.submitted, 24);
    assert!(report.reconciles(), "{report}");
    assert_eq!(report.transport_errors, 0, "{report}");
    assert_eq!(report.wait_timeouts, 0, "{report}");
    assert!(report.completed > 0, "{report}");

    // Server-side ledger agrees with the client-side log.
    let stats = fetch_stats(&server.addr().to_string(), Duration::from_secs(5)).expect("stats");
    assert_eq!(stat(&stats, "submitted"), 24);
    assert_eq!(stat(&stats, "completed"), report.completed);
    assert_eq!(
        stat(&stats, "rejected_overloaded"),
        report.rejected_overloaded
    );
    assert_eq!(
        stat(&stats, "accepted"),
        report.completed
            + report.deadline_exceeded
            + report.cancelled
            + report.failed
            + report.shed
    );
    server.stop();
}
