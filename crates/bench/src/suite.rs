//! The benchmark workload suite: scaled Mediabench surrogates.

use dew_trace::Trace;
use dew_workloads::mediabench::App;

/// How to scale the paper's Table 2 request counts down to bench-friendly
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteScale {
    /// Divisor applied to each app's paper request count.
    pub divisor: u64,
    /// Lower clamp on the scaled count.
    pub min_requests: u64,
    /// Upper clamp on the scaled count.
    pub max_requests: u64,
    /// Seed for the generators.
    pub seed: u64,
}

impl Default for SuiteScale {
    /// Paper counts / 256, clamped to `[500k, 4M]`: every app keeps its
    /// relative weight but the whole Table 3 grid completes in minutes.
    fn default() -> Self {
        SuiteScale {
            divisor: 256,
            min_requests: 500_000,
            max_requests: 4_000_000,
            seed: 2010,
        }
    }
}

impl SuiteScale {
    /// A tiny suite (100 k requests per app) for smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        SuiteScale {
            divisor: u64::MAX,
            min_requests: 100_000,
            max_requests: 100_000,
            seed: 2010,
        }
    }

    /// The request count this scale assigns to `app`.
    #[must_use]
    pub fn requests_for(&self, app: App) -> u64 {
        (app.paper_requests() / self.divisor.max(1)).clamp(self.min_requests, self.max_requests)
    }

    /// Reads overrides from the process environment:
    /// `DEW_BENCH_QUICK=1` selects [`SuiteScale::quick`];
    /// `DEW_BENCH_MAX_REQUESTS=n` caps the per-app request count.
    #[must_use]
    pub fn from_env() -> Self {
        let mut scale = if std::env::var_os("DEW_BENCH_QUICK").is_some() {
            SuiteScale::quick()
        } else {
            SuiteScale::default()
        };
        if let Some(v) = std::env::var_os("DEW_BENCH_MAX_REQUESTS") {
            if let Ok(n) = v.to_string_lossy().parse::<u64>() {
                scale.max_requests = n.max(1);
                scale.min_requests = scale.min_requests.min(scale.max_requests);
            }
        }
        scale
    }
}

/// Generates the six-app suite at the given scale.
#[must_use]
pub fn workload_suite(scale: SuiteScale) -> Vec<(App, Trace)> {
    App::ALL
        .iter()
        .map(|&app| (app, app.generate(scale.requests_for(app), scale.seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_keeps_relative_weights() {
        let s = SuiteScale::default();
        assert!(s.requests_for(App::Mpeg2Encode) >= s.requests_for(App::JpegDecode));
        assert!(s.requests_for(App::JpegDecode) >= s.min_requests);
        assert!(s.requests_for(App::Mpeg2Encode) <= s.max_requests);
    }

    #[test]
    fn quick_scale_is_uniform() {
        let s = SuiteScale::quick();
        for app in App::ALL {
            assert_eq!(s.requests_for(app), 100_000);
        }
    }

    #[test]
    fn suite_has_all_apps_at_requested_sizes() {
        let scale = SuiteScale {
            divisor: u64::MAX,
            min_requests: 2_000,
            max_requests: 2_000,
            seed: 1,
        };
        let suite = workload_suite(scale);
        assert_eq!(suite.len(), 6);
        for (app, trace) in &suite {
            assert_eq!(trace.len(), 2_000, "{app}");
        }
    }
}
