//! Benchmark harness for the DEW reproduction.
//!
//! One binary per table/figure of the paper's evaluation (Section 5):
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — the 525-configuration space |
//! | `table2` | Table 2 — the workload inventory |
//! | `table3` | Table 3 — DEW vs reference: time and tag comparisons |
//! | `figure5` | Figure 5 — speedup of DEW over the reference |
//! | `figure6` | Figure 6 — % reduction in tag comparisons |
//! | `table4` | Table 4 — effectiveness of each DEW property |
//! | `ablation` | extra: full on/off grid of the three properties |
//! | `lru_compare` | extra: DEW-LRU vs the LRU-tree comparator |
//! | `multi_assoc` | extra: one all-associativity pass vs per-assoc passes |
//! | `hot_loop` | extra: kernel-variant steps/sec, writes `BENCH_hot_loop.json` |
//!
//! Run them with `cargo run --release -p dew-bench --bin <name>`. Scale is
//! controlled by `DEW_BENCH_QUICK=1` and `DEW_BENCH_MAX_REQUESTS=n`
//! (see [`suite::SuiteScale::from_env`]). `table3` writes
//! `results/table3.csv`, which the figure binaries reuse when present.
//!
//! Criterion micro-benchmarks (`cargo bench -p dew-bench`) measure
//! per-request throughput of the DEW step and the reference step, and a
//! small end-to-end sweep.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod suite;
pub mod table3;
