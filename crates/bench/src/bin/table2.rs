//! Reproduces **Table 2**: the trace inventory.
//!
//! Prints, per application, the paper's request count alongside this
//! reproduction's scaled surrogate trace (request count, access-kind mix,
//! and 4-byte-block footprint). The substitution rationale is in `DESIGN.md`.

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::{workload_suite, SuiteScale};
use dew_trace::AccessKind;

fn main() {
    let scale = SuiteScale::from_env();
    println!("Table 2: trace files used for simulation");
    println!("(paper: SimpleScalar/PISA Mediabench traces; here: synthetic surrogates)\n");

    let suite = workload_suite(scale);
    let mut t = TextTable::new(&[
        "application",
        "paper requests",
        "our requests",
        "reads",
        "writes",
        "ifetches",
        "blocks(4B)",
    ]);
    for (app, trace) in &suite {
        let stats = trace.stats();
        t.row_owned(vec![
            app.name().to_owned(),
            thousands(app.paper_requests()),
            thousands(stats.total()),
            thousands(stats.count(AccessKind::Read)),
            thousands(stats.count(AccessKind::Write)),
            thousands(stats.count(AccessKind::InstrFetch)),
            thousands(stats.unique_blocks(2).expect("4B footprint tracked")),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nscale: paper counts / {} clamped to [{}, {}] requests, seed {}",
        scale.divisor,
        thousands(scale.min_requests),
        thousands(scale.max_requests),
        scale.seed
    );
}
