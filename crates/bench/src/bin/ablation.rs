//! Extra ablation (beyond the paper's Table 4): the full on/off grid of
//! DEW's three properties, measuring wall time, node evaluations and tag
//! comparisons on one workload. Confirms each property's individual and
//! combined contribution — and that none of them changes the results.

use std::time::Instant;

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::SuiteScale;
use dew_bench::table3::SET_BITS;
use dew_core::{DewOptions, DewTree, PassConfig, TreePolicy};
use dew_workloads::mediabench::App;

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::JpegEncode;
    let requests = scale.requests_for(app);
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);
    let pass = PassConfig::new(2, SET_BITS.0, SET_BITS.1, 4).expect("valid pass");

    println!("Property ablation on {app} (block 4 B, assoc 1 & 4, {requests} requests)\n");
    let mut t = TextTable::new(&[
        "mra_stop",
        "wave",
        "mre",
        "time(s)",
        "evaluations",
        "comparisons",
        "vs all-off",
    ]);
    let mut baseline_cmp = None;
    let mut reference_results = None;
    for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
        let start = Instant::now();
        let mut tree = DewTree::instrumented(pass, opts).expect("sound options");
        for r in trace.records() {
            tree.step(r.addr);
        }
        let secs = start.elapsed().as_secs_f64();
        let c = tree.counters();
        assert!(c.is_consistent());
        // The properties are optimisations: all grids must agree exactly.
        let results = tree.results();
        match &reference_results {
            None => reference_results = Some(results),
            Some(expected) => assert_eq!(&results, expected, "results changed under {opts}"),
        }
        let cmp = c.tag_comparisons;
        let baseline = *baseline_cmp.get_or_insert(cmp);
        let onoff = |b: bool| if b { "on" } else { "off" };
        t.row_owned(vec![
            onoff(opts.mra_stop).to_owned(),
            onoff(opts.wave).to_owned(),
            onoff(opts.mre).to_owned(),
            format!("{secs:.3}"),
            thousands(c.node_evaluations),
            thousands(cmp),
            format!("{:+.1}%", (cmp as f64 / baseline as f64 - 1.0) * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("\nall 8 grids produced identical miss counts (asserted).");
}
