//! Hot-loop throughput tracker: measures steps/sec of the DEW kernel
//! variants and writes `BENCH_hot_loop.json` so the perf trajectory is
//! comparable across PRs.
//!
//! Variants:
//!
//! * `step_instrumented` — per-record stepping with the counting kernel (the
//!   behaviour every pre-arena build had);
//! * `step` — per-record stepping with the fast monomorphized kernel;
//! * `run_blocks` — the fast kernel fed pre-decoded block batches (the sweep
//!   path), decode time included in the measurement;
//! * `run_blocks_instrumented` — batched with counters, isolating the cost
//!   of instrumentation alone.
//!
//! Scale via `DEW_BENCH_QUICK=1` / `DEW_BENCH_MAX_REQUESTS=n`; the output
//! path defaults to `BENCH_hot_loop.json` and can be overridden with
//! `DEW_BENCH_JSON=path`.

use std::fmt::Write as _;
use std::time::Instant;

use dew_bench::report::thousands;
use dew_bench::suite::SuiteScale;
use dew_core::{DewOptions, DewTree, PassConfig};
use dew_trace::decode_blocks;
use dew_workloads::mediabench::App;

/// The bench pass: the paper's full 15-level forest, 4-way, 4-byte blocks
/// (the same shape `benches/dew_step.rs` uses).
const BLOCK_BITS: u32 = 2;
const SET_BITS: (u32, u32) = (0, 14);
const ASSOC: u32 = 4;

struct Variant {
    name: &'static str,
    ns_per_step: f64,
    steps_per_sec: f64,
}

/// Best-of-N wall time for `run`, in seconds.
fn best_of<F: FnMut()>(samples: u32, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::JpegEncode;
    let requests = scale.requests_for(app).min(1_000_000);
    let samples = if std::env::var_os("DEW_BENCH_QUICK").is_some() {
        3
    } else {
        5
    };
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);
    let records = trace.records();
    let pass = PassConfig::new(BLOCK_BITS, SET_BITS.0, SET_BITS.1, ASSOC).expect("valid pass");
    let n = records.len() as f64;

    // Exactness guard: all variants must produce identical miss counts.
    let reference = {
        let mut t = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
        t.run(records.iter().copied());
        t.results()
    };

    let mut variants = Vec::new();
    let mut measure = |name: &'static str, instrument: bool, batched: bool| {
        let secs = best_of(samples, || {
            let mut tree = DewTree::with_instrumentation(pass, DewOptions::default(), instrument)
                .expect("sound");
            if batched {
                let blocks = decode_blocks(records, BLOCK_BITS);
                tree.run_blocks(&blocks);
            } else {
                for r in records {
                    tree.step(r.addr);
                }
            }
            assert_eq!(tree.results(), reference, "{name}: miss counts diverged");
        });
        let v = Variant {
            name,
            ns_per_step: secs * 1e9 / n,
            steps_per_sec: n / secs,
        };
        println!(
            "{:<24} {:>8.2} ns/step  {:>10} steps/s",
            v.name,
            v.ns_per_step,
            thousands(v.steps_per_sec as u64)
        );
        variants.push(v);
    };

    measure("step_instrumented", true, false);
    measure("step", false, false);
    measure("run_blocks", false, true);
    measure("run_blocks_instrumented", true, true);

    let rate = |name: &str| {
        variants
            .iter()
            .find(|v| v.name == name)
            .expect("measured above")
            .steps_per_sec
    };
    let speedup = rate("run_blocks") / rate("step_instrumented");
    println!("\nspeedup run_blocks vs step_instrumented: {speedup:.2}x");

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hot_loop\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"app\": \"{}\",", app.name());
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(
        json,
        "  \"pass\": {{\"block_bits\": {BLOCK_BITS}, \"min_set_bits\": {}, \
         \"max_set_bits\": {}, \"assoc\": {ASSOC}}},",
        SET_BITS.0, SET_BITS.1
    );
    json.push_str("  \"variants\": [\n");
    for (i, v) in variants.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_step\": {:.3}, \"steps_per_sec\": {:.0}}}{}",
            v.name,
            v.ns_per_step,
            v.steps_per_sec,
            if i + 1 < variants.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"speedup_run_blocks_vs_instrumented\": {speedup:.3}"
    );
    json.push_str("}\n");

    let path = std::env::var("DEW_BENCH_JSON").unwrap_or_else(|_| "BENCH_hot_loop.json".into());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
