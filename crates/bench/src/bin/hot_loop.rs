//! Hot-loop throughput tracker: measures steps/sec of the DEW kernel
//! variants and writes `BENCH_hot_loop.json` so the perf trajectory is
//! comparable across PRs.
//!
//! Variants:
//!
//! * `step_instrumented` — per-record stepping with the counting kernel (the
//!   behaviour every pre-arena build had);
//! * `step` — per-record stepping with the fast monomorphized kernel;
//! * `run_blocks` — the fast kernel fed pre-decoded block batches (the sweep
//!   path), decode time included in the measurement;
//! * `run_blocks_instrumented` — batched with counters, isolating the cost
//!   of instrumentation alone;
//! * `per_assoc_run_blocks` — the pre-fusion sweep schedule: one fast
//!   `DewTree` pass per associativity 2/4/8 back to back (3 trace
//!   traversals, one shared decode);
//! * `fused_multi_assoc` — the fused kernel: every associativity 1..=8 in
//!   **one** traversal of a `MultiAssocTree` (decode included);
//! * `fused_multi_assoc_instrumented` — fused with the full counter ladder;
//! * `per_assoc_lru_run_blocks` — the pre-fusion **LRU** sweep schedule:
//!   one fast `DewTree` pass (LRU tag lists, MRA stop off) per
//!   associativity 2/4/8 back to back, one shared decode;
//! * `fused_lru` — the arena `LruTreeSimulator`: every associativity 1..=8
//!   in **one** traversal via the stack property (decode included);
//! * `fused_lru_instrumented` — fused LRU with the counted MRU-first search;
//! * `per_assoc_plru_run_blocks` / `per_assoc_slru_run_blocks` — the
//!   pre-fusion tree-PLRU and SLRU schedules: one single-associativity
//!   arena pass per associativity 2/4/8 back to back, one shared decode;
//! * `fused_plru` / `fused_slru` — the arena tree-PLRU and SLRU kernels:
//!   every associativity 1..=8 in **one** traversal (decode included), each
//!   cross-checked against its own instrumented sibling;
//! * `explore_pruned` / `explore_exhaustive` — the design-space exploration
//!   engine end-to-end (fused FIFO+LRU sweeps, energy scoring, Pareto
//!   frontier) over an 11×3×4×2 space; `ns_per_step`/`steps_per_sec` count
//!   *simulated accesses* (requests × trace traversals), so the rate is
//!   comparable to the kernel variants above.
//!
//! The JSON also records `trace_traversals` per sweep shape so the fusion
//! win stays visible in the perf trajectory.
//!
//! Scale via `DEW_BENCH_QUICK=1` / `DEW_BENCH_MAX_REQUESTS=n`; the output
//! path defaults to `BENCH_hot_loop.json` and can be overridden with
//! `DEW_BENCH_JSON=path`.

use std::fmt::Write as _;
use std::time::Instant;

use dew_bench::report::thousands;
use dew_bench::suite::SuiteScale;
use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
use dew_core::plru_tree::{PlruTreeOptions, PlruTreeSimulator};
use dew_core::slru_tree::SlruTreeSimulator;
use dew_core::{ConfigSpace, DewOptions, DewTree, MultiAssocTree, PassConfig, TreePolicy};
use dew_explore::{explore_trace, EnergyModel, ExplorationSpace, ParetoMode};
use dew_trace::{decode_blocks, BlockChunks};
use dew_workloads::mediabench::App;

/// The bench pass: the paper's full 15-level forest, 4-way, 4-byte blocks
/// (the same shape `benches/dew_step.rs` uses).
const BLOCK_BITS: u32 = 2;
const SET_BITS: (u32, u32) = (0, 14);
const ASSOC: u32 = 4;
/// The fused sweep shape: associativities 1..=8 at the same block size.
const FUSED_MAX_ASSOC: u32 = 8;
/// Associativities needing their own pass pre-fusion (1 rides along).
const PER_ASSOC_PASSES: [u32; 3] = [2, 4, 8];

struct Variant {
    name: &'static str,
    ns_per_step: f64,
    steps_per_sec: f64,
}

/// Best-of-N wall time for `run`, in seconds.
fn best_of<F: FnMut()>(samples: u32, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::JpegEncode;
    let requests = scale.requests_for(app).min(1_000_000);
    let samples = if std::env::var_os("DEW_BENCH_QUICK").is_some() {
        3
    } else {
        5
    };
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);
    let records = trace.records();
    let pass = PassConfig::new(BLOCK_BITS, SET_BITS.0, SET_BITS.1, ASSOC).expect("valid pass");
    let n = records.len() as f64;

    // Exactness guard: all variants must produce identical miss counts.
    let reference = {
        let mut t = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
        t.run(records.iter().copied());
        t.results()
    };

    let mut variants = Vec::new();
    let mut measure = |name: &'static str, instrument: bool, batched: bool| {
        let secs = best_of(samples, || {
            let mut tree = DewTree::with_instrumentation(pass, DewOptions::default(), instrument)
                .expect("sound");
            if batched {
                let blocks = decode_blocks(records, BLOCK_BITS);
                tree.run_blocks(&blocks);
            } else {
                for r in records {
                    tree.step(r.addr);
                }
            }
            assert_eq!(tree.results(), reference, "{name}: miss counts diverged");
        });
        let v = Variant {
            name,
            ns_per_step: secs * 1e9 / n,
            steps_per_sec: n / secs,
        };
        println!(
            "{:<24} {:>8.2} ns/step  {:>10} steps/s",
            v.name,
            v.ns_per_step,
            thousands(v.steps_per_sec as u64)
        );
        variants.push(v);
    };

    measure("step_instrumented", true, false);
    measure("step", false, false);
    measure("run_blocks", false, true);
    measure("run_blocks_instrumented", true, true);

    // The sweep-shape pair: every associativity 1..=8 at this block size,
    // as the pre-fusion schedule ran it (one fast pass per associativity,
    // back to back, sharing one decode) versus one fused traversal. All
    // three fused/per-assoc variants are cross-checked against the fused
    // reference below.
    let fused_reference = {
        let mut t = MultiAssocTree::instrumented(
            BLOCK_BITS,
            SET_BITS.0,
            SET_BITS.1,
            FUSED_MAX_ASSOC,
            DewOptions::default(),
        )
        .expect("valid");
        t.run(records.iter().copied());
        t.results()
    };
    let mut record_variant = |name: &'static str, secs: f64| {
        let v = Variant {
            name,
            ns_per_step: secs * 1e9 / n,
            steps_per_sec: n / secs,
        };
        println!(
            "{:<28} {:>8.2} ns/step  {:>10} steps/s",
            v.name,
            v.ns_per_step,
            thousands(v.steps_per_sec as u64)
        );
        variants.push(v);
    };

    let secs = best_of(samples, || {
        let blocks = decode_blocks(records, BLOCK_BITS);
        for assoc in PER_ASSOC_PASSES {
            let pass =
                PassConfig::new(BLOCK_BITS, SET_BITS.0, SET_BITS.1, assoc).expect("valid pass");
            let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
            tree.run_blocks(&blocks);
            let r = tree.results();
            for level in r.levels() {
                assert_eq!(
                    fused_reference.misses(level.sets(), assoc),
                    Some(level.misses()),
                    "per_assoc_run_blocks: miss counts diverged"
                );
            }
        }
    });
    record_variant("per_assoc_run_blocks", secs);

    for (name, instrument) in [
        ("fused_multi_assoc", false),
        ("fused_multi_assoc_instrumented", true),
    ] {
        let secs = best_of(samples, || {
            let mut tree = MultiAssocTree::with_instrumentation(
                BLOCK_BITS,
                SET_BITS,
                (0, FUSED_MAX_ASSOC.trailing_zeros()),
                DewOptions::default(),
                instrument,
            )
            .expect("valid");
            let mut chunks = BlockChunks::new(records, BLOCK_BITS, BlockChunks::DEFAULT_CHUNK);
            while let Some(chunk) = chunks.next_chunk() {
                tree.run_blocks(chunk);
            }
            assert_eq!(
                tree.results(),
                fused_reference,
                "{name}: miss counts diverged"
            );
        });
        record_variant(name, secs);
    }

    // The LRU sweep-shape pair, mirroring the FIFO one: the pre-fusion
    // schedule (one DewTree-LRU pass per associativity, MRA stop off as
    // soundness requires, sharing one decode) versus one fused traversal of
    // the arena LruTreeSimulator, whose stack property answers every
    // associativity from a single move-to-front lane. Options match what
    // `SweepRequest::run` uses for LRU spaces (no duplicate elision by
    // default).
    let lru_opts = LruTreeOptions {
        depth_zero_stop: true,
        duplicate_elision: false,
    };
    let lru_reference = {
        let mut sim = LruTreeSimulator::instrumented(
            BLOCK_BITS,
            SET_BITS.0,
            SET_BITS.1,
            FUSED_MAX_ASSOC,
            lru_opts,
        )
        .expect("valid");
        sim.run(records.iter().copied());
        sim.results()
    };
    let secs = best_of(samples, || {
        let blocks = decode_blocks(records, BLOCK_BITS);
        for assoc in PER_ASSOC_PASSES {
            let pass =
                PassConfig::new(BLOCK_BITS, SET_BITS.0, SET_BITS.1, assoc).expect("valid pass");
            let mut tree = DewTree::new(pass, DewOptions::lru()).expect("sound");
            tree.run_blocks(&blocks);
            let r = tree.results();
            for level in r.levels() {
                assert_eq!(
                    lru_reference.misses(level.sets(), assoc),
                    Some(level.misses()),
                    "per_assoc_lru_run_blocks: miss counts diverged"
                );
            }
        }
    });
    record_variant("per_assoc_lru_run_blocks", secs);

    for (name, instrument) in [("fused_lru", false), ("fused_lru_instrumented", true)] {
        let secs = best_of(samples, || {
            let mut sim = LruTreeSimulator::with_instrumentation(
                BLOCK_BITS,
                SET_BITS,
                (0, FUSED_MAX_ASSOC.trailing_zeros()),
                lru_opts,
                instrument,
            )
            .expect("valid");
            let mut chunks = BlockChunks::new(records, BLOCK_BITS, BlockChunks::DEFAULT_CHUNK);
            while let Some(chunk) = chunks.next_chunk() {
                sim.run_blocks(chunk);
            }
            assert_eq!(sim.results(), lru_reference, "{name}: miss counts diverged");
        });
        record_variant(name, secs);
    }

    // The newer arena policy kernels in the same fused sweep shape: every
    // associativity 1..=8 in one traversal. There is no pre-fusion DewTree
    // schedule for these policies, so each fast kernel is cross-checked
    // against its instrumented sibling, which recomputes the same miss
    // counts through the counted path. Options match the sweep presets
    // (`DewOptions::plru` / `DewOptions::slru`: no duplicate elision — for
    // SLRU it is unsound, a repeated access promotes a probationary block).
    let plru_opts = PlruTreeOptions {
        duplicate_elision: false,
    };
    let plru_reference = {
        let mut sim = PlruTreeSimulator::instrumented(
            BLOCK_BITS,
            SET_BITS.0,
            SET_BITS.1,
            FUSED_MAX_ASSOC,
            plru_opts,
        )
        .expect("valid");
        let blocks = decode_blocks(records, BLOCK_BITS);
        sim.run_blocks(&blocks);
        sim.results()
    };
    // The pre-fusion PLRU schedule: one single-associativity arena pass per
    // associativity, back to back, sharing one decode — what a sweep would
    // cost without the fused walk.
    let secs = best_of(samples, || {
        let blocks = decode_blocks(records, BLOCK_BITS);
        for assoc in PER_ASSOC_PASSES {
            let bits = assoc.trailing_zeros();
            let mut sim = PlruTreeSimulator::with_instrumentation(
                BLOCK_BITS,
                SET_BITS,
                (bits, bits),
                plru_opts,
                false,
            )
            .expect("valid");
            sim.run_blocks(&blocks);
            let r = sim.results();
            for set_bits in SET_BITS.0..=SET_BITS.1 {
                let sets = 1 << set_bits;
                assert_eq!(
                    r.misses(sets, assoc),
                    plru_reference.misses(sets, assoc),
                    "per_assoc_plru_run_blocks: miss counts diverged"
                );
            }
        }
    });
    record_variant("per_assoc_plru_run_blocks", secs);

    let secs = best_of(samples, || {
        let mut sim = PlruTreeSimulator::with_instrumentation(
            BLOCK_BITS,
            SET_BITS,
            (0, FUSED_MAX_ASSOC.trailing_zeros()),
            plru_opts,
            false,
        )
        .expect("valid");
        let mut chunks = BlockChunks::new(records, BLOCK_BITS, BlockChunks::DEFAULT_CHUNK);
        while let Some(chunk) = chunks.next_chunk() {
            sim.run_blocks(chunk);
        }
        assert_eq!(
            sim.results(),
            plru_reference,
            "fused_plru: miss counts diverged"
        );
    });
    record_variant("fused_plru", secs);

    let slru_reference = {
        let mut sim =
            SlruTreeSimulator::instrumented(BLOCK_BITS, SET_BITS.0, SET_BITS.1, FUSED_MAX_ASSOC)
                .expect("valid");
        let blocks = decode_blocks(records, BLOCK_BITS);
        sim.run_blocks(&blocks);
        sim.results()
    };
    // The pre-fusion SLRU schedule, mirroring the PLRU one.
    let secs = best_of(samples, || {
        let blocks = decode_blocks(records, BLOCK_BITS);
        for assoc in PER_ASSOC_PASSES {
            let bits = assoc.trailing_zeros();
            let mut sim =
                SlruTreeSimulator::with_instrumentation(BLOCK_BITS, SET_BITS, (bits, bits), false)
                    .expect("valid");
            sim.run_blocks(&blocks);
            let r = sim.results();
            for set_bits in SET_BITS.0..=SET_BITS.1 {
                let sets = 1 << set_bits;
                assert_eq!(
                    r.misses(sets, assoc),
                    slru_reference.misses(sets, assoc),
                    "per_assoc_slru_run_blocks: miss counts diverged"
                );
            }
        }
    });
    record_variant("per_assoc_slru_run_blocks", secs);

    let secs = best_of(samples, || {
        let mut sim = SlruTreeSimulator::with_instrumentation(
            BLOCK_BITS,
            SET_BITS,
            (0, FUSED_MAX_ASSOC.trailing_zeros()),
            false,
        )
        .expect("valid");
        let mut chunks = BlockChunks::new(records, BLOCK_BITS, BlockChunks::DEFAULT_CHUNK);
        while let Some(chunk) = chunks.next_chunk() {
            sim.run_blocks(chunk);
        }
        assert_eq!(
            sim.results(),
            slru_reference,
            "fused_slru: miss counts diverged"
        );
    });
    record_variant("fused_slru", secs);

    // The explore shape: design-space exploration end-to-end — fused
    // FIFO+LRU sweeps (one traversal per block size per policy), analytic
    // scoring, and Pareto-frontier extraction — over an 11 set counts ×
    // 3 block sizes × 4 associativities × 2 policies space. Steps are
    // *simulated accesses* (requests × trace traversals) so the rate is
    // comparable to the kernel variants; both modes are cross-checked to
    // produce the identical frontier.
    let explore_space =
        ExplorationSpace::new(ConfigSpace::new((0, 10), (2, 4), (0, 3)).expect("valid space"))
            .with_policies(&[TreePolicy::Fifo, TreePolicy::Lru]);
    let explore_model = EnergyModel::default();
    let frontier_reference = explore_trace(
        &explore_space,
        records,
        &explore_model,
        ParetoMode::Exhaustive,
        1,
    )
    .expect("explore")
    .frontier();
    let explore_traversals: u64 = 3 * 2; // block sizes x policies
    for (name, mode) in [
        ("explore_pruned", ParetoMode::Pruned),
        ("explore_exhaustive", ParetoMode::Exhaustive),
    ] {
        let secs = best_of(samples, || {
            let report =
                explore_trace(&explore_space, records, &explore_model, mode, 1).expect("explore");
            assert_eq!(report.trace_traversals(), explore_traversals);
            assert_eq!(
                report.frontier().len(),
                frontier_reference.len(),
                "{name}: frontier diverged"
            );
        });
        let steps = n * explore_traversals as f64;
        let v = Variant {
            name,
            ns_per_step: secs * 1e9 / steps,
            steps_per_sec: steps / secs,
        };
        println!(
            "{:<28} {:>8.2} ns/step  {:>10} steps/s",
            v.name,
            v.ns_per_step,
            thousands(v.steps_per_sec as u64)
        );
        variants.push(v);
    }

    let rate = |name: &str| {
        variants
            .iter()
            .find(|v| v.name == name)
            .expect("measured above")
            .steps_per_sec
    };
    let speedup = rate("run_blocks") / rate("step_instrumented");
    println!("\nspeedup run_blocks vs step_instrumented: {speedup:.2}x");
    let fused_speedup = rate("fused_multi_assoc") / rate("per_assoc_run_blocks");
    println!("speedup fused_multi_assoc vs per_assoc_run_blocks: {fused_speedup:.2}x");
    let fused_lru_speedup = rate("fused_lru") / rate("per_assoc_lru_run_blocks");
    println!("speedup fused_lru vs per_assoc_lru_run_blocks: {fused_lru_speedup:.2}x");
    let fused_plru_speedup = rate("fused_plru") / rate("per_assoc_plru_run_blocks");
    println!("speedup fused_plru vs per_assoc_plru_run_blocks: {fused_plru_speedup:.2}x");
    let fused_slru_speedup = rate("fused_slru") / rate("per_assoc_slru_run_blocks");
    println!("speedup fused_slru vs per_assoc_slru_run_blocks: {fused_slru_speedup:.2}x");
    // The honest cost of the full counter ladder on the fused FIFO walk
    // (>1; tracked so instrumentation-overhead regressions are visible).
    let instr_overhead = rate("fused_multi_assoc") / rate("fused_multi_assoc_instrumented");
    println!("instrumented overhead on fused_multi_assoc: {instr_overhead:.2}x");
    let explore_ratio = rate("explore_pruned") / rate("explore_exhaustive");
    println!("explore throughput pruned vs exhaustive: {explore_ratio:.2}x");
    let backend = dew_core::KernelBackend::active();
    println!("tag-scan backend: {}", backend.name());

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"hot_loop\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"app\": \"{}\",", app.name());
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"kernel_backend\": \"{}\",", backend.name());
    let _ = writeln!(
        json,
        "  \"pass\": {{\"block_bits\": {BLOCK_BITS}, \"min_set_bits\": {}, \
         \"max_set_bits\": {}, \"assoc\": {ASSOC}}},",
        SET_BITS.0, SET_BITS.1
    );
    json.push_str("  \"variants\": [\n");
    for (i, v) in variants.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_step\": {:.3}, \"steps_per_sec\": {:.0}}}{}",
            v.name,
            v.ns_per_step,
            v.steps_per_sec,
            if i + 1 < variants.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sweep_shapes\": [\n    {{\"name\": \"per_assoc_passes_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": {n_passes}}},\n    {{\"name\": \"fused_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": 1}},\n    {{\"name\": \
         \"lru_per_assoc_passes_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": {n_passes}}},\n    {{\"name\": \
         \"lru_fused_a1_{FUSED_MAX_ASSOC}\", \"trace_traversals\": 1}},\n    \
         {{\"name\": \"plru_per_assoc_passes_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": {n_passes}}},\n    {{\"name\": \
         \"plru_fused_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": 1}},\n    {{\"name\": \
         \"slru_per_assoc_passes_a1_{FUSED_MAX_ASSOC}\", \
         \"trace_traversals\": {n_passes}}},\n    {{\"name\": \
         \"slru_fused_a1_{FUSED_MAX_ASSOC}\", \"trace_traversals\": 1}},\n    \
         {{\"name\": \"explore_s11_b3_a4_fifo_lru\", \
         \"trace_traversals\": {explore_traversals}}}\n  ],",
        n_passes = PER_ASSOC_PASSES.len()
    );
    let _ = writeln!(
        json,
        "  \"speedup_run_blocks_vs_instrumented\": {speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_vs_per_assoc\": {fused_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_lru_vs_per_assoc\": {fused_lru_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_plru_vs_per_assoc\": {fused_plru_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_fused_slru_vs_per_assoc\": {fused_slru_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"instrumented_over_fast_fused_fifo\": {instr_overhead:.3},"
    );
    let _ = writeln!(
        json,
        "  \"explore_pruned_vs_exhaustive\": {explore_ratio:.3}"
    );
    json.push_str("}\n");

    let path = std::env::var("DEW_BENCH_JSON").unwrap_or_else(|_| "BENCH_hot_loop.json".into());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
