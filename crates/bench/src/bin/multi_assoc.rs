//! Extension benchmark: one multi-associativity pass versus the paper's
//! one-pass-per-associativity methodology.
//!
//! A [`MultiAssocTree`] carries independent FIFO tag lists for every
//! associativity in each node, sharing the walk, the MRA early stop and the
//! direct-mapped results; Table 1's 28 passes become 7. This bench measures
//! what that sharing is worth, with results cross-checked between the two.

use std::time::Instant;

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::SuiteScale;
use dew_core::{DewOptions, DewTree, MultiAssocTree, PassConfig};
use dew_workloads::mediabench::App;

const SET_BITS: (u32, u32) = (0, 14);
const MAX_ASSOC: u32 = 16;

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::JpegEncode;
    let requests = scale.requests_for(app);
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);

    println!(
        "Multi-associativity extension on {app} ({requests} requests, sets 2^{}..2^{}, \
         assoc 1..{MAX_ASSOC}, block 4 B)\n",
        SET_BITS.0, SET_BITS.1
    );
    let mut t = TextTable::new(&["strategy", "passes", "time(s)", "comparisons"]);

    // The paper's methodology: one DewTree pass per associativity above 1.
    let start = Instant::now();
    let mut per_assoc_comparisons = 0u64;
    let mut separate = Vec::new();
    for assoc in [2u32, 4, 8, 16] {
        let pass = PassConfig::new(2, SET_BITS.0, SET_BITS.1, assoc).expect("valid");
        let mut tree = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
        for r in trace.records() {
            tree.step(r.addr);
        }
        per_assoc_comparisons += tree.counters().tag_comparisons;
        separate.push(tree.results());
    }
    let separate_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "per-assoc passes (paper)".into(),
        "4".into(),
        format!("{separate_secs:.3}"),
        thousands(per_assoc_comparisons),
    ]);

    // The extension: everything in one pass.
    let start = Instant::now();
    let mut multi =
        MultiAssocTree::new(2, SET_BITS.0, SET_BITS.1, MAX_ASSOC, DewOptions::default())
            .expect("valid");
    for r in trace.records() {
        multi.step(r.addr);
    }
    let multi_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "multi-assoc pass (extension)".into(),
        "1".into(),
        format!("{multi_secs:.3}"),
        thousands(multi.counters().tag_comparisons),
    ]);
    print!("{}", t.render());

    // Cross-check every configuration between the two strategies.
    let mr = multi.results();
    for (i, assoc) in [2u32, 4, 8, 16].iter().enumerate() {
        for set_bits in SET_BITS.0..=SET_BITS.1 {
            let sets = 1u32 << set_bits;
            assert_eq!(
                mr.misses(sets, *assoc),
                separate[i].misses(sets, *assoc),
                "sets={sets} assoc={assoc}"
            );
            assert_eq!(
                mr.misses(sets, 1),
                separate[i].misses(sets, 1),
                "DM sets={sets}"
            );
        }
    }
    println!("\nall 75 configurations agree between the two strategies (asserted).");
    println!(
        "speedup of the shared pass: {:.2}x",
        separate_secs / multi_secs
    );
}
