//! Extension benchmark: one fused multi-associativity pass versus the
//! paper's one-pass-per-associativity methodology.
//!
//! A [`MultiAssocTree`] carries independent FIFO tag lists for every
//! associativity in each node, sharing the walk, the MRA early stop and the
//! direct-mapped results, and pruning the wider lists' searches with
//! cross-associativity intersection links; Table 1's 28 passes become 7
//! trace traversals. This bench measures what that sharing is worth — the
//! fast fused kernel for wall time, the instrumented one for the comparison
//! counts — with results cross-checked between every strategy.

use std::time::Instant;

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::SuiteScale;
use dew_core::{DewOptions, DewTree, MultiAssocTree, PassConfig};
use dew_workloads::mediabench::App;

const SET_BITS: (u32, u32) = (0, 14);
const MAX_ASSOC: u32 = 16;

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::JpegEncode;
    let requests = scale.requests_for(app);
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);

    println!(
        "Fused multi-associativity extension on {app} ({requests} requests, sets 2^{}..2^{}, \
         assoc 1..{MAX_ASSOC}, block 4 B)\n",
        SET_BITS.0, SET_BITS.1
    );
    let mut t = TextTable::new(&["strategy", "traversals", "time(s)", "comparisons"]);

    // The paper's methodology: one DewTree pass per associativity above 1
    // (instrumented, as every pre-arena build ran).
    let start = Instant::now();
    let mut per_assoc_comparisons = 0u64;
    let mut separate = Vec::new();
    for assoc in [2u32, 4, 8, 16] {
        let pass = PassConfig::new(2, SET_BITS.0, SET_BITS.1, assoc).expect("valid");
        let mut tree = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
        for r in trace.records() {
            tree.step(r.addr);
        }
        per_assoc_comparisons += tree.counters().tag_comparisons;
        separate.push(tree.results());
    }
    let separate_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "per-assoc passes (paper)".into(),
        "4".into(),
        format!("{separate_secs:.3}"),
        thousands(per_assoc_comparisons),
    ]);

    // The extension, instrumented: one traversal, full ladder, counted.
    let start = Instant::now();
    let mut multi =
        MultiAssocTree::instrumented(2, SET_BITS.0, SET_BITS.1, MAX_ASSOC, DewOptions::default())
            .expect("valid");
    for r in trace.records() {
        multi.step(r.addr);
    }
    let multi_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "fused pass (instrumented)".into(),
        "1".into(),
        format!("{multi_secs:.3}"),
        thousands(multi.counters().tag_comparisons),
    ]);

    // The extension as the sweep runs it: the fast fused kernel.
    let start = Instant::now();
    let mut fast = MultiAssocTree::new(2, SET_BITS.0, SET_BITS.1, MAX_ASSOC, DewOptions::default())
        .expect("valid");
    for r in trace.records() {
        fast.step(r.addr);
    }
    let fast_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "fused pass (fast kernel)".into(),
        "1".into(),
        format!("{fast_secs:.3}"),
        "-".into(),
    ]);
    print!("{}", t.render());

    // Cross-check every configuration between the strategies.
    let mr = multi.results();
    assert_eq!(mr, fast.results(), "fused kernels diverged");
    for (i, assoc) in [2u32, 4, 8, 16].iter().enumerate() {
        for set_bits in SET_BITS.0..=SET_BITS.1 {
            let sets = 1u32 << set_bits;
            assert_eq!(
                mr.misses(sets, *assoc),
                separate[i].misses(sets, *assoc),
                "sets={sets} assoc={assoc}"
            );
            assert_eq!(
                mr.misses(sets, 1),
                separate[i].misses(sets, 1),
                "DM sets={sets}"
            );
        }
    }
    println!("\nall 75 configurations agree between the strategies (asserted).");
    println!(
        "comparison cut of the fused instrumented pass: {:.2}x; \
         wall-time speedup of the fast fused pass: {:.2}x",
        per_assoc_comparisons as f64 / multi.counters().tag_comparisons as f64,
        separate_secs / fast_secs
    );
    println!(
        "intersection links settled {} evaluations ({} hits, {} misses)",
        thousands(multi.counters().intersection_total()),
        thousands(multi.counters().intersection_hits),
        thousands(multi.counters().intersection_misses),
    );
}
