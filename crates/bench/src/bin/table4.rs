//! Reproduces **Table 4**: effectiveness of each property used in DEW
//! (block size 4 bytes).
//!
//! Per application: the worst-case ("unoptimized") node-evaluation count,
//! the evaluations DEW actually performed, the MRA-stop count (Property 2,
//! associativity-independent), and — for associativity pairs 1&4 and 1&8 —
//! the number of tag-list searches plus the wave-pointer (Property 3) and
//! MRE (Property 4) determinations that avoided searches.

use dew_bench::report::TextTable;
use dew_bench::suite::{workload_suite, SuiteScale};
use dew_bench::table3::SET_BITS;
use dew_core::{DewCounters, DewOptions, DewTree, PassConfig};
use dew_trace::Trace;

fn run_pass(trace: &Trace, assoc: u32) -> DewCounters {
    let pass =
        PassConfig::new(2, SET_BITS.0, SET_BITS.1, assoc).expect("table 4 pass geometry is valid");
    let mut tree =
        DewTree::instrumented(pass, DewOptions::default()).expect("default options are sound");
    for r in trace.records() {
        tree.step(r.addr);
    }
    assert!(tree.counters().is_consistent(), "counter identity violated");
    *tree.counters()
}

fn main() {
    let scale = SuiteScale::from_env();
    eprintln!("generating workload suite ({scale:?}) ...");
    let suite = workload_suite(scale);
    let levels = SET_BITS.1 - SET_BITS.0 + 1;

    println!("Table 4: effectiveness of DEW's properties (block size 4 B, counts in millions)\n");
    let mut t = TextTable::new(&[
        "application",
        "unopt evals",
        "DEW evals",
        "MRA count",
        "searches A4",
        "wave A4",
        "MRE A4",
        "searches A8",
        "wave A8",
        "MRE A8",
    ]);
    let m = |v: u64| format!("{:.2}", v as f64 / 1e6);
    for (app, trace) in &suite {
        let c4 = run_pass(trace, 4);
        let c8 = run_pass(trace, 8);
        // The walk structure is associativity-independent (the stop rule only
        // consults MRA tags): both passes must agree on these columns.
        assert_eq!(
            c4.node_evaluations, c8.node_evaluations,
            "{app}: evals differ across assoc"
        );
        assert_eq!(
            c4.mra_stops, c8.mra_stops,
            "{app}: MRA stops differ across assoc"
        );
        t.row_owned(vec![
            app.name().to_owned(),
            m(c4.unoptimized_evaluations(levels)),
            m(c4.node_evaluations),
            m(c4.mra_stops),
            m(c4.searches),
            m(c4.wave_total()),
            m(c4.mre_misses),
            m(c8.searches),
            m(c8.wave_total()),
            m(c8.mre_misses),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nnotes: 'unopt evals' = requests x {levels} levels (every request visits every level \
         when Property 2 is off);"
    );
    println!(
        "the paper's unoptimized column equals requests x 30 for its traces — see \
         EXPERIMENTS.md for the factor-of-two discussion."
    );
}
