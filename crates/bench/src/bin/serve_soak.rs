//! Serve soak benchmark: drives a real in-process `dew serve` instance
//! with the `dew gen` load generator at a concurrency deliberately higher
//! than the worker pool, and asserts the service's core robustness
//! contract on every CI run:
//!
//! - **Zero lost responses.** Every submitted job is observed in exactly
//!   one terminal state (completed / deadline-exceeded / cancelled /
//!   rejected-overloaded / rejected-draining / shed), the client-side
//!   ledger reconciles, and the server's own counters agree with it.
//! - **Bounded shed rate.** The bounded admission queue is allowed to
//!   shed under pressure — that is the point — but shedding must stay a
//!   pressure valve, not the common case: the closed-loop phase must
//!   complete at least half of what it submits.
//! - **Graceful shutdown under load.** A second wave of deliberately
//!   long jobs is cut off mid-flight by a drain; the drain report must
//!   account for every in-flight job as drained or checkpoint-cancelled,
//!   and queued jobs as shed.
//!
//! Writes `BENCH_serve_soak.json` (override with `DEW_BENCH_JSON`) in the
//! same `{"name", "steps_per_sec"}` variant shape as the other benches so
//! `bench_guard` can track completed-jobs/sec, alongside the latency
//! percentiles. Scale: `DEW_BENCH_QUICK=1` runs a short soak; the full
//! run is larger. `DEW_BENCH_CHAOS=1` additionally asks the server to
//! wrap every job's trace source in the deterministic fault injector
//! (flaky opens + transient read faults + injected latency), which the
//! workers must absorb via retries without breaking any of the above.

use std::fmt::Write as _;
use std::time::Duration;

use dew_serve::gen::fetch_stats;
use dew_serve::{run_gen, GenConfig, GenReport, ServeConfig, Server};
use dew_workloads::traffic::MixKind;

/// Start a soak server: more client threads than these workers guarantees
/// queue pressure; the small queue guarantees shedding is exercised.
fn soak_server(workers: usize, queue: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: queue,
        default_deadline: Duration::from_secs(30),
        max_deadline: Duration::from_secs(60),
        drain_timeout: Duration::from_millis(500),
        ..ServeConfig::default()
    })
    .expect("soak server starts")
}

/// Pull one named counter out of the server's `stats` response (the
/// counters live under the response's `"stats"` object).
fn stat(stats: &dew_serve::json::Json, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(dew_serve::json::Json::as_u64)
        .unwrap_or_else(|| panic!("stats response carries {key}"))
}

/// The closed-loop soak phase: returns the client ledger after asserting
/// it reconciles against itself *and* against the server's counters.
fn soak(server: &Server, jobs: u64, requests: u64, chaos: bool) -> GenReport {
    let addr = server.addr().to_string();
    let cfg = GenConfig {
        addr: addr.clone(),
        jobs,
        concurrency: 6, // > workers: sustained queue pressure by design
        mix: MixKind::Mix,
        requests,
        seed: 99,
        rate: None, // closed loop: each thread resubmits as soon as one ends
        deadline_ms: Some(30_000),
        chaos,
        wait_timeout_ms: 120_000,
        io_timeout: Duration::from_secs(30),
    };
    let report = run_gen(&cfg);
    println!("{report}");

    assert!(
        report.reconciles(),
        "a submitted job vanished without a terminal state: {report}"
    );
    assert_eq!(report.transport_errors, 0, "no connection may drop");
    assert_eq!(report.wait_timeouts, 0, "no response may be lost");
    assert_eq!(report.failed, 0, "no job may fail outright");
    assert!(
        report.completed * 2 >= report.submitted,
        "shedding must stay bounded: only {}/{} completed",
        report.completed,
        report.submitted
    );

    // The server's ledger must tell the same story as the client's.
    let stats = fetch_stats(&addr, Duration::from_secs(5)).expect("stats reachable");
    assert_eq!(stat(&stats, "submitted"), report.submitted);
    assert_eq!(stat(&stats, "completed"), report.completed);
    assert_eq!(
        stat(&stats, "rejected_overloaded"),
        report.rejected_overloaded
    );
    assert_eq!(stat(&stats, "deadline_exceeded"), report.deadline_exceeded);
    report
}

/// Graceful-shutdown-under-load phase: long jobs are in flight and queued
/// when the drain starts; the report must account for every one of them.
fn shutdown_under_load(chaos: bool) {
    let server = soak_server(1, 4);
    let addr = server.addr().to_string();
    let mut client =
        dew_serve::Client::connect(&addr, Duration::from_secs(30)).expect("client connects");
    let wave = 5u64;
    let mut ids = Vec::new();
    for i in 0..wave {
        let body = dew_serve::json::obj([
            ("cmd", dew_serve::json::str("submit")),
            ("mix", dew_serve::json::str("scan")),
            ("requests", dew_serve::json::num(4_000_000)),
            ("seed", dew_serve::json::num(100 + i)),
            ("chaos", dew_serve::json::Json::Bool(chaos)),
        ]);
        let resp = client.request(&body).expect("submit succeeds");
        if let Some(id) = resp.get("id").and_then(dew_serve::json::Json::as_u64) {
            ids.push(id);
        }
    }
    assert!(!ids.is_empty(), "at least one long job was admitted");
    // Give the single worker a moment to pick one up, then cut everything.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.stop();
    println!("shutdown under load: {report}");
    assert_eq!(
        report.drained + report.cancelled,
        report.in_flight,
        "every in-flight job must drain or cancel at a checkpoint: {report}"
    );
    assert_eq!(
        report.in_flight + report.shed,
        ids.len() as u64,
        "every admitted job is either in flight or shed at drain time: {report}"
    );
}

fn main() {
    let quick = std::env::var_os("DEW_BENCH_QUICK").is_some();
    let chaos = std::env::var_os("DEW_BENCH_CHAOS").is_some();
    let (jobs, requests): (u64, u64) = if quick { (24, 20_000) } else { (64, 100_000) };

    eprintln!(
        "serve soak: {jobs} jobs x {requests} requests, 6 client threads vs 2 workers{}",
        if chaos { ", chaos on" } else { "" }
    );
    let server = soak_server(2, 4);
    let report = soak(&server, jobs, requests, chaos);
    let drain = server.stop();
    assert_eq!(drain.in_flight, 0, "the soak left nothing in flight");
    shutdown_under_load(chaos);
    println!("serve soak passed: no lost responses, bounded shed, clean drain");

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_soak\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"requests_per_job\": {requests},");
    let _ = writeln!(json, "  \"chaos\": {chaos},");
    let _ = writeln!(json, "  \"completed\": {},", report.completed);
    let _ = writeln!(
        json,
        "  \"rejected_overloaded\": {},",
        report.rejected_overloaded
    );
    let _ = writeln!(json, "  \"p50_ms\": {:.1},", report.percentile_ms(50.0));
    let _ = writeln!(json, "  \"p95_ms\": {:.1},", report.percentile_ms(95.0));
    let _ = writeln!(json, "  \"p99_ms\": {:.1},", report.percentile_ms(99.0));
    json.push_str("  \"variants\": [\n");
    let _ = writeln!(
        json,
        "    {{\"name\": \"closed_loop_jobs\", \"steps_per_sec\": {:.3}}}",
        report.jobs_per_sec()
    );
    json.push_str("  ]\n}\n");

    let path = std::env::var("DEW_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve_soak.json".into());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
