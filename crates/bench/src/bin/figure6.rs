//! Reproduces **Figure 6**: percentage reduction of the total number of tag
//! comparisons of DEW over the reference, per application × block size, for
//! associativity pairs 1&4 and 1&8.
//!
//! Reuses `results/table3.csv` when present (run the `table3` binary first
//! for full-scale data); otherwise collects a quick-scale grid in place.

use dew_bench::report::TextTable;
use dew_bench::suite::{workload_suite, SuiteScale};
use dew_bench::table3::{collect, default_csv_path, load_csv, Table3Row, BLOCK_BYTES};
use dew_workloads::mediabench::App;

fn main() {
    let rows = load_or_collect();

    println!("Figure 6: reduction of tag comparisons in DEW vs the reference\n");
    for &assoc in &[4u32, 8] {
        println!("associativity pair 1 & {assoc}:");
        let mut t = TextTable::new(&["application", "B=4", "B=16", "B=64"]);
        for app in App::ALL {
            let mut cells = vec![app.name().to_owned()];
            for &block in &BLOCK_BYTES {
                let cell = rows
                    .iter()
                    .find(|r| r.app == app && r.block_bytes == block && r.assoc == assoc)
                    .map_or_else(
                        || "-".to_owned(),
                        |r| format!("{:.1}%", r.comparison_reduction_pct()),
                    );
                cells.push(cell);
            }
            t.row_owned(cells);
        }
        print!("{}", t.render());
        println!();
    }
    println!("(paper: 54.9% .. 94.9%, growing with block size)");
}

fn load_or_collect() -> Vec<Table3Row> {
    let path = default_csv_path();
    if let Some(rows) = load_csv(&path) {
        eprintln!("using cached rows from {}", path.display());
        return rows;
    }
    eprintln!(
        "no {} — collecting a quick-scale grid (run the table3 binary for full scale)",
        path.display()
    );
    let suite = workload_suite(SuiteScale::quick());
    collect(&suite, |r| {
        eprintln!(
            "  {} B={} A=1&{} done",
            r.app.name(),
            r.block_bytes,
            r.assoc
        );
    })
}
