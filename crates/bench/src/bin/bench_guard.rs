//! Bench regression guard: compares a freshly measured `BENCH_hot_loop.json`
//! against the committed one and **warns** (never fails) when any variant's
//! `steps_per_sec` dropped by more than the threshold (default 30%, override
//! with `DEW_BENCH_GUARD_THRESHOLD=0.2`-style fractions).
//!
//! Usage: `bench_guard [--strict] <committed.json> <fresh.json>`
//!
//! CI runs it after the hot-loop smoke so a kernel regression shows up in
//! the job log (as a GitHub `::warning::` annotation) without blocking
//! unrelated work; absolute throughput on shared runners is too noisy for a
//! hard gate. `--strict` escalates: regressions print as `::error::`
//! annotations and the process exits nonzero (the chaos CI step uses this
//! to make a resilience-layer slowdown a hard failure). A missing or
//! unparsable baseline stays tolerated even under `--strict` — only a
//! measured regression fails the run. When `GITHUB_STEP_SUMMARY` is set (it always is on GitHub
//! runners), the guard additionally appends a markdown comparison table —
//! variant, baseline steps/sec, fresh steps/sec, delta — to the job
//! summary, so the trajectory is readable without opening the log, and the
//! artifact upload of both JSON files makes it diffable per run.
//!
//! **Ratio gates** are always hard, `--strict` or not: speedup ratios in
//! the fresh JSON compare two variants measured in the *same* run on the
//! *same* machine, so runner-class noise cancels and a violation is a real
//! kernel property, not a slow runner. Gated (when the fields are present;
//! older baselines without them are skipped):
//!
//! * `speedup_fused_vs_per_assoc >= 2.0` when the fresh run's
//!   `kernel_backend` is `avx2` — the wide-scan fused FIFO walk must beat
//!   the pre-fusion schedule at least twofold on full hardware;
//! * `instrumented_over_fast_fused_fifo <= 8.0` — the full counter ladder
//!   costs about 5–6× the fast fused walk on the tracked machine (the
//!   counters serialize the ladder's loads; see `EXPERIMENTS.md`), and this
//!   ceiling keeps that honest overhead from silently growing.

use std::process::ExitCode;

/// Minimum fused-vs-per-assoc FIFO speedup on an `avx2` run (same-machine
/// ratio, so gated hard).
const FUSED_SPEEDUP_FLOOR: f64 = 2.0;
/// Maximum instrumented-over-fast ratio on the fused FIFO walk (same-machine
/// ratio; the measured honest cost is ~5–6×).
const INSTR_OVERHEAD_CEILING: f64 = 8.0;

/// Extracts `(name, steps_per_sec)` pairs from a `BENCH_hot_loop.json`
/// document. The format is the one `hot_loop.rs` writes: each variant
/// object carries a `"name"` and a `"steps_per_sec"` field, in that order;
/// anything else is ignored.
fn parse_variants(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(i) = rest.find("\"name\": \"") {
        rest = &rest[i + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_owned();
        rest = &rest[end..];
        // The rate must belong to this object: stop at the object's end.
        let object_end = rest.find('}').unwrap_or(rest.len());
        if let Some(j) = rest[..object_end].find("\"steps_per_sec\": ") {
            let num = rest[j + "\"steps_per_sec\": ".len()..object_end]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect::<String>();
            if let Ok(rate) = num.parse::<f64>() {
                out.push((name, rate));
            }
        }
    }
    out
}

/// Extracts a top-level numeric field (`"key": 1.234`) from the JSON text.
fn parse_scalar(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = text.find(&pat)?;
    text[i + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect::<String>()
        .parse()
        .ok()
}

/// Extracts a top-level string field (`"key": "value"`) from the JSON text.
fn parse_string(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let i = text.find(&pat)?;
    let rest = &text[i + pat.len()..];
    Some(rest[..rest.find('"')?].to_owned())
}

/// The hard same-run ratio gates (see the module docs): one error line per
/// violated gate in the fresh JSON. Fields absent from older formats are
/// skipped, never failed.
fn ratio_gates(fresh: &str) -> Vec<String> {
    let mut out = Vec::new();
    let backend = parse_string(fresh, "kernel_backend");
    if let Some(speedup) = parse_scalar(fresh, "speedup_fused_vs_per_assoc") {
        if backend.as_deref() == Some("avx2") && speedup < FUSED_SPEEDUP_FLOOR {
            out.push(format!(
                "speedup_fused_vs_per_assoc {speedup:.3} is below the \
                 {FUSED_SPEEDUP_FLOOR:.1} floor on an avx2 run"
            ));
        }
    }
    if let Some(ratio) = parse_scalar(fresh, "instrumented_over_fast_fused_fifo") {
        if ratio > INSTR_OVERHEAD_CEILING {
            out.push(format!(
                "instrumented_over_fast_fused_fifo {ratio:.3} exceeds the \
                 {INSTR_OVERHEAD_CEILING:.1} ceiling"
            ));
        }
    }
    out
}

/// Compares the two variant sets and returns one warning line per variant
/// whose fresh rate dropped below `(1 - threshold) ×` the committed rate.
/// Variants present on only one side are skipped (new or retired variants
/// are not regressions).
fn regressions(
    committed: &[(String, f64)],
    fresh: &[(String, f64)],
    threshold: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for (name, base) in committed {
        let Some((_, now)) = fresh.iter().find(|(n, _)| n == name) else {
            continue;
        };
        if *base > 0.0 && *now < *base * (1.0 - threshold) {
            out.push(format!(
                "{name}: {now:.0} steps/s is {:.0}% below the committed {base:.0}",
                (1.0 - now / base) * 100.0
            ));
        }
    }
    out
}

/// Renders the markdown comparison table for the step summary: one row per
/// fresh variant (baseline-only variants are retired and omitted), with the
/// committed rate, the fresh rate and the signed delta. New variants show a
/// dash for the baseline columns.
fn summary_table(committed: &[(String, f64)], fresh: &[(String, f64)], threshold: f64) -> String {
    let mut out = String::from(
        "## hot_loop bench guard\n\n\
         | variant | baseline steps/sec | fresh steps/sec | delta |\n\
         |---|---:|---:|---:|\n",
    );
    for (name, now) in fresh {
        match committed.iter().find(|(n, _)| n == name) {
            Some((_, base)) if *base > 0.0 => {
                let delta = (now / base - 1.0) * 100.0;
                let marker = if *now < *base * (1.0 - threshold) {
                    " ⚠️"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "| `{name}` | {base:.0} | {now:.0} | {delta:+.1}%{marker} |\n"
                ));
            }
            _ => {
                out.push_str(&format!("| `{name}` | — | {now:.0} | new |\n"));
            }
        }
    }
    out.push_str(&format!(
        "\nAdvisory threshold: warn below −{:.0}% of the committed baseline. \
         Both `BENCH_hot_loop.json` (committed) and `BENCH_hot_loop.fresh.json` \
         (this run) are in the job artifact.\n",
        threshold * 100.0
    ));
    out
}

/// Appends the table to `$GITHUB_STEP_SUMMARY` when the variable is set
/// (appending is the documented contract for step summaries: every step
/// shares the file).
fn write_step_summary(table: &str) {
    let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") else {
        return;
    };
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(table.as_bytes()));
    if let Err(e) = appended {
        println!("::warning::bench_guard: cannot write step summary: {e}");
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let strict = args.first().is_some_and(|a| a == "--strict");
    if strict {
        args.remove(0);
    }
    let [committed_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_guard [--strict] <committed.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let threshold = std::env::var("DEW_BENCH_GUARD_THRESHOLD")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.30);
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            // Missing baselines must not fail CI either (first run on a
            // fresh branch): warn and carry on.
            println!("::warning::bench_guard: cannot read {path}: {e}");
            None
        }
    };
    let (Some(committed), Some(fresh)) = (read(committed_path), read(fresh_path)) else {
        return ExitCode::SUCCESS;
    };
    let base = parse_variants(&committed);
    let now = parse_variants(&fresh);
    if base.is_empty() || now.is_empty() {
        println!(
            "::warning::bench_guard: no variants parsed (committed: {}, fresh: {})",
            base.len(),
            now.len()
        );
        return ExitCode::SUCCESS;
    }
    write_step_summary(&summary_table(&base, &now, threshold));
    let warnings = regressions(&base, &now, threshold);
    for w in &warnings {
        // Advisory by default: the committed baseline may come from a
        // different machine class than this runner, so a drop is a prompt
        // to compare trajectories, not a verdict. --strict makes it one.
        if strict {
            println!("::error::throughput regression — {w}");
        } else {
            println!("::warning::hot_loop throughput regression — {w}");
        }
    }
    if warnings.is_empty() {
        println!(
            "bench_guard: {} variants within {:.0}% of the committed baseline",
            now.len(),
            threshold * 100.0
        );
    }
    let gate_errors = ratio_gates(&fresh);
    for g in &gate_errors {
        // Same-run ratios are machine-relative: a violation is a kernel
        // property, not runner noise, so these fail hard either way.
        println!("::error::ratio gate violated — {g}");
    }
    if gate_errors.is_empty() {
        println!("bench_guard: same-run ratio gates hold");
    }
    if !gate_errors.is_empty() || (strict && !warnings.is_empty()) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "hot_loop",
  "variants": [
    {"name": "step", "ns_per_step": 50.460, "steps_per_sec": 19817516},
    {"name": "run_blocks", "ns_per_step": 51.129, "steps_per_sec": 19558401}
  ],
  "sweep_shapes": [
    {"name": "fused_a1_8", "trace_traversals": 1}
  ]
}"#;

    #[test]
    fn parses_variant_rates_and_skips_shapes_without_rates() {
        let v = parse_variants(SAMPLE);
        assert_eq!(
            v,
            vec![
                ("step".to_owned(), 19817516.0),
                ("run_blocks".to_owned(), 19558401.0)
            ]
        );
    }

    #[test]
    fn flags_only_drops_beyond_threshold() {
        let base = vec![("a".to_owned(), 1000.0), ("b".to_owned(), 1000.0)];
        let fresh = vec![
            ("a".to_owned(), 650.0), // 35% drop: flagged
            ("b".to_owned(), 750.0), // 25% drop: within threshold
            ("c".to_owned(), 1.0),   // new variant: ignored
        ];
        let w = regressions(&base, &fresh, 0.30);
        assert_eq!(w.len(), 1);
        assert!(w[0].starts_with("a:"), "{w:?}");
    }

    #[test]
    fn missing_and_faster_variants_do_not_warn() {
        let base = vec![("gone".to_owned(), 500.0), ("fast".to_owned(), 100.0)];
        let fresh = vec![("fast".to_owned(), 400.0)];
        assert!(regressions(&base, &fresh, 0.30).is_empty());
    }

    const RATIOS: &str = r#"{
  "kernel_backend": "avx2",
  "speedup_fused_vs_per_assoc": 2.39,
  "speedup_fused_plru_vs_per_assoc": 1.22,
  "instrumented_over_fast_fused_fifo": 5.95
}"#;

    #[test]
    fn parses_top_level_scalar_and_string_fields() {
        assert_eq!(
            parse_scalar(RATIOS, "speedup_fused_vs_per_assoc"),
            Some(2.39)
        );
        assert_eq!(
            parse_scalar(RATIOS, "instrumented_over_fast_fused_fifo"),
            Some(5.95)
        );
        assert_eq!(parse_scalar(RATIOS, "absent_field"), None);
        assert_eq!(
            parse_string(RATIOS, "kernel_backend").as_deref(),
            Some("avx2")
        );
        assert_eq!(parse_string(RATIOS, "absent_field"), None);
    }

    #[test]
    fn ratio_gates_hold_on_the_tracked_numbers() {
        assert!(ratio_gates(RATIOS).is_empty(), "{:?}", ratio_gates(RATIOS));
    }

    #[test]
    fn low_fused_speedup_fails_only_on_avx2_runs() {
        let slow_avx2 = RATIOS.replace("2.39", "1.40");
        let e = ratio_gates(&slow_avx2);
        assert_eq!(e.len(), 1, "{e:?}");
        assert!(e[0].contains("speedup_fused_vs_per_assoc 1.400"), "{e:?}");
        // The same ratio on a scalar run is expected (no wide scans): no gate.
        let slow_scalar = slow_avx2.replace("avx2", "scalar");
        assert!(ratio_gates(&slow_scalar).is_empty());
    }

    #[test]
    fn runaway_instrumentation_overhead_fails_on_any_backend() {
        let heavy = RATIOS.replace("5.95", "9.10").replace("avx2", "scalar");
        let e = ratio_gates(&heavy);
        assert_eq!(e.len(), 1, "{e:?}");
        assert!(
            e[0].contains("instrumented_over_fast_fused_fifo 9.100"),
            "{e:?}"
        );
    }

    #[test]
    fn json_without_ratio_fields_is_not_gated() {
        assert!(ratio_gates(SAMPLE).is_empty());
    }

    #[test]
    fn summary_table_reports_deltas_new_and_regressed_variants() {
        let base = vec![
            ("steady".to_owned(), 1000.0),
            ("regressed".to_owned(), 1000.0),
            ("retired".to_owned(), 42.0),
        ];
        let fresh = vec![
            ("steady".to_owned(), 1100.0),
            ("regressed".to_owned(), 500.0),
            ("fused_lru".to_owned(), 2000.0),
        ];
        let t = summary_table(&base, &fresh, 0.30);
        assert!(t.starts_with("## hot_loop bench guard"), "{t}");
        assert!(t.contains("| variant | baseline steps/sec | fresh steps/sec | delta |"));
        assert!(t.contains("| `steady` | 1000 | 1100 | +10.0% |"), "{t}");
        assert!(
            t.contains("| `regressed` | 1000 | 500 | -50.0% ⚠️ |"),
            "{t}"
        );
        assert!(t.contains("| `fused_lru` | — | 2000 | new |"), "{t}");
        assert!(
            !t.contains("retired"),
            "baseline-only variants omitted: {t}"
        );
        assert!(t.contains("−30%"), "threshold documented: {t}");
    }
}
