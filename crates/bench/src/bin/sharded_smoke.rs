//! Sharded-sweep smoke benchmark: proves on every CI run that (a) the
//! snapshot-handoff sharded sweep reproduces the sequential fused sweep
//! miss for miss on a large synthetic Zipf trace, (b) the warmup-overlap
//! estimate honours its cold-start slack bound under LRU, and (c) the
//! streamed driver sweeps a trace far larger than the documented memory
//! bound without materialising it — the process high-water mark
//! (`VmHWM`) is asserted below [`MEMORY_BOUND_MIB`].
//!
//! Writes `BENCH_sharded_smoke.json` (override with `DEW_BENCH_JSON`) in
//! the same `{"name", "steps_per_sec"}` variant shape as the hot-loop
//! bench so `bench_guard` can track the throughput trajectory.
//!
//! Scale: `DEW_BENCH_QUICK=1` runs 200k in-memory / 2M streamed requests;
//! the full run does 2M / 100M. `DEW_BENCH_STREAM_REQUESTS=n` overrides
//! the streamed length (this is the knob the EXPERIMENTS.md numbers use).
//!
//! `DEW_BENCH_CHAOS=1` runs the chaos smoke *instead* of the benchmark:
//! the resilient sweep drivers under deterministic injected faults
//! (transient open failures + seeded read faults) must reproduce the
//! fault-free table bit for bit after retries, and a checkpoint image
//! captured mid-run and round-tripped through the `.dewc` sidecar must
//! resume to the same table as the uninterrupted baseline. The sidecar
//! (`chaos_checkpoint.dewc`) is left behind on failure for CI to upload.

use std::fmt::Write as _;
use std::time::Instant;

use dew_bench::report::thousands;
use dew_core::{ConfigSpace, DewOptions, ShardMode, ShardSpec, SweepRequest};
use dew_trace::{Record, TraceError};
use dew_workloads::zipf::Zipf;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The sweep space: 11 set counts × 3 block sizes × 3 associativities.
const SPACE: ((u32, u32), (u32, u32), (u32, u32)) = ((0, 10), (2, 4), (0, 2));
/// Zipf shape: ranks span 1 MiB of hot words, mildly heavy-tailed.
const ZIPF_RANKS: usize = 1 << 18;
const ZIPF_S: f64 = 0.8;
const SHARDS: usize = 8;
/// The documented bound the streamed phase must stay under, measured as the
/// process `VmHWM`. A 100M-request trace is ~1.9 GiB in memory; streaming
/// it must not take the process anywhere near that.
const MEMORY_BOUND_MIB: u64 = 512;

/// Deterministic synthetic Zipf request stream; re-opens identically, which
/// is exactly what `SweepRequest::run_streamed` requires of a source.
struct ZipfStream {
    zipf: Zipf,
    rng: SmallRng,
    remaining: u64,
}

impl ZipfStream {
    fn new(seed: u64, len: u64) -> Self {
        ZipfStream {
            zipf: Zipf::new(ZIPF_RANKS, ZIPF_S),
            rng: SmallRng::seed_from_u64(seed),
            remaining: len,
        }
    }
}

impl Iterator for ZipfStream {
    type Item = Result<Record, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.zipf.sample(&mut self.rng) as u64;
        Some(Ok(Record::read(rank * 4)))
    }
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`; 0 when the
/// platform does not expose it (the assertion is skipped then).
fn vm_hwm_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The checkpoint sidecar the chaos smoke writes; removed on success, left
/// behind for the CI artifact upload when an assertion fails.
const CHAOS_CKPT: &str = "chaos_checkpoint.dewc";

/// Chaos smoke (`DEW_BENCH_CHAOS=1`): proves the resilience layer end to
/// end — (a) a streamed sweep over a fault-injecting source converges to
/// the fault-free table after retries, and (b) a kill+resume through the
/// checkpoint sidecar matches the uninterrupted baseline bit for bit.
fn chaos(requests: u64) {
    use dew_core::{MemoryCheckpointStore, Resilience, RetryPolicy, SweepCheckpoint};
    use dew_trace::{FaultPlan, FaultyTraceSource};
    use std::time::Duration;

    let space = ConfigSpace::new(SPACE.0, SPACE.1, SPACE.2).expect("valid space");
    eprintln!("chaos smoke: {requests} zipf requests under injected faults ...");
    let clean_source = move || Ok(ZipfStream::new(42, requests));
    let baseline = SweepRequest::new(&space)
        .run_streamed(&clean_source)
        .expect("fault-free baseline");

    // (a) Deterministic transient faults: two failed opens plus seeded read
    // faults, all within the retry budget, and a periodic injected stall so
    // the slow-source path (reads that hang, not fail) is exercised too.
    // The recovered table must be identical to the fault-free one, with the
    // retries accounted for.
    let plan = FaultPlan {
        seed: 7,
        fail_opens: 2,
        transient_per_10k: 3,
        transient_budget: 6,
        delay_every: 4096,
        delay: Duration::from_micros(100),
        ..FaultPlan::none()
    };
    let faulty = FaultyTraceSource::new(clean_source, plan);
    let retry = RetryPolicy {
        max_retries: 32,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
    };
    let res = Resilience::new().with_retry(retry);
    let recovered = SweepRequest::new(&space)
        .resilient(&res)
        .run_streamed(&faulty)
        .expect("sweep under transient faults");
    assert!(
        !recovered.is_partial(),
        "every injected fault was transient"
    );
    assert!(recovered.retries() > 0, "faults were actually injected");
    assert_eq!(
        recovered.sorted(),
        baseline.sorted(),
        "chaos run diverged from the fault-free sweep"
    );
    println!(
        "chaos: {} injected faults absorbed by {} retries, table identical to fault-free run",
        faulty.faults_injected(),
        recovered.retries()
    );

    // (b) Kill + resume: checkpoint a sharded run, pick a mid-run image,
    // round-trip it through the on-disk sidecar, resume, compare.
    let records: Vec<Record> = ZipfStream::new(42, requests)
        .map(|r| r.expect("synthetic stream never fails"))
        .collect();
    let store = MemoryCheckpointStore::new();
    let res = Resilience::new().with_checkpoint((requests / 4).max(1), &store);
    let ckpted = SweepRequest::new(&space)
        .sharded(ShardSpec {
            shards: SHARDS,
            mode: ShardMode::SnapshotHandoff,
        })
        .resilient(&res)
        .run(&records)
        .expect("checkpointed sharded sweep");
    assert_eq!(ckpted.sorted(), baseline.sorted());
    let history = store.history();
    assert!(!history.is_empty(), "checkpoints were taken");
    let kill_at = history.len() / 2;
    std::fs::write(CHAOS_CKPT, &history[kill_at]).expect("write checkpoint sidecar");
    let bytes = std::fs::read(CHAOS_CKPT).expect("read checkpoint sidecar");
    let ckpt = SweepCheckpoint::from_bytes(&bytes).expect("sidecar decodes");
    let res = Resilience::new().resume_from(&ckpt);
    let resumed = SweepRequest::new(&space)
        .sharded(ShardSpec {
            shards: SHARDS,
            mode: ShardMode::SnapshotHandoff,
        })
        .resilient(&res)
        .run(&records)
        .expect("resumed sweep");
    assert_eq!(
        resumed.sorted(),
        baseline.sorted(),
        "resume from image {kill_at} diverged from the uninterrupted baseline"
    );
    println!(
        "chaos: killed at checkpoint image {kill_at}/{} and resumed bit-identically",
        history.len()
    );
    let _ = std::fs::remove_file(CHAOS_CKPT);
    println!("chaos smoke passed");
}

fn main() {
    let quick = std::env::var_os("DEW_BENCH_QUICK").is_some();
    let requests: u64 = if quick { 200_000 } else { 2_000_000 };
    if std::env::var_os("DEW_BENCH_CHAOS").is_some() {
        chaos(requests);
        return;
    }
    let stream_requests: u64 = std::env::var("DEW_BENCH_STREAM_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2_000_000 } else { 100_000_000 });
    let space = ConfigSpace::new(SPACE.0, SPACE.1, SPACE.2).expect("valid space");

    eprintln!("generating zipf trace ({requests} requests) ...");
    let records: Vec<Record> = ZipfStream::new(42, requests)
        .map(|r| r.expect("synthetic stream never fails"))
        .collect();

    let mut variants: Vec<(&'static str, f64, f64)> = Vec::new();
    let mut record_variant = |name: &'static str, steps: f64, secs: f64| {
        println!(
            "{:<22} {:>8.2} ns/step  {:>12} steps/s",
            name,
            secs * 1e9 / steps,
            thousands((steps / secs) as u64)
        );
        variants.push((name, secs * 1e9 / steps, steps / secs));
    };

    // Sequential fused sweeps, both policies: the references.
    let start = Instant::now();
    let sequential = SweepRequest::new(&space).run(&records).expect("sweep");
    record_variant(
        "fifo_sequential",
        requests as f64,
        start.elapsed().as_secs_f64(),
    );
    let lru_exact = SweepRequest::new(&space)
        .options(DewOptions::lru())
        .run(&records)
        .expect("sweep");

    // Exact sharding: miss-for-miss equality with the sequential sweep.
    let start = Instant::now();
    let handoff = SweepRequest::new(&space)
        .sharded(ShardSpec {
            shards: SHARDS,
            mode: ShardMode::SnapshotHandoff,
        })
        .run(&records)
        .expect("sharded sweep");
    record_variant(
        "fifo_handoff8",
        requests as f64,
        start.elapsed().as_secs_f64(),
    );
    assert_eq!(
        handoff.sorted(),
        sequential.sorted(),
        "snapshot-handoff sharding diverged from the sequential sweep"
    );

    // Estimating sharding: the LRU slack bound must hold for every config.
    let overlap = (requests / (4 * SHARDS as u64)) as usize;
    let start = Instant::now();
    let warmup = SweepRequest::new(&space)
        .options(DewOptions::lru())
        .sharded(ShardSpec {
            shards: SHARDS,
            mode: ShardMode::WarmupOverlap { overlap },
        })
        .run(&records)
        .expect("warmup sweep");
    record_variant(
        "lru_warmup8",
        warmup.records_simulated() as f64 / warmup.trace_traversals() as f64,
        start.elapsed().as_secs_f64(),
    );
    let bounds = warmup.bounds().expect("warmup mode reports bounds");
    assert!(bounds.guaranteed(), "LRU cold-start bound is guaranteed");
    let mut worst_rel = 0.0f64;
    for (sets, assoc, block) in space.configs() {
        let truth = lru_exact.misses(sets, assoc, block).expect("covered");
        let guess = warmup.misses(sets, assoc, block).expect("covered");
        let slack = bounds.slack(sets, assoc, block).expect("covered");
        assert!(
            guess >= truth && guess - truth <= slack,
            "({sets},{assoc},{block}): truth={truth} est={guess} slack={slack}"
        );
        if truth > 0 {
            worst_rel = worst_rel.max((guess - truth) as f64 / truth as f64);
        }
    }
    println!(
        "warmup estimate worst relative error: {:.4}%",
        worst_rel * 100.0
    );

    // Bounded-memory streaming: sweep a stream that never lives in memory.
    drop(records);
    eprintln!("streaming zipf trace ({stream_requests} requests) ...");
    let source = move || Ok(ZipfStream::new(42, stream_requests));
    let start = Instant::now();
    let streamed = SweepRequest::new(&space)
        .run_streamed(&source)
        .expect("streamed sweep");
    let stream_secs = start.elapsed().as_secs_f64();
    record_variant(
        "zipf_streamed",
        stream_requests as f64 * streamed.trace_traversals() as f64,
        stream_secs,
    );
    assert_eq!(streamed.accesses(), stream_requests);

    let hwm_kib = vm_hwm_kib();
    println!(
        "peak RSS {} MiB (bound {MEMORY_BOUND_MIB} MiB), streamed {} requests in {stream_secs:.1}s",
        hwm_kib / 1024,
        thousands(stream_requests)
    );
    if hwm_kib > 0 {
        assert!(
            hwm_kib / 1024 < MEMORY_BOUND_MIB,
            "peak RSS {} MiB breached the {MEMORY_BOUND_MIB} MiB bound",
            hwm_kib / 1024
        );
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"sharded_smoke\",");
    let _ = writeln!(json, "  \"unix_time\": {unix_time},");
    let _ = writeln!(json, "  \"requests\": {requests},");
    let _ = writeln!(json, "  \"stream_requests\": {stream_requests},");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"overlap\": {overlap},");
    let _ = writeln!(json, "  \"vm_hwm_kib\": {hwm_kib},");
    let _ = writeln!(json, "  \"memory_bound_mib\": {MEMORY_BOUND_MIB},");
    let _ = writeln!(json, "  \"warmup_worst_relative_error\": {worst_rel:.6},");
    json.push_str("  \"variants\": [\n");
    for (i, (name, ns, rate)) in variants.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"ns_per_step\": {ns:.3}, \"steps_per_sec\": {rate:.0}}}{}",
            if i + 1 < variants.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    let path =
        std::env::var("DEW_BENCH_JSON").unwrap_or_else(|_| "BENCH_sharded_smoke.json".into());
    std::fs::write(&path, json).expect("write bench json");
    println!("wrote {path}");
}
