//! Reproduces **Table 1**: the cache configuration parameter space.
//!
//! ```text
//! Cache Set Size   = 2^I where 0 <= I <= 14
//! Cache Block Size = 2^I bytes where 0 <= I <= 6
//! Associativity    = 2^I where 0 <= I <= 4
//! ```
//!
//! and confirms the derived count of 525 configurations plus the number of
//! DEW passes needed to cover them.

use dew_bench::report::TextTable;
use dew_core::ConfigSpace;

fn main() {
    let space = ConfigSpace::paper();

    println!("Table 1: cache configuration parameters\n");
    let mut t = TextTable::new(&["parameter", "range", "values"]);
    let (s0, s1) = space.set_bits();
    let (b0, b1) = space.block_bits();
    let (a0, a1) = space.assoc_bits();
    t.row_owned(vec![
        "cache set size".into(),
        format!("2^{s0} .. 2^{s1}"),
        format!("{}", s1 - s0 + 1),
    ]);
    t.row_owned(vec![
        "cache block size (bytes)".into(),
        format!("2^{b0} .. 2^{b1}"),
        format!("{}", b1 - b0 + 1),
    ]);
    t.row_owned(vec![
        "associativity".into(),
        format!("2^{a0} .. 2^{a1}"),
        format!("{}", a1 - a0 + 1),
    ]);
    print!("{}", t.render());

    println!("\ntotal configurations: {}", space.config_count());
    println!(
        "DEW passes needed:    {} (associativity 1 rides along with every pass)",
        space.passes().len()
    );
    let sizes: Vec<u64> = space
        .configs()
        .map(|(s, a, b)| u64::from(s) * u64::from(a) * u64::from(b))
        .collect();
    println!(
        "cache sizes:          {} B .. {} MiB",
        sizes.iter().min().expect("nonempty"),
        sizes.iter().max().expect("nonempty") / (1024 * 1024),
    );
    assert_eq!(space.config_count(), 525, "the paper's Table 1 count");
}
