//! Reproduces **Table 3**: simulation time and total tag comparisons, DEW vs
//! the per-configuration reference simulator, per application × block size ×
//! associativity pair.
//!
//! Every cell also cross-checks DEW's miss counts against the reference for
//! all 30 configurations it covers (the paper's verification methodology).
//! Rows are written to `results/table3.csv` for the figure binaries.

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::{workload_suite, SuiteScale};
use dew_bench::table3::{collect, default_csv_path, save_csv, ASSOCS, BLOCK_BYTES};

fn main() {
    let scale = SuiteScale::from_env();
    eprintln!("generating workload suite ({scale:?}) ...");
    let suite = workload_suite(scale);

    eprintln!(
        "running {} cells (6 apps x {} block sizes x {} associativity pairs); \
         each cell = 1 DEW pass + 30 reference passes ...",
        6 * BLOCK_BYTES.len() * ASSOCS.len(),
        BLOCK_BYTES.len(),
        ASSOCS.len()
    );
    let rows = collect(&suite, |row| {
        eprintln!(
            "  {} B={} A=1&{}: dew {:.2}s ref {:.2}s speedup {:.1}x",
            row.app.name(),
            row.block_bytes,
            row.assoc,
            row.dew_seconds,
            row.ref_seconds,
            row.speedup()
        );
    });

    println!("\nTable 3: DEW vs reference — simulation time and tag comparisons\n");
    let mut t = TextTable::new(&[
        "application",
        "block",
        "assoc pair",
        "DEW time(s)",
        "ref time(s)",
        "speedup",
        "DEW comps",
        "ref comps",
        "reduction",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.app.name().to_owned(),
            format!("{}", r.block_bytes),
            format!("1 & {}", r.assoc),
            format!("{:.3}", r.dew_seconds),
            format!("{:.3}", r.ref_seconds),
            format!("{:.1}x", r.speedup()),
            thousands(r.dew_comparisons),
            thousands(r.ref_comparisons),
            format!("{:.1}%", r.comparison_reduction_pct()),
        ]);
    }
    print!("{}", t.render());

    let speedups: Vec<f64> = rows
        .iter()
        .map(dew_bench::table3::Table3Row::speedup)
        .collect();
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    println!("\nspeedup: mean {mean:.1}x, min {min:.1}x, max {max:.1}x");
    println!("(paper: mean 18x, range 8x .. 40x on its hardware and trace sizes)");

    let path = default_csv_path();
    match save_csv(&rows, &path) {
        Ok(()) => println!("rows written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
