//! Extra comparison backing the paper's Section 2.1 limitation claim: DEW
//! *can* simulate LRU, but an LRU-specialised single-pass simulator (the
//! Janapsatya/CRCB-style stack-and-inclusion tree) is faster — while DEW with
//! FIFO enjoys its own early termination.
//!
//! Times four exact simulators over the same trace:
//! DEW-FIFO, DEW-LRU, the LRU tree comparator, and the per-configuration
//! reference (LRU), and cross-checks all LRU miss counts.

use std::time::Instant;

use dew_bench::report::{thousands, TextTable};
use dew_bench::suite::SuiteScale;
use dew_cachesim::{Cache, CacheConfig, Replacement};
use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
use dew_core::{DewOptions, DewTree, PassConfig};
use dew_workloads::mediabench::App;

const SET_BITS: (u32, u32) = (0, 10);
const ASSOC: u32 = 4;

fn main() {
    let scale = SuiteScale::from_env();
    let app = App::G721Encode;
    let requests = scale.requests_for(app);
    eprintln!("generating {app} trace ({requests} requests) ...");
    let trace = app.generate(requests, scale.seed);
    let pass = PassConfig::new(2, SET_BITS.0, SET_BITS.1, ASSOC).expect("valid pass");

    let mut t = TextTable::new(&[
        "simulator",
        "policy",
        "time(s)",
        "evaluations",
        "comparisons",
    ]);

    // DEW with FIFO: full properties.
    let start = Instant::now();
    let mut dew_fifo = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
    for r in trace.records() {
        dew_fifo.step(r.addr);
    }
    let fifo_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "DEW".into(),
        "FIFO".into(),
        format!("{fifo_secs:.3}"),
        thousands(dew_fifo.counters().node_evaluations),
        thousands(dew_fifo.counters().tag_comparisons),
    ]);

    // DEW with LRU: the MRA stop must stay off (paper Section 2.1).
    let start = Instant::now();
    let mut dew_lru = DewTree::instrumented(pass, DewOptions::lru()).expect("sound");
    for r in trace.records() {
        dew_lru.step(r.addr);
    }
    let dew_lru_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "DEW".into(),
        "LRU".into(),
        format!("{dew_lru_secs:.3}"),
        thousands(dew_lru.counters().node_evaluations),
        thousands(dew_lru.counters().tag_comparisons),
    ]);

    // The LRU-specialised tree (stack property + inclusion early stop).
    // Instrumented so the evaluation/comparison columns stay comparable with
    // the DEW rows; the fast arena kernel keeps no counters.
    let start = Instant::now();
    let mut lru_tree =
        LruTreeSimulator::instrumented(2, SET_BITS.0, SET_BITS.1, ASSOC, LruTreeOptions::default())
            .expect("valid");
    for r in trace.records() {
        lru_tree.step(r.addr);
    }
    let tree_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "LRU tree (Janapsatya/CRCB-style)".into(),
        "LRU".into(),
        format!("{tree_secs:.3}"),
        thousands(lru_tree.counters().node_evaluations),
        thousands(lru_tree.counters().tag_comparisons),
    ]);

    // Reference: one pass per configuration.
    let start = Instant::now();
    let mut ref_comparisons = 0u64;
    let mut ref_misses = Vec::new();
    for set_bits in SET_BITS.0..=SET_BITS.1 {
        let config = CacheConfig::new(1 << set_bits, ASSOC, 4, Replacement::Lru).expect("valid");
        let mut cache = Cache::new(config);
        for r in trace.records() {
            cache.access(*r);
        }
        ref_comparisons += cache.stats().tag_comparisons();
        ref_misses.push((1u32 << set_bits, cache.stats().misses()));
    }
    let ref_secs = start.elapsed().as_secs_f64();
    t.row_owned(vec![
        "reference (per config)".into(),
        "LRU".into(),
        format!("{ref_secs:.3}"),
        "-".into(),
        thousands(ref_comparisons),
    ]);

    // Cross-check every LRU result.
    for &(sets, expected) in &ref_misses {
        assert_eq!(
            dew_lru.results().misses(sets, ASSOC),
            Some(expected),
            "DEW-LRU sets={sets}"
        );
        assert_eq!(
            lru_tree.results().misses(sets, ASSOC),
            Some(expected),
            "LRU tree sets={sets}"
        );
    }

    println!(
        "LRU comparison on {app} ({} requests, sets 2^{}..2^{}, assoc {ASSOC}, block 4 B)\n",
        requests, SET_BITS.0, SET_BITS.1
    );
    print!("{}", t.render());
    println!("\nall three LRU simulators agree exactly with the reference (asserted).");
    println!(
        "DEW-LRU / LRU-tree time ratio: {:.2}x (the paper: DEW supports LRU but is slower \
         than LRU-specialised methods)",
        dew_lru_secs / tree_secs
    );
    println!(
        "DEW-FIFO / DEW-LRU time ratio: {:.2}x (FIFO enjoys the MRA early stop)",
        fifo_secs / dew_lru_secs
    );
}
