//! Minimal aligned-text table rendering for the harness binaries.

/// A simple right-aligned text table with a header row.
///
/// # Examples
///
/// ```
/// use dew_bench::report::TextTable;
///
/// let mut t = TextTable::new(&["app", "misses"]);
/// t.row(&["CJPEG", "123"]);
/// let s = t.render();
/// assert!(s.contains("CJPEG"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[&str]) {
        let mut r: Vec<String> = cells.iter().map(|s| (*s).to_owned()).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        let mut r = cells;
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table: header, separator, rows; first column
    /// left-aligned, the rest right-aligned.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{c:<w$}", w = width[i])
                    } else {
                        format!("{c:>w$}", w = width[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a count with thousands separators (`1234567` → `1,234,567`).
#[must_use]
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(25_680_911), "25,680,911");
    }
}
