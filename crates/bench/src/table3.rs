//! The Table 3 harness: DEW vs the per-configuration reference simulator,
//! simulation time and tag comparisons, per application × block size ×
//! associativity. Figures 5 and 6 are derived from the same rows.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use dew_cachesim::{Cache, CacheConfig, Replacement};
use dew_core::{DewOptions, DewTree, PassConfig};
use dew_trace::Trace;
use dew_workloads::mediabench::App;

/// Set-count range of the paper's Table 1 (`2^0 ..= 2^14`).
pub const SET_BITS: (u32, u32) = (0, 14);
/// Block sizes of Table 3, in bytes.
pub const BLOCK_BYTES: [u32; 3] = [4, 16, 64];
/// Associativities of Table 3's column pairs ("assoc 1 & A").
pub const ASSOCS: [u32; 3] = [4, 8, 16];

/// One cell of Table 3: one application at one block size and one
/// associativity pair (1 & `assoc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The application.
    pub app: App,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// The non-trivial associativity of the pair (direct-mapped rides along).
    pub assoc: u32,
    /// Requests in the trace.
    pub requests: u64,
    /// DEW single-pass wall time in seconds.
    pub dew_seconds: f64,
    /// Reference-simulator wall time in seconds (one pass per configuration:
    /// 15 set counts × associativities {1, A}).
    pub ref_seconds: f64,
    /// DEW tag comparisons.
    pub dew_comparisons: u64,
    /// Reference tag comparisons summed over its passes.
    pub ref_comparisons: u64,
}

impl Table3Row {
    /// Speedup of DEW over the reference (Figure 5's quantity).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.dew_seconds > 0.0 {
            self.ref_seconds / self.dew_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Percentage reduction of tag comparisons (Figure 6's quantity).
    #[must_use]
    pub fn comparison_reduction_pct(&self) -> f64 {
        if self.ref_comparisons > 0 {
            (1.0 - self.dew_comparisons as f64 / self.ref_comparisons as f64) * 100.0
        } else {
            0.0
        }
    }
}

/// Runs one DEW pass and the matching reference passes over `trace`,
/// returning the filled row. Results are cross-checked for exact equality —
/// the harness doubles as a verification run, like the paper's Section 5
/// ("We have verified hit and miss rates of DEW by comparing with
/// Dinero IV").
///
/// # Panics
///
/// Panics if DEW and the reference disagree on any miss count (they never
/// should; the test-suite proves it on smaller grids).
#[must_use]
pub fn measure_cell(app: App, trace: &Trace, block_bytes: u32, assoc: u32) -> Table3Row {
    let block_bits = block_bytes.trailing_zeros();
    let records = trace.records();

    // DEW: one pass over the trace for all 15 set counts x {1, assoc}.
    let pass = PassConfig::new(block_bits, SET_BITS.0, SET_BITS.1, assoc)
        .expect("table 3 pass geometry is valid");
    let start = Instant::now();
    // Instrumented: Table 3 reports the tag-comparison breakdown, so the
    // timed pass is the counting kernel (matching the paper, whose counts
    // and times come from one run).
    let mut tree =
        DewTree::instrumented(pass, DewOptions::default()).expect("default options are sound");
    for r in records {
        tree.step(r.addr);
    }
    let dew_seconds = start.elapsed().as_secs_f64();
    let dew_results = tree.results();
    let dew_comparisons = tree.counters().tag_comparisons;

    // Reference: one full pass per configuration, Dinero-style.
    let mut ref_comparisons = 0u64;
    let mut ref_seconds = 0.0;
    for a in [1u32, assoc] {
        for set_bits in SET_BITS.0..=SET_BITS.1 {
            let config = CacheConfig::new(1 << set_bits, a, block_bytes, Replacement::Fifo)
                .expect("table 3 reference config is valid");
            let start = Instant::now();
            let mut cache = Cache::new(config);
            for r in records {
                cache.access(*r);
            }
            ref_seconds += start.elapsed().as_secs_f64();
            ref_comparisons += cache.stats().tag_comparisons();
            let expected = cache.stats().misses();
            let got = dew_results
                .misses(1 << set_bits, a)
                .expect("simulated by the pass");
            assert_eq!(
                got, expected,
                "{app}: DEW and reference disagree at sets=2^{set_bits} assoc={a} block={block_bytes}"
            );
        }
    }

    Table3Row {
        app,
        block_bytes,
        assoc,
        requests: records.len() as u64,
        dew_seconds,
        ref_seconds,
        dew_comparisons,
        ref_comparisons,
    }
}

/// Collects the full grid for a suite of app traces. `progress` receives a
/// line per finished cell.
#[must_use]
pub fn collect(suite: &[(App, Trace)], mut progress: impl FnMut(&Table3Row)) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for (app, trace) in suite {
        for &block_bytes in &BLOCK_BYTES {
            for &assoc in &ASSOCS {
                let row = measure_cell(*app, trace, block_bytes, assoc);
                progress(&row);
                rows.push(row);
            }
        }
    }
    rows
}

/// Writes rows as CSV (with a header) to `path`.
///
/// # Errors
///
/// Any I/O failure creating or writing the file.
pub fn save_csv(rows: &[Table3Row], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "app,block_bytes,assoc,requests,dew_seconds,ref_seconds,dew_comparisons,ref_comparisons"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{:.6},{:.6},{},{}",
            r.app.name(),
            r.block_bytes,
            r.assoc,
            r.requests,
            r.dew_seconds,
            r.ref_seconds,
            r.dew_comparisons,
            r.ref_comparisons
        )?;
    }
    f.flush()
}

/// Reads rows back from a CSV produced by [`save_csv`]; `None` when the file
/// is missing or malformed.
#[must_use]
pub fn load_csv(path: &Path) -> Option<Vec<Table3Row>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return None;
        }
        let app = *App::ALL.iter().find(|a| a.name() == f[0])?;
        rows.push(Table3Row {
            app,
            block_bytes: f[1].parse().ok()?,
            assoc: f[2].parse().ok()?,
            requests: f[3].parse().ok()?,
            dew_seconds: f[4].parse().ok()?,
            ref_seconds: f[5].parse().ok()?,
            dew_comparisons: f[6].parse().ok()?,
            ref_comparisons: f[7].parse().ok()?,
        });
    }
    Some(rows)
}

/// Default location of the Table 3 CSV (shared with the figure binaries).
#[must_use]
pub fn default_csv_path() -> std::path::PathBuf {
    std::path::PathBuf::from("results/table3.csv")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cell_cross_checks_and_fills_row() {
        let trace = App::JpegDecode.generate(20_000, 3);
        let row = measure_cell(App::JpegDecode, &trace, 4, 4);
        assert_eq!(row.requests, 20_000);
        assert!(row.dew_comparisons > 0);
        assert!(
            row.ref_comparisons > row.dew_comparisons,
            "DEW compares less"
        );
        assert!(row.speedup() > 0.0);
        assert!(row.comparison_reduction_pct() > 0.0);
    }

    #[test]
    fn csv_round_trip() {
        let trace = App::G721Encode.generate(5_000, 1);
        let rows = vec![measure_cell(App::G721Encode, &trace, 16, 8)];
        let path = std::env::temp_dir().join(format!("dew_table3_{}.csv", std::process::id()));
        save_csv(&rows, &path).expect("save");
        let back = load_csv(&path).expect("load");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].app, rows[0].app);
        assert_eq!(back[0].dew_comparisons, rows[0].dew_comparisons);
        // The CSV stores 6 decimal places.
        assert!((back[0].dew_seconds - rows[0].dew_seconds).abs() < 1e-5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_csv_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("dew_table3_bad_{}.csv", std::process::id()));
        std::fs::write(&path, "header\nnot,a,row\n").expect("write");
        assert!(load_csv(&path).is_none());
        let _ = std::fs::remove_file(&path);
        assert!(load_csv(Path::new("/nonexistent/x.csv")).is_none());
    }
}
