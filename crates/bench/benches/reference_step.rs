//! Criterion micro-benchmark: per-request throughput of the reference
//! (Dinero-equivalent) simulator across policies and associativities — the
//! denominator of the paper's speedup claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dew_bench::suite::SuiteScale;
use dew_cachesim::{Cache, CacheConfig, Replacement};
use dew_trace::Record;
use dew_workloads::mediabench::App;

fn trace_records(n: u64) -> Vec<Record> {
    App::JpegEncode
        .generate(n, SuiteScale::default().seed)
        .into_records()
}

fn bench_policies(c: &mut Criterion) {
    let records = trace_records(100_000);
    let mut group = c.benchmark_group("reference_step/policy");
    group.throughput(Throughput::Elements(records.len() as u64));
    let policies = [
        ("fifo", Replacement::Fifo),
        ("lru", Replacement::Lru),
        ("plru", Replacement::Plru),
        ("random", Replacement::Random(42)),
    ];
    for (name, policy) in policies {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let config = CacheConfig::new(256, 4, 16, policy).expect("valid");
                let mut cache = Cache::new(config);
                for r in &records {
                    cache.access(*r);
                }
                cache.stats().misses()
            });
        });
    }
    group.finish();
}

fn bench_assoc(c: &mut Criterion) {
    let records = trace_records(100_000);
    let mut group = c.benchmark_group("reference_step/assoc");
    group.throughput(Throughput::Elements(records.len() as u64));
    for assoc in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(assoc), &assoc, |b, &assoc| {
            b.iter(|| {
                let config = CacheConfig::new(256, assoc, 16, Replacement::Fifo).expect("valid");
                let mut cache = Cache::new(config);
                for r in &records {
                    cache.access(*r);
                }
                cache.stats().misses()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_assoc);
criterion_main!(benches);
