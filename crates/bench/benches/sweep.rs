//! Criterion benchmark: end-to-end multi-configuration sweeps — one DEW pass
//! versus per-configuration reference passes over the same space, and the
//! LRU-tree comparator. The in-the-small version of Table 3's headline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dew_bench::suite::SuiteScale;
use dew_cachesim::{simulate_trace, CacheConfig, Replacement};
use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
use dew_core::{ConfigSpace, SweepRequest};
use dew_trace::Record;
use dew_workloads::mediabench::App;

fn trace_records(n: u64) -> Vec<Record> {
    App::JpegDecode
        .generate(n, SuiteScale::default().seed)
        .into_records()
}

fn bench_sweep(c: &mut Criterion) {
    let records = trace_records(50_000);
    let space = ConfigSpace::new((0, 10), (2, 2), (0, 2)).expect("valid");
    let mut group = c.benchmark_group("sweep");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);

    group.bench_function("dew_single_thread", |b| {
        b.iter(|| {
            SweepRequest::new(&space)
                .threads(1)
                .run(&records)
                .expect("sweep")
                .config_count()
        });
    });

    group.bench_function("dew_parallel", |b| {
        b.iter(|| {
            SweepRequest::new(&space)
                .run(&records)
                .expect("sweep")
                .config_count()
        });
    });

    group.bench_function("reference_per_config", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for (sets, assoc, block) in space.configs() {
                let config =
                    CacheConfig::new(sets, assoc, block, Replacement::Fifo).expect("valid");
                total += simulate_trace(config, &records).misses();
            }
            total
        });
    });

    group.bench_function("lru_tree_all_assoc", |b| {
        b.iter(|| {
            // The fast arena kernel keeps no comparison counters; anchor the
            // work through a result the simulation must have produced.
            let mut sim =
                LruTreeSimulator::new(2, 0, 10, 4, LruTreeOptions::default()).expect("valid");
            for r in &records {
                sim.step(r.addr);
            }
            sim.results().misses(1 << 10, 4).expect("simulated")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
