//! Criterion micro-benchmark: DEW per-request throughput across
//! associativities and block sizes, and with properties toggled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dew_bench::suite::SuiteScale;
use dew_core::{DewOptions, DewTree, PassConfig};
use dew_workloads::mediabench::App;

fn trace_addrs(n: u64) -> Vec<u64> {
    App::JpegEncode
        .generate(n, SuiteScale::default().seed)
        .records()
        .iter()
        .map(|r| r.addr)
        .collect()
}

fn bench_assoc(c: &mut Criterion) {
    let addrs = trace_addrs(100_000);
    let mut group = c.benchmark_group("dew_step/assoc");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for assoc in [1u32, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(assoc), &assoc, |b, &assoc| {
            b.iter(|| {
                let pass = PassConfig::new(2, 0, 14, assoc).expect("valid");
                let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
                for &a in &addrs {
                    tree.step(a);
                }
                tree.results()
            });
        });
    }
    group.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let addrs = trace_addrs(100_000);
    let mut group = c.benchmark_group("dew_step/block");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for block_bits in [2u32, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(1u32 << block_bits),
            &block_bits,
            |b, &bits| {
                b.iter(|| {
                    let pass = PassConfig::new(bits, 0, 14, 4).expect("valid");
                    let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
                    for &a in &addrs {
                        tree.step(a);
                    }
                    tree.results()
                });
            },
        );
    }
    group.finish();
}

/// The tentpole comparison: the monomorphized fast kernel (per-record and
/// batched) against the instrumented instantiation, same pass, same trace.
fn bench_kernel_variants(c: &mut Criterion) {
    let addrs = trace_addrs(100_000);
    let pass = PassConfig::new(2, 0, 14, 4).expect("valid");
    let blocks: Vec<u64> = addrs.iter().map(|&a| a >> 2).collect();
    let mut group = c.benchmark_group("dew_step/kernel");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("instrumented"),
        &addrs,
        |b, addrs| {
            b.iter(|| {
                let mut tree = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
                for &a in addrs {
                    tree.step(a);
                }
                tree.results()
            });
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("fast"), &addrs, |b, addrs| {
        b.iter(|| {
            let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
            for &a in addrs {
                tree.step(a);
            }
            tree.results()
        });
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("run_blocks"),
        &blocks,
        |b, blocks| {
            b.iter(|| {
                let mut tree = DewTree::new(pass, DewOptions::default()).expect("sound");
                tree.run_blocks(blocks);
                tree.results()
            });
        },
    );
    group.finish();
}

fn bench_properties(c: &mut Criterion) {
    let addrs = trace_addrs(100_000);
    let mut group = c.benchmark_group("dew_step/properties");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    let variants: [(&str, DewOptions); 3] = [
        ("all_on", DewOptions::default()),
        ("all_off", DewOptions::unoptimized()),
        ("lru", DewOptions::lru()),
    ];
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| {
                let pass = PassConfig::new(2, 0, 14, 4).expect("valid");
                let mut tree = DewTree::new(pass, opts).expect("sound");
                for &a in &addrs {
                    tree.step(a);
                }
                tree.results()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_assoc,
    bench_block_size,
    bench_kernel_variants,
    bench_properties
);
criterion_main!(benches);
