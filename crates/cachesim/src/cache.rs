//! The single-configuration cache simulator.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use dew_trace::Record;

use crate::config::CacheConfig;
use crate::policy::{AllocatePolicy, Replacement, WritePolicy};
use crate::set::CacheSet;
use crate::stats::CacheStats;

/// A block that was displaced by an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The block address (byte address shifted by the block bits).
    pub block: u64,
    /// Whether the block was dirty (costs a write-back under write-back).
    pub dirty: bool,
}

/// What one [`Cache::access`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the request hit.
    pub hit: bool,
    /// Whether this was the first access ever to the block (compulsory miss
    /// when `hit` is false).
    pub first_touch: bool,
    /// The block displaced by an allocating miss, if any.
    pub evicted: Option<EvictedBlock>,
    /// Tag comparisons this access performed.
    pub comparisons: u64,
}

/// An exact simulator for a single cache configuration.
///
/// This is the workspace's Dinero IV stand-in: one instance simulates one
/// `(S, A, B, policy)` combination over a trace and accumulates
/// [`CacheStats`]. See the crate docs for its role in the reproduction.
///
/// # Examples
///
/// ```
/// use dew_cachesim::{Cache, CacheConfig, Replacement};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_cachesim::ConfigError> {
/// let mut cache = Cache::new(CacheConfig::new(2, 2, 4, Replacement::Fifo)?);
/// assert!(!cache.access(Record::read(0x0)).hit); // compulsory miss
/// assert!(cache.access(Record::read(0x0)).hit); // now resident
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    stats: CacheStats,
    now: u64,
    rng: Option<SmallRng>,
    /// Blocks ever touched; powers compulsory-miss accounting, part of the
    /// "large information set" the baseline maintains (see paper Section 5).
    touched: HashSet<u64>,
}

impl Cache {
    /// Creates an empty (all-invalid) cache for `config`.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let rng = match config.replacement() {
            Replacement::Random(seed) => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        Cache {
            config,
            sets: (0..config.sets())
                .map(|_| CacheSet::new(config.assoc(), config.replacement()))
                .collect(),
            stats: CacheStats::new(),
            now: 0,
            rng,
            touched: HashSet::new(),
        }
    }

    /// The simulated configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Consumes the cache, returning the statistics.
    #[must_use]
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }

    /// Total number of valid blocks currently resident.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.sets.iter().map(CacheSet::valid_count).sum()
    }

    /// Simulates one memory request and returns what happened.
    pub fn access(&mut self, record: Record) -> AccessOutcome {
        self.now += 1;
        let block = record.block(self.config.block_bits()).get();
        let set_bits = self.config.set_bits();
        let set_idx = (block & (u64::from(self.config.sets()) - 1)) as usize;
        let tag = block >> set_bits;
        let first_touch = self.touched.insert(block);
        let is_store = record.kind.is_store();

        let set = &mut self.sets[set_idx];
        let (found, comparisons) = set.lookup(tag);
        self.stats.record_comparisons(comparisons);

        let mut evicted = None;
        let hit = match found {
            Some(way) => {
                set.touch(way, self.now);
                if is_store {
                    match self.config.write_policy() {
                        WritePolicy::WriteBack => set.mark_dirty(way),
                        WritePolicy::WriteThrough => self.stats.record_memory_write(),
                    }
                }
                true
            }
            None => {
                if first_touch {
                    self.stats.record_compulsory();
                }
                let allocate =
                    !is_store || self.config.allocate_policy() == AllocatePolicy::WriteAllocate;
                if allocate {
                    self.stats.record_demand_fetch();
                    let dirty = is_store && self.config.write_policy() == WritePolicy::WriteBack;
                    if is_store && self.config.write_policy() == WritePolicy::WriteThrough {
                        self.stats.record_memory_write();
                    }
                    let victim = set.insert(tag, dirty, self.now, self.rng.as_mut());
                    if let Some(v) = victim {
                        self.stats.record_eviction(v.dirty);
                        if v.dirty {
                            self.stats.record_memory_write();
                        }
                        evicted = Some(EvictedBlock {
                            block: (v.tag << set_bits) | set_idx as u64,
                            dirty: v.dirty,
                        });
                    }
                } else {
                    // No-write-allocate: the store goes straight to memory.
                    self.stats.record_bypass();
                    self.stats.record_memory_write();
                }
                false
            }
        };
        self.stats.record_access(record.kind, hit);
        AccessOutcome {
            hit,
            first_touch,
            evicted,
            comparisons,
        }
    }

    /// Installs `block` (a block address) as if fetched, *without* touching
    /// the demand statistics — the entry point for prefetch engines
    /// ([`crate::prefetch::PrefetchingCache`]). Replacement state advances
    /// exactly as for a demand miss; an evicted dirty block still costs a
    /// write-back.
    pub fn install_block(&mut self, block: u64) {
        self.now += 1;
        let set_idx = (block & (u64::from(self.config.sets()) - 1)) as usize;
        let tag = block >> self.config.set_bits();
        let set = &mut self.sets[set_idx];
        if set.lookup(tag).0.is_some() {
            return;
        }
        if let Some(v) = set.insert(tag, false, self.now, self.rng.as_mut()) {
            self.stats.record_eviction(v.dirty);
            if v.dirty {
                self.stats.record_memory_write();
            }
        }
    }

    /// `true` when `addr`'s block is currently resident (no state change, no
    /// statistics).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let block = addr >> self.config.block_bits();
        let set_idx = (block & (u64::from(self.config.sets()) - 1)) as usize;
        let tag = block >> self.config.set_bits();
        self.sets[set_idx].lookup(tag).0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AllocatePolicy, WritePolicy};

    fn fifo(sets: u32, assoc: u32, block: u32) -> Cache {
        Cache::new(CacheConfig::new(sets, assoc, block, Replacement::Fifo).expect("valid"))
    }

    #[test]
    fn first_access_is_compulsory_miss() {
        let mut c = fifo(4, 2, 4);
        let out = c.access(Record::read(0x40));
        assert!(!out.hit);
        assert!(out.first_touch);
        assert_eq!(c.stats().compulsory_misses(), 1);
        assert_eq!(c.stats().demand_fetches(), 1);
    }

    #[test]
    fn rereference_hits() {
        let mut c = fifo(4, 2, 4);
        c.access(Record::read(0x40));
        let out = c.access(Record::read(0x43)); // same 4-byte block
        assert!(out.hit);
        assert!(!out.first_touch);
        assert_eq!(c.stats().hits(), 1);
    }

    #[test]
    fn fifo_eviction_across_sets_is_independent() {
        // Direct-mapped, 2 sets, 4-byte blocks: blocks 0 and 2 -> set 0,
        // blocks 1 and 3 -> set 1.
        let mut c = fifo(2, 1, 4);
        c.access(Record::read(0x0)); // block 0 -> set 0
        c.access(Record::read(0x4)); // block 1 -> set 1
        let out = c.access(Record::read(0x8)); // block 2 -> set 0, evicts block 0
        assert_eq!(
            out.evicted,
            Some(EvictedBlock {
                block: 0,
                dirty: false
            })
        );
        assert!(c.probe(0x4), "set 1 untouched");
        assert!(!c.probe(0x0));
        assert!(c.probe(0x8));
    }

    #[test]
    fn fifo_hits_do_not_refresh_age() {
        // 1 set, 2 ways. Insert A, B; hit A; insert C: FIFO must evict A.
        let mut c = fifo(1, 2, 4);
        c.access(Record::read(0x0)); // A
        c.access(Record::read(0x4)); // B
        assert!(c.access(Record::read(0x0)).hit); // hit A
        let out = c.access(Record::read(0x8)); // C evicts A despite the hit
        assert_eq!(out.evicted.map(|e| e.block), Some(0));
    }

    #[test]
    fn lru_hits_do_refresh_age() {
        let config = CacheConfig::new(1, 2, 4, Replacement::Lru).expect("valid");
        let mut c = Cache::new(config);
        c.access(Record::read(0x0)); // A
        c.access(Record::read(0x4)); // B
        assert!(c.access(Record::read(0x0)).hit); // A most recent
        let out = c.access(Record::read(0x8)); // evicts B
        assert_eq!(out.evicted.map(|e| e.block), Some(1));
    }

    #[test]
    fn writeback_counts_on_dirty_eviction() {
        let mut c = fifo(1, 1, 4);
        c.access(Record::write(0x0)); // allocate dirty
        assert_eq!(c.stats().memory_writes(), 0, "write-back defers the write");
        let out = c.access(Record::read(0x4)); // evicts dirty block
        assert!(out.evicted.expect("evicts").dirty);
        assert_eq!(c.stats().writebacks(), 1);
        assert_eq!(c.stats().memory_writes(), 1);
    }

    #[test]
    fn write_through_writes_memory_each_store() {
        let config = CacheConfig::builder()
            .sets(1)
            .assoc(1)
            .block_bytes(4)
            .write_policy(WritePolicy::WriteThrough)
            .build()
            .expect("valid");
        let mut c = Cache::new(config);
        c.access(Record::write(0x0)); // miss + allocate + through-write
        c.access(Record::write(0x0)); // hit + through-write
        assert_eq!(c.stats().memory_writes(), 2);
        assert_eq!(c.stats().writebacks(), 0);
    }

    #[test]
    fn no_write_allocate_bypasses_on_store_miss() {
        let config = CacheConfig::builder()
            .sets(1)
            .assoc(1)
            .block_bytes(4)
            .allocate_policy(AllocatePolicy::NoWriteAllocate)
            .build()
            .expect("valid");
        let mut c = Cache::new(config);
        c.access(Record::write(0x0));
        assert_eq!(c.resident_blocks(), 0, "store miss did not allocate");
        assert_eq!(c.stats().bypasses(), 1);
        assert_eq!(c.stats().memory_writes(), 1);
        // A read of the same block still misses (and is NOT compulsory:
        // the block was touched by the bypassed store).
        let out = c.access(Record::read(0x0));
        assert!(!out.hit);
        assert!(!out.first_touch);
        assert_eq!(c.stats().compulsory_misses(), 1);
    }

    #[test]
    fn comparisons_accumulate_with_dinero_semantics() {
        let mut c = fifo(1, 4, 4);
        c.access(Record::read(0x0)); // 0 valid ways -> 0 comparisons
        c.access(Record::read(0x4)); // 1 valid way -> 1 comparison
        c.access(Record::read(0x0)); // hit way 0 -> 1 comparison
        c.access(Record::read(0x4)); // hit way 1 -> 2 comparisons
        #[allow(clippy::identity_op)] // one term per access above
        {
            assert_eq!(c.stats().tag_comparisons(), 0 + 1 + 1 + 2);
        }
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = fifo(2, 2, 8);
        c.access(Record::read(0x10));
        let before = c.stats().clone();
        assert!(c.probe(0x10));
        assert!(!c.probe(0xdead_0000));
        assert_eq!(c.stats(), &before);
    }

    #[test]
    fn evicted_block_address_reconstruction() {
        // 4 sets, direct-mapped, 16-byte blocks: block addr = byte >> 4.
        let mut c = fifo(4, 1, 16);
        c.access(Record::read(0x123 << 4)); // block 0x123 -> set 3
        let out = c.access(Record::read(((0x123 + 4) << 4) as u64)); // same set
        assert_eq!(out.evicted.map(|e| e.block), Some(0x123));
    }

    #[test]
    fn stats_invariant_hits_plus_misses() {
        let mut c = fifo(8, 2, 4);
        for i in 0..200u64 {
            c.access(Record::read((i * 12) % 512));
        }
        let s = c.stats();
        assert_eq!(s.hits() + s.misses(), s.accesses());
        assert_eq!(s.accesses(), 200);
    }
}
