//! 3C miss classification: compulsory / capacity / conflict.
//!
//! The classic model (Hill & Smith, "Evaluating associativity in CPU caches",
//! IEEE ToC 1989 — reference 11 of the DEW paper) attributes each miss of a
//! real cache to one of three causes:
//!
//! * **compulsory** — the block was never referenced before (would miss even
//!   in an infinite cache);
//! * **capacity** — not compulsory, and a fully-associative LRU cache of the
//!   same total capacity also misses (the working set simply doesn't fit);
//! * **conflict** — not compulsory, and the fully-associative cache *hits*
//!   (the miss is an artefact of limited associativity / set conflicts).
//!
//! Note that for non-LRU real caches (FIFO in particular) the real cache may
//! *hit* where the fully-associative LRU model misses; such "anti-conflict"
//! accesses are not misses and are therefore not classified.
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::classify::{MissClass, ThreeCClassifier};
//! use dew_cachesim::{CacheConfig, Replacement};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_cachesim::ConfigError> {
//! let config = CacheConfig::new(2, 1, 4, Replacement::Fifo)?;
//! let mut c = ThreeCClassifier::new(config);
//! assert_eq!(c.access(Record::read(0x0)), Some(MissClass::Compulsory));
//! assert_eq!(c.access(Record::read(0x0)), None); // hit
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dew_trace::Record;

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::lru_list::LruList;
use crate::stats::CacheStats;

/// The cause a miss is attributed to. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// First-ever reference to the block.
    Compulsory,
    /// Fully-associative LRU of equal capacity misses too.
    Capacity,
    /// Fully-associative LRU of equal capacity would have hit.
    Conflict,
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissClass::Compulsory => f.write_str("compulsory"),
            MissClass::Capacity => f.write_str("capacity"),
            MissClass::Conflict => f.write_str("conflict"),
        }
    }
}

/// Per-class miss totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeCCounts {
    /// Compulsory misses.
    pub compulsory: u64,
    /// Capacity misses.
    pub capacity: u64,
    /// Conflict misses.
    pub conflict: u64,
}

impl ThreeCCounts {
    /// Sum of the three classes (equals the cache's total misses).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.compulsory + self.capacity + self.conflict
    }
}

/// A cache simulator that additionally classifies every miss.
///
/// Wraps a [`Cache`] and runs, in lockstep, a fully-associative LRU model of
/// the same capacity (in blocks) to separate capacity from conflict misses.
#[derive(Debug, Clone)]
pub struct ThreeCClassifier {
    cache: Cache,
    full_assoc: LruList,
    capacity_blocks: usize,
    counts: ThreeCCounts,
}

impl ThreeCClassifier {
    /// Creates a classifier for `config`.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let capacity_blocks = (config.sets() as usize) * (config.assoc() as usize);
        ThreeCClassifier {
            cache: Cache::new(config),
            full_assoc: LruList::with_capacity(capacity_blocks),
            capacity_blocks,
            counts: ThreeCCounts::default(),
        }
    }

    /// Simulates one request. Returns the class when it missed, `None` on a
    /// hit.
    pub fn access(&mut self, record: Record) -> Option<MissClass> {
        let block = record.block(self.cache.config().block_bits()).get();
        let out = self.cache.access(record);

        // Maintain the fully-associative LRU model for every access.
        let fa_hit = self.full_assoc.touch(block);
        if !fa_hit && self.full_assoc.len() > self.capacity_blocks {
            self.full_assoc.pop_least_recent();
        }

        if out.hit {
            return None;
        }
        let class = if out.first_touch {
            MissClass::Compulsory
        } else if fa_hit {
            MissClass::Conflict
        } else {
            MissClass::Capacity
        };
        match class {
            MissClass::Compulsory => self.counts.compulsory += 1,
            MissClass::Capacity => self.counts.capacity += 1,
            MissClass::Conflict => self.counts.conflict += 1,
        }
        Some(class)
    }

    /// Per-class totals so far.
    #[must_use]
    pub fn counts(&self) -> ThreeCCounts {
        self.counts
    }

    /// The wrapped cache's statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The wrapped cache.
    #[must_use]
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Replacement;

    fn classifier(sets: u32, assoc: u32) -> ThreeCClassifier {
        ThreeCClassifier::new(CacheConfig::new(sets, assoc, 4, Replacement::Fifo).expect("valid"))
    }

    #[test]
    fn first_touches_are_compulsory() {
        let mut c = classifier(4, 1);
        for i in 0..4u64 {
            assert_eq!(c.access(Record::read(i * 4)), Some(MissClass::Compulsory));
        }
        assert_eq!(c.counts().compulsory, 4);
    }

    #[test]
    fn conflict_miss_detected() {
        // Direct-mapped 2-set cache (capacity 2 blocks). Blocks 0 and 2 both
        // map to set 0 and thrash, while a 2-entry fully-associative cache
        // holds both.
        let mut c = classifier(2, 1);
        c.access(Record::read(0x0)); // block 0 compulsory
        c.access(Record::read(0x8)); // block 2 compulsory, evicts 0 in set 0
        assert_eq!(c.access(Record::read(0x0)), Some(MissClass::Conflict));
        assert_eq!(c.access(Record::read(0x8)), Some(MissClass::Conflict));
        assert_eq!(
            c.counts(),
            ThreeCCounts {
                compulsory: 2,
                capacity: 0,
                conflict: 2
            }
        );
    }

    #[test]
    fn capacity_miss_detected() {
        // 1-set 1-way cache (capacity 1 block). A cyclic working set of 3
        // blocks misses everywhere; the fully-associative model of capacity 1
        // also misses, so re-references are capacity misses.
        let mut c = classifier(1, 1);
        for _round in 0..2 {
            for b in 0..3u64 {
                c.access(Record::read(b * 4));
            }
        }
        let counts = c.counts();
        assert_eq!(counts.compulsory, 3);
        assert_eq!(counts.capacity, 3);
        assert_eq!(counts.conflict, 0);
    }

    #[test]
    fn class_totals_equal_cache_misses() {
        let mut c = classifier(4, 2);
        for i in 0..500u64 {
            let addr = (i * 7919) % 256;
            c.access(Record::read(addr));
        }
        assert_eq!(c.counts().total(), c.stats().misses());
        assert_eq!(c.stats().accesses(), 500);
    }

    #[test]
    fn display_names() {
        assert_eq!(MissClass::Compulsory.to_string(), "compulsory");
        assert_eq!(MissClass::Capacity.to_string(), "capacity");
        assert_eq!(MissClass::Conflict.to_string(), "conflict");
    }
}
