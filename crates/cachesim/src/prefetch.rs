//! Sequential prefetching, Dinero IV style.
//!
//! Dinero IV supports hardware prefetch policies on its caches; the
//! reference simulator mirrors the three classic sequential variants:
//!
//! * [`PrefetchPolicy::Never`] — demand fetching only (the default, and the
//!   configuration used for all paper-reproduction experiments);
//! * [`PrefetchPolicy::Miss`] — on a demand miss, also fetch the next
//!   `degree` sequential blocks;
//! * [`PrefetchPolicy::Always`] — fetch the next blocks on every demand
//!   access;
//! * [`PrefetchPolicy::Tagged`] — fetch on a miss *and* on the first demand
//!   hit to a prefetched block (Gindele's tagged prefetch), which keeps a
//!   sequential stream running without re-fetching on every access.
//!
//! Prefetches allocate like demand misses but are accounted separately and
//! never count as demand hits/misses.
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::prefetch::{PrefetchPolicy, PrefetchingCache};
//! use dew_cachesim::{CacheConfig, Replacement};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_cachesim::ConfigError> {
//! let config = CacheConfig::new(64, 2, 16, Replacement::Fifo)?;
//! let mut cache = PrefetchingCache::new(config, PrefetchPolicy::Miss, 1);
//! cache.access(Record::read(0x0));   // miss; prefetches block 1
//! let out = cache.access(Record::read(0x10)); // hit thanks to the prefetch
//! assert!(out.hit);
//! assert_eq!(cache.prefetches_issued(), 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashSet;

use dew_trace::Record;

use crate::cache::{AccessOutcome, Cache};
use crate::config::CacheConfig;
use crate::stats::CacheStats;

/// When sequential prefetches are issued. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetchPolicy {
    /// Demand fetching only.
    #[default]
    Never,
    /// Prefetch on demand misses.
    Miss,
    /// Prefetch on every demand access.
    Always,
    /// Prefetch on misses and on first hits to prefetched blocks.
    Tagged,
}

impl std::fmt::Display for PrefetchPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PrefetchPolicy::Never => "never",
            PrefetchPolicy::Miss => "miss",
            PrefetchPolicy::Always => "always",
            PrefetchPolicy::Tagged => "tagged",
        };
        f.write_str(name)
    }
}

/// A [`Cache`] wrapper that issues sequential prefetches.
#[derive(Debug, Clone)]
pub struct PrefetchingCache {
    cache: Cache,
    policy: PrefetchPolicy,
    degree: u32,
    /// Blocks brought in by prefetch and not yet demand-referenced
    /// (the "tag bit" of tagged prefetching).
    tagged: HashSet<u64>,
    prefetches_issued: u64,
    useful_prefetches: u64,
}

impl PrefetchingCache {
    /// Wraps a fresh cache for `config` with the given policy and
    /// prefetch `degree` (how many sequential blocks each trigger fetches).
    #[must_use]
    pub fn new(config: CacheConfig, policy: PrefetchPolicy, degree: u32) -> Self {
        PrefetchingCache {
            cache: Cache::new(config),
            policy,
            degree,
            tagged: HashSet::new(),
            prefetches_issued: 0,
            useful_prefetches: 0,
        }
    }

    /// The wrapped cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// Demand-access statistics (prefetch traffic excluded).
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Prefetches issued so far.
    #[must_use]
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Prefetched blocks that later served a demand hit.
    #[must_use]
    pub fn useful_prefetches(&self) -> u64 {
        self.useful_prefetches
    }

    /// Simulates one demand request, then issues any prefetches the policy
    /// calls for. Returns the demand access's outcome.
    pub fn access(&mut self, record: Record) -> AccessOutcome {
        let block_bits = self.cache.config().block_bits();
        let block = record.block(block_bits).get();

        let was_tagged = self.tagged.remove(&block);
        let out = self.demand(record);
        if out.hit && was_tagged {
            self.useful_prefetches += 1;
        }

        let trigger = match self.policy {
            PrefetchPolicy::Never => false,
            PrefetchPolicy::Miss => !out.hit,
            PrefetchPolicy::Always => true,
            PrefetchPolicy::Tagged => !out.hit || was_tagged,
        };
        if trigger {
            for i in 1..=u64::from(self.degree) {
                self.prefetch_block(block + i, block_bits);
            }
        }
        out
    }

    /// A demand access routed straight to the wrapped cache.
    fn demand(&mut self, record: Record) -> AccessOutcome {
        self.cache.access(record)
    }

    /// Installs `block` if absent, without touching demand statistics.
    fn prefetch_block(&mut self, block: u64, block_bits: u32) {
        let addr = block << block_bits;
        if self.cache.probe(addr) {
            return; // already resident: no traffic
        }
        self.prefetches_issued += 1;
        self.cache.install_block(block);
        self.tagged.insert(block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Replacement;

    fn cache(policy: PrefetchPolicy, degree: u32) -> PrefetchingCache {
        let config = CacheConfig::new(16, 2, 16, Replacement::Fifo).expect("valid");
        PrefetchingCache::new(config, policy, degree)
    }

    #[test]
    fn never_policy_issues_nothing() {
        let mut c = cache(PrefetchPolicy::Never, 4);
        for i in 0..32u64 {
            c.access(Record::read(i * 16));
        }
        assert_eq!(c.prefetches_issued(), 0);
    }

    #[test]
    fn miss_prefetch_turns_streams_into_hits() {
        let mut demand_only = cache(PrefetchPolicy::Never, 0);
        let mut with_pf = cache(PrefetchPolicy::Miss, 1);
        for i in 0..64u64 {
            demand_only.access(Record::read(i * 16));
            with_pf.access(Record::read(i * 16));
        }
        assert_eq!(
            demand_only.stats().misses(),
            64,
            "pure stream misses every block"
        );
        assert!(
            with_pf.stats().misses() <= 33,
            "degree-1 prefetch halves stream misses: {}",
            with_pf.stats().misses()
        );
        assert!(with_pf.useful_prefetches() > 0);
    }

    #[test]
    fn tagged_prefetch_keeps_the_stream_running() {
        let mut miss_pf = cache(PrefetchPolicy::Miss, 1);
        let mut tagged = cache(PrefetchPolicy::Tagged, 1);
        for i in 0..128u64 {
            miss_pf.access(Record::read(i * 16));
            tagged.access(Record::read(i * 16));
        }
        assert!(
            tagged.stats().misses() < miss_pf.stats().misses(),
            "tagged ({}) beats miss-prefetch ({}) on a pure stream",
            tagged.stats().misses(),
            miss_pf.stats().misses()
        );
        // After warm-up, a tagged sequential stream never demand-misses.
        assert!(tagged.stats().misses() <= 2);
    }

    #[test]
    fn always_prefetch_never_misses_a_stream_after_warmup() {
        let mut c = cache(PrefetchPolicy::Always, 2);
        for i in 0..64u64 {
            c.access(Record::read(i * 16));
        }
        assert!(c.stats().misses() <= 1, "misses: {}", c.stats().misses());
    }

    #[test]
    fn prefetches_do_not_count_as_demand_traffic() {
        let mut c = cache(PrefetchPolicy::Always, 4);
        for i in 0..16u64 {
            c.access(Record::read(i * 16));
        }
        assert_eq!(c.stats().accesses(), 16, "only demand accesses counted");
    }

    #[test]
    fn resident_blocks_are_not_prefetched_again() {
        let mut c = cache(PrefetchPolicy::Miss, 1);
        c.access(Record::read(0));
        let first = c.prefetches_issued();
        c.access(Record::read(0x1000)); // other set; block 1 still resident
        c.access(Record::read(0)); // hit, no trigger under Miss policy
        assert_eq!(c.prefetches_issued(), first + 1, "block 0x1001 only");
    }

    #[test]
    fn display_names() {
        assert_eq!(PrefetchPolicy::Tagged.to_string(), "tagged");
        assert_eq!(PrefetchPolicy::default(), PrefetchPolicy::Never);
    }
}
