//! A single cache set with pluggable replacement state.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::policy::Replacement;

/// One way (line frame) of a set.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Way {
    pub tag: u64,
    pub valid: bool,
    pub dirty: bool,
    /// Monotonic time of the last access; replacement state for LRU and
    /// (as the segment-entry time) SLRU.
    pub last_access: u64,
    /// SLRU: whether the block sits in the protected segment.
    pub protected: bool,
}

impl Way {
    const EMPTY: Way = Way {
        tag: 0,
        valid: false,
        dirty: false,
        last_access: 0,
        protected: false,
    };
}

/// A block evicted from a set by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Victim {
    pub tag: u64,
    pub dirty: bool,
}

/// A set-associative cache set.
///
/// The set owns per-policy replacement state: a round-robin pointer for FIFO,
/// per-way access times for LRU, and a tree of direction bits for PLRU.
/// Random replacement draws from an RNG owned by the enclosing cache so that
/// whole-cache simulations are reproducible from a seed.
#[derive(Debug, Clone)]
pub(crate) struct CacheSet {
    ways: Box<[Way]>,
    policy: Replacement,
    /// FIFO: the way that holds the least recently inserted block.
    fifo_ptr: u32,
    /// PLRU: direction bits indexed by heap position (root at index 1).
    plru_bits: u64,
}

impl CacheSet {
    pub fn new(assoc: u32, policy: Replacement) -> Self {
        CacheSet {
            ways: vec![Way::EMPTY; assoc as usize].into_boxed_slice(),
            policy,
            fifo_ptr: 0,
            plru_bits: 0,
        }
    }

    /// Sequentially searches the valid ways for `tag`, Dinero-style.
    ///
    /// Returns the matching way index (if any) and the number of tag
    /// comparisons performed: one per valid way examined, stopping at the
    /// match.
    pub fn lookup(&self, tag: u64) -> (Option<usize>, u64) {
        let mut comparisons = 0;
        for (i, way) in self.ways.iter().enumerate() {
            if way.valid {
                comparisons += 1;
                if way.tag == tag {
                    return (Some(i), comparisons);
                }
            }
        }
        (None, comparisons)
    }

    /// Updates replacement state after a hit on `way`.
    pub fn touch(&mut self, way: usize, now: u64) {
        match self.policy {
            Replacement::Fifo => {} // FIFO state is insertion order only
            Replacement::Lru => self.ways[way].last_access = now,
            Replacement::Plru => self.plru_touch(way),
            Replacement::Slru => self.slru_touch(way, now),
            Replacement::Random(_) => {}
        }
    }

    /// Marks `way` dirty (write-back stores).
    pub fn mark_dirty(&mut self, way: usize) {
        self.ways[way].dirty = true;
    }

    /// Inserts `tag`, evicting per policy when the set is full.
    ///
    /// Returns the victim (when a valid block was replaced) — the caller
    /// decides whether a dirty victim costs a write-back.
    pub fn insert(
        &mut self,
        tag: u64,
        dirty: bool,
        now: u64,
        rng: Option<&mut SmallRng>,
    ) -> Option<Victim> {
        let way = self.choose_victim_way(rng);
        let victim = self.ways[way];
        self.ways[way] = Way {
            tag,
            valid: true,
            dirty,
            last_access: now,
            // SLRU inserts land in the probationary segment; a later hit
            // promotes them (`slru_touch`).
            protected: false,
        };
        match self.policy {
            Replacement::Fifo => {
                self.fifo_ptr = (self.fifo_ptr + 1) % self.ways.len() as u32;
            }
            Replacement::Plru => self.plru_touch(way),
            Replacement::Lru | Replacement::Slru | Replacement::Random(_) => {}
        }
        victim.valid.then_some(Victim {
            tag: victim.tag,
            dirty: victim.dirty,
        })
    }

    /// Number of valid ways (used by statistics and tests).
    pub fn valid_count(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    fn choose_victim_way(&mut self, rng: Option<&mut SmallRng>) -> usize {
        match self.policy {
            // FIFO round-robin: because blocks are only ever inserted at the
            // pointer and never invalidated, the pointer always designates
            // either the next empty way (cold start) or the oldest block.
            Replacement::Fifo => self.fifo_ptr as usize,
            Replacement::Lru => {
                if let Some(i) = self.ways.iter().position(|w| !w.valid) {
                    i
                } else {
                    self.ways
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.last_access)
                        .map(|(i, _)| i)
                        .expect("set has at least one way")
                }
            }
            Replacement::Plru => {
                if let Some(i) = self.ways.iter().position(|w| !w.valid) {
                    i
                } else {
                    self.plru_victim()
                }
            }
            Replacement::Slru => {
                if let Some(i) = self.ways.iter().position(|w| !w.valid) {
                    i
                } else {
                    self.slru_victim()
                }
            }
            Replacement::Random(_) => {
                if let Some(i) = self.ways.iter().position(|w| !w.valid) {
                    i
                } else {
                    let rng = rng.expect("random policy requires an rng");
                    rng.gen_range(0..self.ways.len())
                }
            }
        }
    }

    /// Follows the PLRU direction bits from the root to the pseudo-LRU leaf.
    fn plru_victim(&self) -> usize {
        let assoc = self.ways.len();
        let levels = assoc.trailing_zeros();
        let mut idx = 1usize;
        for _ in 0..levels {
            let bit = (self.plru_bits >> idx) & 1;
            idx = 2 * idx + bit as usize;
        }
        idx - assoc
    }

    /// Points every direction bit on the path to `way` *away* from it.
    fn plru_touch(&mut self, way: usize) {
        let assoc = self.ways.len();
        let levels = assoc.trailing_zeros();
        let mut idx = 1usize;
        for level in (0..levels).rev() {
            let dir = (way >> level) & 1;
            if dir == 0 {
                self.plru_bits |= 1 << idx;
            } else {
                self.plru_bits &= !(1 << idx);
            }
            idx = 2 * idx + dir;
        }
    }

    /// Protected-segment capacity for SLRU: half the ways (0 at
    /// associativity 1, where SLRU degenerates to plain LRU).
    fn slru_protected_cap(&self) -> usize {
        self.ways.len() / 2
    }

    /// SLRU hit handling. Per-way `last_access` stamps double as
    /// segment-entry order: recency *within* a segment is stamp order, and
    /// the victim / demotion choices are the segments' minimum stamps.
    fn slru_touch(&mut self, way: usize, now: u64) {
        let cap = self.slru_protected_cap();
        self.ways[way].last_access = now;
        if cap == 0 || self.ways[way].protected {
            // Protected hit (or degenerate 1-way set): refresh recency only.
            return;
        }
        // Probationary hit: promote to protected MRU; when the protected
        // segment is full, its LRU block demotes to the probationary MRU
        // (stamped `now`, making it the youngest probationary entry).
        self.ways[way].protected = true;
        let protected = self.ways.iter().filter(|w| w.valid && w.protected).count();
        if protected > cap {
            let demote = self
                .ways
                .iter()
                .enumerate()
                .filter(|(i, w)| w.valid && w.protected && *i != way)
                .min_by_key(|(_, w)| w.last_access)
                .map(|(i, _)| i)
                .expect("over-full protected segment has another member");
            self.ways[demote].protected = false;
            self.ways[demote].last_access = now;
        }
    }

    /// The probationary block with the oldest segment-entry stamp. The
    /// probationary segment is never empty when the set is full: at most
    /// `assoc / 2` ways are protected.
    fn slru_victim(&self) -> usize {
        self.ways
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.protected)
            .min_by_key(|(_, w)| w.last_access)
            .map(|(i, _)| i)
            .expect("full set keeps a probationary block")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lookup_counts_valid_comparisons_only() {
        let mut s = CacheSet::new(4, Replacement::Fifo);
        s.insert(10, false, 0, None);
        s.insert(20, false, 1, None);
        // Hit on second way: two comparisons (both valid ways scanned).
        assert_eq!(s.lookup(20), (Some(1), 2));
        // Hit on first way: one comparison.
        assert_eq!(s.lookup(10), (Some(0), 1));
        // Miss: both valid ways compared, invalid ways skipped for free.
        assert_eq!(s.lookup(99), (None, 2));
    }

    #[test]
    fn fifo_round_robin_eviction_order() {
        let mut s = CacheSet::new(2, Replacement::Fifo);
        assert_eq!(s.insert(1, false, 0, None), None);
        assert_eq!(s.insert(2, false, 1, None), None);
        // Hits must not perturb FIFO order.
        s.touch(1, 2);
        s.touch(0, 3);
        let v = s.insert(3, false, 4, None).expect("full set evicts");
        assert_eq!(v.tag, 1, "oldest block leaves first");
        let v = s.insert(4, false, 5, None).expect("full set evicts");
        assert_eq!(v.tag, 2);
        let v = s.insert(5, false, 6, None).expect("full set evicts");
        assert_eq!(v.tag, 3, "round robin wraps");
    }

    #[test]
    fn lru_evicts_least_recently_accessed() {
        let mut s = CacheSet::new(2, Replacement::Lru);
        s.insert(1, false, 0, None);
        s.insert(2, false, 1, None);
        s.touch(0, 2); // tag 1 becomes most recent
        let v = s.insert(3, false, 3, None).expect("evicts");
        assert_eq!(v.tag, 2, "LRU honours the hit, unlike FIFO");
    }

    #[test]
    fn lru_fills_invalid_ways_first() {
        let mut s = CacheSet::new(4, Replacement::Lru);
        for t in 1..=4u64 {
            assert_eq!(
                s.insert(t, false, t, None),
                None,
                "cold fill evicts nothing"
            );
        }
        assert_eq!(s.valid_count(), 4);
    }

    #[test]
    fn plru_victim_is_never_the_most_recent() {
        let mut s = CacheSet::new(8, Replacement::Plru);
        for t in 0..8u64 {
            s.insert(t, false, t, None);
        }
        for probe in 0..8usize {
            s.touch(probe, 100);
            let victim = s.plru_victim();
            assert_ne!(victim, probe, "PLRU never picks the just-touched way");
        }
    }

    #[test]
    fn plru_degenerates_to_lru_for_two_ways() {
        let mut s = CacheSet::new(2, Replacement::Plru);
        s.insert(1, false, 0, None);
        s.insert(2, false, 1, None);
        s.touch(0, 2);
        let v = s.insert(3, false, 3, None).expect("evicts");
        assert_eq!(v.tag, 2);
    }

    #[test]
    fn slru_protects_rehit_blocks_from_scans() {
        // 4 ways: protected capacity 2. Blocks 1 and 2 are hit once each,
        // entering the protected segment; a scan of one-shot blocks must
        // evict only probationary blocks.
        let mut s = CacheSet::new(4, Replacement::Slru);
        s.insert(1, false, 0, None);
        s.insert(2, false, 1, None);
        s.touch(0, 2); // promote tag 1
        s.touch(1, 3); // promote tag 2
        let mut evicted = Vec::new();
        for t in 10..16u64 {
            if let Some(v) = s.insert(t, false, t, None) {
                evicted.push(v.tag);
            }
        }
        assert!(
            !evicted.contains(&1) && !evicted.contains(&2),
            "protected blocks survive the scan: evicted {evicted:?}"
        );
        assert_eq!(s.lookup(1).0, Some(0));
        assert_eq!(s.lookup(2).0, Some(1));
    }

    #[test]
    fn slru_full_protected_segment_demotes_its_lru_block() {
        let mut s = CacheSet::new(4, Replacement::Slru);
        for t in 1..=4u64 {
            s.insert(t, false, t, None);
        }
        s.touch(0, 10); // promote tag 1
        s.touch(1, 11); // promote tag 2 — protected segment now full
        s.touch(2, 12); // promote tag 3 — demotes tag 1 (protected LRU)
                        // The demoted block is now the *youngest* probationary entry, so the
                        // next victim is tag 4 (the oldest probationary block).
        let v = s.insert(5, false, 13, None).expect("full set evicts");
        assert_eq!(v.tag, 4, "victims come from the probationary LRU");
        // Tags 2 and 3 stay protected; the demoted tag 1 is still resident.
        assert_eq!(s.lookup(1).0, Some(0));
    }

    #[test]
    fn slru_degenerates_to_lru_for_one_way() {
        let mut s = CacheSet::new(1, Replacement::Slru);
        s.insert(1, false, 0, None);
        s.touch(0, 1); // protected capacity is 0: recency refresh only
        let v = s.insert(2, false, 2, None).expect("evicts");
        assert_eq!(v.tag, 1);
    }

    #[test]
    fn random_policy_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut s = CacheSet::new(4, Replacement::Random(seed));
            let mut evicted = Vec::new();
            for t in 0..32u64 {
                if let Some(v) = s.insert(t, false, t, Some(&mut rng)) {
                    evicted.push(v.tag);
                }
            }
            evicted
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds explore different orders");
    }

    #[test]
    fn dirty_flag_travels_with_the_victim() {
        let mut s = CacheSet::new(1, Replacement::Fifo);
        s.insert(1, false, 0, None);
        s.mark_dirty(0);
        let v = s.insert(2, false, 1, None).expect("evicts");
        assert!(v.dirty);
        let v = s.insert(3, true, 2, None).expect("evicts");
        assert_eq!((v.tag, v.dirty), (2, false));
    }
}
