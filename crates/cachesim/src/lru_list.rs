//! An indexed doubly-linked LRU list over `u64` keys.
//!
//! Used by the fully-associative models in [`crate::classify`] and by the
//! single-pass LRU comparator in `dew-core`. Operations are O(1) amortised:
//! the list is stored as `Vec`-indexed nodes with a free list, and a
//! `HashMap` maps keys to slots.
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::lru_list::LruList;
//!
//! let mut l = LruList::new();
//! l.touch(10);
//! l.touch(20);
//! l.touch(10); // 10 becomes most recent
//! assert_eq!(l.least_recent(), Some(20));
//! assert_eq!(l.len(), 2);
//! assert_eq!(l.pop_least_recent(), Some(20));
//! assert_eq!(l.least_recent(), Some(10));
//! ```

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    prev: usize,
    next: usize,
}

/// A recency-ordered set of `u64` keys with O(1) touch/evict.
///
/// The *most recent* end is the head; the *least recent* end is the tail.
#[derive(Debug, Clone, Default)]
pub struct LruList {
    nodes: Vec<Node>,
    slots: HashMap<u64, usize>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruList {
    /// Creates an empty list.
    #[must_use]
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            slots: HashMap::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates an empty list with capacity for `n` keys.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        LruList {
            nodes: Vec::with_capacity(n),
            slots: HashMap::with_capacity(n),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of keys currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no key is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` when `key` is tracked.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.slots.contains_key(&key)
    }

    /// Makes `key` the most recent entry, inserting it if absent. Returns
    /// `true` when the key was already present.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&slot) = self.slots.get(&key) {
            self.unlink(slot);
            self.push_front(slot);
            true
        } else {
            let slot = self.alloc(key);
            self.slots.insert(key, slot);
            self.push_front(slot);
            false
        }
    }

    /// The least recently touched key, if any.
    #[must_use]
    pub fn least_recent(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.nodes[self.tail].key)
    }

    /// The most recently touched key, if any.
    #[must_use]
    pub fn most_recent(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.nodes[self.head].key)
    }

    /// Removes and returns the least recently touched key.
    pub fn pop_least_recent(&mut self) -> Option<u64> {
        let tail = self.tail;
        if tail == NIL {
            return None;
        }
        let key = self.nodes[tail].key;
        self.unlink(tail);
        self.slots.remove(&key);
        self.free.push(tail);
        Some(key)
    }

    /// Removes `key` if present, returning whether it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        if let Some(slot) = self.slots.remove(&key) {
            self.unlink(slot);
            self.free.push(slot);
            true
        } else {
            false
        }
    }

    /// Iterates keys from most recent to least recent.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            list: self,
            cursor: self.head,
        }
    }

    fn alloc(&mut self, key: u64) -> usize {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot] = Node {
                key,
                prev: NIL,
                next: NIL,
            };
            slot
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

/// Iterator over an [`LruList`], most recent first. Created by
/// [`LruList::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    list: &'a LruList,
    cursor: usize,
}

impl Iterator for Iter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cursor];
        self.cursor = node.next;
        Some(node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_orders_by_recency() {
        let mut l = LruList::new();
        for k in [1u64, 2, 3] {
            assert!(!l.touch(k));
        }
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![3, 2, 1]);
        assert!(l.touch(1));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 3, 2]);
        assert_eq!(l.least_recent(), Some(2));
        assert_eq!(l.most_recent(), Some(1));
    }

    #[test]
    fn pop_removes_in_lru_order() {
        let mut l = LruList::new();
        for k in 0..5u64 {
            l.touch(k);
        }
        let order: Vec<u64> = std::iter::from_fn(|| l.pop_least_recent()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert!(l.is_empty());
        assert_eq!(l.pop_least_recent(), None);
    }

    #[test]
    fn remove_middle_keeps_links_intact() {
        let mut l = LruList::new();
        for k in 0..4u64 {
            l.touch(k);
        }
        assert!(l.remove(2));
        assert!(!l.remove(2));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![3, 1, 0]);
        assert_eq!(l.len(), 3);
        // Slots are recycled.
        l.touch(9);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![9, 3, 1, 0]);
    }

    #[test]
    fn single_element_edge_cases() {
        let mut l = LruList::new();
        l.touch(42);
        assert_eq!(l.least_recent(), Some(42));
        assert_eq!(l.most_recent(), Some(42));
        assert!(l.remove(42));
        assert_eq!(l.least_recent(), None);
        assert!(l.is_empty());
        l.touch(43);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![43]);
    }

    #[test]
    fn matches_naive_model_on_mixed_operations() {
        // Reference model: Vec kept in most-recent-first order.
        let mut l = LruList::new();
        let mut model: Vec<u64> = Vec::new();
        let ops: Vec<(u8, u64)> = (0..500)
            .map(|i| {
                let x = (i * 2654435761u64) >> 7;
                ((x % 3) as u8, x % 17)
            })
            .collect();
        for (op, key) in ops {
            match op {
                0 | 1 => {
                    l.touch(key);
                    model.retain(|&k| k != key);
                    model.insert(0, key);
                }
                _ => {
                    let was = l.remove(key);
                    let had = model.contains(&key);
                    model.retain(|&k| k != key);
                    assert_eq!(was, had);
                }
            }
            assert_eq!(l.iter().collect::<Vec<_>>(), model);
            assert_eq!(l.least_recent(), model.last().copied());
        }
    }
}
