//! The statistics record collected by the reference simulator.
//!
//! The breadth of this record is deliberate: the paper notes that Dinero IV
//! "collects different types of information about a cache, such as the number
//! of compulsory misses, number of demand fetches, etc." and that
//! "maintaining the large information set increases the total simulation time
//! for Dinero IV". The baseline in our benchmarks pays the same costs.

use std::fmt;

use dew_trace::AccessKind;

/// Counters accumulated by a [`crate::Cache`] over a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    accesses: [u64; 3],
    hits: [u64; 3],
    misses: [u64; 3],
    compulsory_misses: u64,
    evictions: u64,
    writebacks: u64,
    demand_fetches: u64,
    memory_writes: u64,
    tag_comparisons: u64,
    bypasses: u64,
}

impl CacheStats {
    /// Creates a zeroed statistics record.
    #[must_use]
    pub fn new() -> Self {
        CacheStats::default()
    }

    pub(crate) fn record_access(&mut self, kind: AccessKind, hit: bool) {
        self.accesses[kind as usize] += 1;
        if hit {
            self.hits[kind as usize] += 1;
        } else {
            self.misses[kind as usize] += 1;
        }
    }

    pub(crate) fn record_compulsory(&mut self) {
        self.compulsory_misses += 1;
    }

    pub(crate) fn record_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }

    pub(crate) fn record_demand_fetch(&mut self) {
        self.demand_fetches += 1;
    }

    pub(crate) fn record_memory_write(&mut self) {
        self.memory_writes += 1;
    }

    pub(crate) fn record_comparisons(&mut self, n: u64) {
        self.tag_comparisons += n;
    }

    pub(crate) fn record_bypass(&mut self) {
        self.bypasses += 1;
    }

    /// Total number of accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses.iter().sum()
    }

    /// Total number of hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Total number of misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Accesses of one kind.
    #[must_use]
    pub fn accesses_of(&self, kind: AccessKind) -> u64 {
        self.accesses[kind as usize]
    }

    /// Hits of one kind.
    #[must_use]
    pub fn hits_of(&self, kind: AccessKind) -> u64 {
        self.hits[kind as usize]
    }

    /// Misses of one kind.
    #[must_use]
    pub fn misses_of(&self, kind: AccessKind) -> u64 {
        self.misses[kind as usize]
    }

    /// Misses to blocks never seen before (infinite-cache misses).
    #[must_use]
    pub fn compulsory_misses(&self) -> u64 {
        self.compulsory_misses
    }

    /// Valid blocks replaced.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty blocks written back to memory on eviction.
    #[must_use]
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Blocks fetched from memory on misses that allocate.
    #[must_use]
    pub fn demand_fetches(&self) -> u64 {
        self.demand_fetches
    }

    /// Words written to memory (write-through stores, no-allocate write
    /// misses, write-backs).
    #[must_use]
    pub fn memory_writes(&self) -> u64 {
        self.memory_writes
    }

    /// Total tag comparisons performed (sequential-search semantics).
    #[must_use]
    pub fn tag_comparisons(&self) -> u64 {
        self.tag_comparisons
    }

    /// Write misses that bypassed the cache (no-write-allocate).
    #[must_use]
    pub fn bypasses(&self) -> u64 {
        self.bypasses
    }

    /// Miss rate over all accesses, `0.0` for an empty run.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }

    /// Hit rate over all accesses, `0.0` for an empty run.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Adds another record into this one (for aggregating shards).
    pub fn merge(&mut self, other: &CacheStats) {
        for i in 0..3 {
            self.accesses[i] += other.accesses[i];
            self.hits[i] += other.hits[i];
            self.misses[i] += other.misses[i];
        }
        self.compulsory_misses += other.compulsory_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.demand_fetches += other.demand_fetches;
        self.memory_writes += other.memory_writes;
        self.tag_comparisons += other.tag_comparisons;
        self.bypasses += other.bypasses;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses (miss rate {:.4}), {} compulsory, \
             {} fetches, {} evictions, {} writebacks, {} comparisons",
            self.accesses(),
            self.hits(),
            self.misses(),
            self.miss_rate(),
            self.compulsory_misses,
            self.demand_fetches,
            self.evictions,
            self.writebacks,
            self.tag_comparisons,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_sums_over_kinds() {
        let mut s = CacheStats::new();
        s.record_access(AccessKind::Read, true);
        s.record_access(AccessKind::Write, false);
        s.record_access(AccessKind::InstrFetch, true);
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.hits_of(AccessKind::Read), 1);
        assert_eq!(s.misses_of(AccessKind::Write), 1);
        assert_eq!(s.accesses_of(AccessKind::InstrFetch), 1);
    }

    #[test]
    fn rates_handle_empty_runs() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn hit_plus_miss_rate_is_one_when_nonempty() {
        let mut s = CacheStats::new();
        for i in 0..10 {
            s.record_access(AccessKind::Read, i % 3 == 0);
        }
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = CacheStats::new();
        a.record_access(AccessKind::Read, false);
        a.record_compulsory();
        a.record_comparisons(5);
        let mut b = CacheStats::new();
        b.record_access(AccessKind::Read, true);
        b.record_eviction(true);
        b.record_demand_fetch();
        b.record_memory_write();
        b.record_bypass();
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
        assert_eq!(a.compulsory_misses(), 1);
        assert_eq!(a.tag_comparisons(), 5);
        assert_eq!(a.evictions(), 1);
        assert_eq!(a.writebacks(), 1);
        assert_eq!(a.demand_fetches(), 1);
        assert_eq!(a.memory_writes(), 1);
        assert_eq!(a.bypasses(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CacheStats::new().to_string().is_empty());
    }
}
