//! Exact single-configuration set-associative cache simulator.
//!
//! This crate is the workspace's **Dinero IV equivalent**: a trace-driven
//! uniprocessor cache simulator that simulates one cache configuration per
//! pass, collects a rich statistics set (hits/misses per access kind,
//! compulsory misses, demand fetches, evictions, write-backs) and counts tag
//! comparisons with sequential-search semantics. It serves two roles in the
//! DEW reproduction, exactly as Dinero IV does in the paper:
//!
//! 1. **Correctness oracle** — DEW's multi-configuration results are verified
//!    by exact comparison against per-configuration runs of this simulator.
//! 2. **Speed baseline** — Table 3 and Figures 5/6 compare DEW's single-pass
//!    simulation time and tag-comparison counts against one pass of this
//!    simulator per configuration.
//!
//! Supported features: power-of-two set counts, associativities and block
//! sizes; FIFO, LRU, tree-PLRU and seeded-random replacement; write-back and
//! write-through with and without write-allocate; optional 3C miss
//! classification ([`classify::ThreeCClassifier`]).
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::{Cache, CacheConfig, Replacement};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_cachesim::ConfigError> {
//! let config = CacheConfig::builder()
//!     .sets(64)
//!     .assoc(4)
//!     .block_bytes(16)
//!     .replacement(Replacement::Fifo)
//!     .build()?;
//! let mut cache = Cache::new(config);
//! for i in 0..1024u64 {
//!     cache.access(Record::read(i * 4));
//! }
//! let stats = cache.stats();
//! assert_eq!(stats.accesses(), 1024);
//! assert!(stats.misses() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod classify;
mod config;
pub mod hierarchy;
pub mod lru_list;
mod policy;
pub mod prefetch;
mod set;
mod stats;
pub mod victim;

pub use cache::{AccessOutcome, Cache, EvictedBlock};
pub use config::{CacheConfig, CacheConfigBuilder, ConfigError};
pub use policy::{AllocatePolicy, Replacement, WritePolicy};
pub use stats::CacheStats;

use dew_trace::Record;

/// Runs a whole trace through a freshly constructed cache and returns the
/// final statistics. One call of this function corresponds to one Dinero IV
/// invocation in the paper's methodology.
///
/// # Examples
///
/// ```
/// use dew_cachesim::{simulate_trace, CacheConfig};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_cachesim::ConfigError> {
/// let config = CacheConfig::builder().sets(4).assoc(2).block_bytes(4).build()?;
/// let trace: Vec<Record> = (0..64u64).map(|i| Record::read(i * 4)).collect();
/// let stats = simulate_trace(config, &trace);
/// assert_eq!(stats.accesses(), 64);
/// # Ok(())
/// # }
/// ```
pub fn simulate_trace(config: CacheConfig, records: &[Record]) -> CacheStats {
    let mut cache = Cache::new(config);
    for r in records {
        cache.access(*r);
    }
    cache.into_stats()
}
