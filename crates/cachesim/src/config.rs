//! Cache configuration: the `(S, A, B)` triple of the paper plus policies.

use std::error::Error;
use std::fmt;

use crate::policy::{AllocatePolicy, Replacement, WritePolicy};

/// A validated cache configuration.
///
/// Mirrors the paper's parameterisation (Section 3): set count `S`,
/// associativity `A` and block size `B`, all powers of two, with total size
/// `T = S × B × A`. Replacement/write/allocate policies select the simulator
/// behaviour beyond the geometry.
///
/// Construct through [`CacheConfig::builder`] (validating) or
/// [`CacheConfig::new`] (validating, positional).
///
/// # Examples
///
/// ```
/// use dew_cachesim::{CacheConfig, Replacement};
///
/// # fn main() -> Result<(), dew_cachesim::ConfigError> {
/// let c = CacheConfig::new(128, 4, 32, Replacement::Fifo)?;
/// assert_eq!(c.total_bytes(), 128 * 4 * 32);
/// assert_eq!(c.set_bits(), 7);
/// assert_eq!(c.block_bits(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    sets: u32,
    assoc: u32,
    block_bytes: u32,
    replacement: Replacement,
    write: WritePolicy,
    allocate: AllocatePolicy,
}

impl CacheConfig {
    /// Creates a validated configuration with default write policies
    /// (write-back, write-allocate).
    ///
    /// # Errors
    ///
    /// See [`CacheConfigBuilder::build`].
    pub fn new(
        sets: u32,
        assoc: u32,
        block_bytes: u32,
        replacement: Replacement,
    ) -> Result<Self, ConfigError> {
        CacheConfig::builder()
            .sets(sets)
            .assoc(assoc)
            .block_bytes(block_bytes)
            .replacement(replacement)
            .build()
    }

    /// Starts building a configuration. Defaults: 1 set, 1 way, 4-byte
    /// blocks, FIFO, write-back, write-allocate.
    #[must_use]
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::new()
    }

    /// Number of sets `S` (a power of two).
    #[must_use]
    pub const fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity `A` (a power of two).
    #[must_use]
    pub const fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block size `B` in bytes (a power of two).
    #[must_use]
    pub const fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Total capacity `T = S × A × B` in bytes.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.sets as u64 * self.assoc as u64 * self.block_bytes as u64
    }

    /// `log2(S)`: number of index bits.
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// `log2(B)`: number of block-offset bits.
    #[must_use]
    pub const fn block_bits(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// The replacement policy.
    #[must_use]
    pub const fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// The write policy.
    #[must_use]
    pub const fn write_policy(&self) -> WritePolicy {
        self.write
    }

    /// The write-miss allocation policy.
    #[must_use]
    pub const fn allocate_policy(&self) -> AllocatePolicy {
        self.allocate
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}s/{}w/{}B {} ({} bytes)",
            self.sets,
            self.assoc,
            self.block_bytes,
            self.replacement,
            self.total_bytes()
        )
    }
}

/// Builder for [`CacheConfig`].
///
/// # Examples
///
/// ```
/// use dew_cachesim::{CacheConfig, Replacement, WritePolicy};
///
/// # fn main() -> Result<(), dew_cachesim::ConfigError> {
/// let c = CacheConfig::builder()
///     .sets(16)
///     .assoc(2)
///     .block_bytes(8)
///     .replacement(Replacement::Lru)
///     .write_policy(WritePolicy::WriteThrough)
///     .build()?;
/// assert_eq!(c.sets(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CacheConfigBuilder {
    sets: u32,
    assoc: u32,
    block_bytes: u32,
    replacement: Replacement,
    write: WritePolicy,
    allocate: AllocatePolicy,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CacheConfigBuilder {
    /// Creates a builder with the defaults documented on
    /// [`CacheConfig::builder`].
    #[must_use]
    pub fn new() -> Self {
        CacheConfigBuilder {
            sets: 1,
            assoc: 1,
            block_bytes: 4,
            replacement: Replacement::Fifo,
            write: WritePolicy::default(),
            allocate: AllocatePolicy::default(),
        }
    }

    /// Sets the number of sets `S`.
    #[must_use]
    pub fn sets(mut self, sets: u32) -> Self {
        self.sets = sets;
        self
    }

    /// Sets the associativity `A`.
    #[must_use]
    pub fn assoc(mut self, assoc: u32) -> Self {
        self.assoc = assoc;
        self
    }

    /// Sets the block size `B` in bytes.
    #[must_use]
    pub fn block_bytes(mut self, block_bytes: u32) -> Self {
        self.block_bytes = block_bytes;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Sets the write policy.
    #[must_use]
    pub fn write_policy(mut self, write: WritePolicy) -> Self {
        self.write = write;
        self
    }

    /// Sets the write-miss allocation policy.
    #[must_use]
    pub fn allocate_policy(mut self, allocate: AllocatePolicy) -> Self {
        self.allocate = allocate;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::NotPowerOfTwo`] — any of `S`, `A`, `B` is zero or not
    ///   a power of two;
    /// * [`ConfigError::PlruAssocTooLarge`] — PLRU with associativity above
    ///   [`CacheConfigBuilder::MAX_PLRU_ASSOC`];
    /// * [`ConfigError::TooLarge`] — the geometry overflows the address
    ///   arithmetic (`log2(S) + log2(B) > 58`), which also guarantees the
    ///   DEW tag sentinel can never collide with a real tag.
    pub fn build(self) -> Result<CacheConfig, ConfigError> {
        for (name, v) in [
            ("sets", self.sets),
            ("assoc", self.assoc),
            ("block_bytes", self.block_bytes),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(ConfigError::NotPowerOfTwo {
                    field: name,
                    value: v,
                });
            }
        }
        if matches!(self.replacement, Replacement::Plru) && self.assoc > Self::MAX_PLRU_ASSOC {
            return Err(ConfigError::PlruAssocTooLarge(self.assoc));
        }
        if self.sets.trailing_zeros() + self.block_bytes.trailing_zeros() > 58 {
            return Err(ConfigError::TooLarge);
        }
        Ok(CacheConfig {
            sets: self.sets,
            assoc: self.assoc,
            block_bytes: self.block_bytes,
            replacement: self.replacement,
            write: self.write,
            allocate: self.allocate,
        })
    }
}

impl CacheConfigBuilder {
    /// Largest associativity supported by the tree-PLRU implementation.
    pub const MAX_PLRU_ASSOC: u32 = 64;
}

/// Errors produced when validating a [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A geometry field was zero or not a power of two.
    NotPowerOfTwo {
        /// Which field (`"sets"`, `"assoc"` or `"block_bytes"`).
        field: &'static str,
        /// The offending value.
        value: u32,
    },
    /// PLRU replacement was requested with an unsupported associativity.
    PlruAssocTooLarge(u32),
    /// The geometry exceeds the supported address arithmetic.
    TooLarge,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a nonzero power of two, got {value}")
            }
            ConfigError::PlruAssocTooLarge(a) => {
                write!(f, "plru supports associativity up to 64, got {a}")
            }
            ConfigError::TooLarge => {
                write!(f, "log2(sets) + log2(block_bytes) must not exceed 58")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_powers_of_two() {
        for bad in [0u32, 3, 6, 12, 100] {
            assert!(matches!(
                CacheConfig::builder().sets(bad).build(),
                Err(ConfigError::NotPowerOfTwo { field: "sets", .. })
            ));
            assert!(matches!(
                CacheConfig::builder().assoc(bad).build(),
                Err(ConfigError::NotPowerOfTwo { field: "assoc", .. })
            ));
            assert!(matches!(
                CacheConfig::builder().block_bytes(bad).build(),
                Err(ConfigError::NotPowerOfTwo {
                    field: "block_bytes",
                    ..
                })
            ));
        }
    }

    #[test]
    fn geometry_accessors() {
        let c = CacheConfig::new(256, 8, 64, Replacement::Lru).expect("valid");
        assert_eq!(c.set_bits(), 8);
        assert_eq!(c.block_bits(), 6);
        assert_eq!(c.total_bytes(), 256 * 8 * 64);
        assert_eq!(c.assoc(), 8);
    }

    #[test]
    fn plru_assoc_limit() {
        assert!(CacheConfig::builder()
            .assoc(128)
            .replacement(Replacement::Plru)
            .build()
            .is_err());
        assert!(CacheConfig::builder()
            .assoc(64)
            .replacement(Replacement::Plru)
            .build()
            .is_ok());
        // The limit only applies to PLRU.
        assert!(CacheConfig::builder()
            .assoc(128)
            .replacement(Replacement::Fifo)
            .build()
            .is_ok());
    }

    #[test]
    fn oversized_geometry_rejected() {
        assert!(matches!(
            CacheConfig::builder()
                .sets(1 << 30)
                .block_bytes(1 << 30)
                .build(),
            Err(ConfigError::TooLarge)
        ));
    }

    #[test]
    fn display_shows_geometry() {
        let c = CacheConfig::new(4, 2, 16, Replacement::Fifo).expect("valid");
        let s = c.to_string();
        assert!(s.contains("4s"), "{s}");
        assert!(s.contains("fifo"), "{s}");
    }

    #[test]
    fn paper_config_space_extremes_are_valid() {
        // Table 1: S up to 2^14, B up to 64, A up to 16 -> 16 MiB max.
        let c = CacheConfig::new(1 << 14, 16, 64, Replacement::Fifo).expect("valid");
        assert_eq!(c.total_bytes(), 16 * 1024 * 1024);
        let c = CacheConfig::new(1, 1, 1, Replacement::Fifo).expect("1-byte cache");
        assert_eq!(c.total_bytes(), 1);
    }
}
