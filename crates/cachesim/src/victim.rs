//! A victim cache (Jouppi, ISCA 1990): a small fully-associative buffer that
//! catches blocks just evicted from a direct-mapped or low-associativity
//! cache, removing most conflict misses at a fraction of the cost of more
//! ways.
//!
//! The concept is directly relevant to this reproduction: DEW's MRE entry
//! (Property 4) is a one-entry victim *metadata* buffer — it remembers the
//! most recently evicted tag to prove absence, where a hardware victim cache
//! would hold the data to serve the hit. This module simulates the real
//! thing so the two can be compared.
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::victim::VictimCache;
//! use dew_cachesim::{CacheConfig, Replacement};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_cachesim::ConfigError> {
//! let main = CacheConfig::new(64, 1, 16, Replacement::Fifo)?;
//! let mut vc = VictimCache::new(main, 4);
//! vc.access(Record::read(0x0));
//! assert_eq!(vc.victim_hits(), 0);
//! # Ok(())
//! # }
//! ```

use dew_trace::Record;

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::lru_list::LruList;
use crate::stats::CacheStats;

/// A main cache augmented with a small fully-associative LRU victim buffer.
///
/// Lookup order: main cache, then victim buffer. A victim-buffer hit swaps
/// the block back into the main cache (the main cache's displaced block
/// takes its place in the buffer), as in Jouppi's design.
#[derive(Debug, Clone)]
pub struct VictimCache {
    main: Cache,
    victims: LruList,
    capacity: usize,
    victim_hits: u64,
    total_misses: u64,
}

impl VictimCache {
    /// Wraps a fresh main cache with a victim buffer of `entries` blocks.
    #[must_use]
    pub fn new(main: CacheConfig, entries: usize) -> Self {
        VictimCache {
            main: Cache::new(main),
            victims: LruList::with_capacity(entries + 1),
            capacity: entries,
            victim_hits: 0,
            total_misses: 0,
        }
    }

    /// The main cache's statistics. Note: accesses served by the victim
    /// buffer still count as main-cache misses there; use
    /// [`VictimCache::effective_misses`] for the combined number.
    #[must_use]
    pub fn main_stats(&self) -> &CacheStats {
        self.main.stats()
    }

    /// Hits served by the victim buffer.
    #[must_use]
    pub fn victim_hits(&self) -> u64 {
        self.victim_hits
    }

    /// Misses after the victim buffer (requests that went to memory).
    #[must_use]
    pub fn effective_misses(&self) -> u64 {
        self.total_misses - self.victim_hits
    }

    /// Simulates one request. Returns `true` on a hit in either structure.
    pub fn access(&mut self, record: Record) -> bool {
        let block = record.block(self.main.config().block_bits()).get();
        let out = self.main.access(record);
        if out.hit {
            return true;
        }
        self.total_misses += 1;
        // The block the main cache just displaced moves into the buffer...
        if let Some(evicted) = out.evicted {
            self.victims.touch(evicted.block);
            if self.victims.len() > self.capacity {
                self.victims.pop_least_recent();
            }
        }
        // ...and the requested block, if buffered, is promoted back out
        // (the main cache already installed it as part of the miss).
        if self.victims.remove(block) {
            self.victim_hits += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Replacement;

    fn dm_with_victims(sets: u32, entries: usize) -> VictimCache {
        VictimCache::new(
            CacheConfig::new(sets, 1, 16, Replacement::Fifo).expect("valid"),
            entries,
        )
    }

    #[test]
    fn conflict_thrashing_is_absorbed() {
        // Blocks 0 and `sets` collide in a direct-mapped cache; a 4-entry
        // victim buffer turns the ping-pong into hits.
        let mut plain = dm_with_victims(64, 0);
        let mut buffered = dm_with_victims(64, 4);
        for i in 0..200u64 {
            let addr = if i % 2 == 0 { 0x0 } else { 64 * 16 };
            plain.access(Record::read(addr));
            buffered.access(Record::read(addr));
        }
        assert_eq!(
            plain.effective_misses(),
            200,
            "pure ping-pong never hits DM"
        );
        assert_eq!(
            buffered.effective_misses(),
            2,
            "only the two compulsory misses remain"
        );
        assert_eq!(buffered.victim_hits(), 198);
    }

    #[test]
    fn capacity_misses_are_not_absorbed() {
        // A cyclic working set far over main + buffer capacity still misses.
        let mut vc = dm_with_victims(4, 2);
        for _round in 0..3 {
            for b in 0..64u64 {
                vc.access(Record::read(b * 16));
            }
        }
        assert_eq!(
            vc.victim_hits(),
            0,
            "LRU buffer can't hold a 64-block cycle"
        );
        assert_eq!(vc.effective_misses(), 192);
    }

    #[test]
    fn zero_entry_buffer_is_a_plain_cache() {
        let mut vc = dm_with_victims(16, 0);
        for i in 0..100u64 {
            vc.access(Record::read((i % 32) * 16));
        }
        assert_eq!(vc.victim_hits(), 0);
        assert_eq!(vc.effective_misses(), vc.main_stats().misses());
    }

    #[test]
    fn victim_buffer_is_lru_ordered() {
        // Evict three blocks into a 2-entry buffer; the first one out is the
        // one that is gone.
        let mut vc = dm_with_victims(1, 2);
        vc.access(Record::read(0x00)); // block 0
        vc.access(Record::read(0x10)); // evicts 0
        vc.access(Record::read(0x20)); // evicts 1
        vc.access(Record::read(0x30)); // evicts 2; buffer = {1, 2}, 0 gone
        assert!(vc.access(Record::read(0x20)), "block 2 still buffered");
        let hits_before = vc.victim_hits();
        vc.access(Record::read(0x00)); // block 0 was dropped
                                       // block 0's access missed both structures: victim_hits unchanged.
        assert_eq!(vc.victim_hits(), hits_before);
    }
}
