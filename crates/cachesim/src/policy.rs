//! Replacement, write and allocation policies.

use std::fmt;

/// Block replacement policy of a cache.
///
/// The DEW paper targets [`Replacement::Fifo`]; [`Replacement::Lru`] is the
/// policy of the prior single-pass simulators (Janapsatya, CRCB); tree-PLRU,
/// segmented LRU and seeded random round out the set Dinero IV offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Replacement {
    /// First-in first-out (round-robin): the victim is the way holding the
    /// least recently *inserted* block. Hits do not change the state.
    Fifo,
    /// Least recently used: the victim is the way holding the least recently
    /// *accessed* block. Hits refresh recency.
    Lru,
    /// Tree-based pseudo-LRU: a binary tree of direction bits approximates
    /// LRU with one bit per internal node. Requires power-of-two
    /// associativity.
    Plru,
    /// Segmented LRU: the set is split into a protected segment of capacity
    /// `assoc / 2` and a probationary segment. Misses insert at the
    /// probationary MRU position; a probationary hit promotes the block to
    /// the protected MRU (demoting the protected LRU block to probationary
    /// MRU when the protected segment is full); victims are always the
    /// probationary LRU block, which makes one-shot scans unable to flush
    /// the protected working set. Degenerates to plain LRU at
    /// associativity 1.
    Slru,
    /// Uniform random victim, from a deterministic per-cache PRNG seeded with
    /// the given value (so simulations are reproducible).
    Random(u64),
}

impl Replacement {
    /// A short lowercase name (`fifo`, `lru`, `plru`, `slru`, `random`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Replacement::Fifo => "fifo",
            Replacement::Lru => "lru",
            Replacement::Plru => "plru",
            Replacement::Slru => "slru",
            Replacement::Random(_) => "random",
        }
    }
}

impl fmt::Display for Replacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens on a data write that hits (or is allocated into) the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Writes mark the block dirty; the block is written to memory only when
    /// evicted (counted as a write-back).
    #[default]
    WriteBack,
    /// Every write is propagated to memory immediately; blocks are never
    /// dirty.
    WriteThrough,
}

impl fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WritePolicy::WriteBack => f.write_str("write-back"),
            WritePolicy::WriteThrough => f.write_str("write-through"),
        }
    }
}

/// What happens on a data write that misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocatePolicy {
    /// The block is fetched and installed (the DEW paper's implicit policy:
    /// every request allocates, so hit/miss behaviour is kind-agnostic).
    #[default]
    WriteAllocate,
    /// The write goes straight to memory; the cache is not modified.
    NoWriteAllocate,
}

impl fmt::Display for AllocatePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocatePolicy::WriteAllocate => f.write_str("write-allocate"),
            AllocatePolicy::NoWriteAllocate => f.write_str("no-write-allocate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Replacement::Fifo.name(), "fifo");
        assert_eq!(Replacement::Lru.name(), "lru");
        assert_eq!(Replacement::Plru.name(), "plru");
        assert_eq!(Replacement::Slru.name(), "slru");
        assert_eq!(Replacement::Random(7).name(), "random");
    }

    #[test]
    fn defaults_match_paper_assumptions() {
        assert_eq!(WritePolicy::default(), WritePolicy::WriteBack);
        assert_eq!(AllocatePolicy::default(), AllocatePolicy::WriteAllocate);
    }

    #[test]
    fn display_is_nonempty() {
        for r in [
            Replacement::Fifo,
            Replacement::Lru,
            Replacement::Plru,
            Replacement::Slru,
            Replacement::Random(0),
        ] {
            assert!(!r.to_string().is_empty());
        }
        assert!(!WritePolicy::WriteThrough.to_string().is_empty());
        assert!(!AllocatePolicy::NoWriteAllocate.to_string().is_empty());
    }
}
