//! A two-level cache hierarchy.
//!
//! Dinero IV is a multi-level simulator (its CLI wires L1/L2/L3 chains); the
//! DEW paper only evaluates level 1, but the substrate keeps parity so
//! downstream users can model the common embedded L1→L2 arrangement:
//! demand requests hit L1; L1 misses are fetched through L2; L1 dirty
//! evictions are written into L2 (write-back); L2 misses go to memory.
//!
//! The hierarchy is *non-inclusive, non-exclusive* ("mainly inclusive"), the
//! default behaviour of simple hierarchies: L2 is not forcibly invalidated
//! when L1 replaces a block, and L1 refills always install in L2 too.
//!
//! # Examples
//!
//! ```
//! use dew_cachesim::hierarchy::TwoLevel;
//! use dew_cachesim::{CacheConfig, Replacement};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_cachesim::ConfigError> {
//! let l1 = CacheConfig::new(16, 2, 16, Replacement::Fifo)?;
//! let l2 = CacheConfig::new(256, 4, 16, Replacement::Lru)?;
//! let mut h = TwoLevel::new(l1, l2)?;
//! for i in 0..10_000u64 {
//!     h.access(Record::read((i % 40) * 16));
//! }
//! assert!(h.l2_stats().accesses() < h.l1_stats().accesses(), "L2 filters through L1");
//! # Ok(())
//! # }
//! ```

use dew_trace::{AccessKind, Record};

use crate::cache::Cache;
use crate::config::{CacheConfig, ConfigError};
use crate::stats::CacheStats;

/// A demand-fetched, write-back two-level hierarchy.
#[derive(Debug, Clone)]
pub struct TwoLevel {
    l1: Cache,
    l2: Cache,
    /// Requests that missed both levels (memory transactions).
    memory_fetches: u64,
}

/// Outcome of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyOutcome {
    /// Hit in L1.
    pub l1_hit: bool,
    /// Hit in L2 (only meaningful when L1 missed; `false` on L1 hits).
    pub l2_hit: bool,
}

impl TwoLevel {
    /// Builds a hierarchy from two configurations.
    ///
    /// # Errors
    ///
    /// [`ConfigError::TooLarge`] if the L2 block size is smaller than L1's
    /// (refills could not be satisfied in one transaction).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Result<Self, ConfigError> {
        if l2.block_bytes() < l1.block_bytes() {
            return Err(ConfigError::TooLarge);
        }
        Ok(TwoLevel {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            memory_fetches: 0,
        })
    }

    /// L1 statistics (sees every demand request).
    #[must_use]
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 statistics (sees L1 misses and L1 dirty write-backs).
    #[must_use]
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Requests that had to go to memory.
    #[must_use]
    pub fn memory_fetches(&self) -> u64 {
        self.memory_fetches
    }

    /// Global miss rate: memory fetches per demand access.
    #[must_use]
    pub fn global_miss_rate(&self) -> f64 {
        let accesses = self.l1.stats().accesses();
        if accesses == 0 {
            0.0
        } else {
            self.memory_fetches as f64 / accesses as f64
        }
    }

    /// Simulates one demand request through the hierarchy.
    pub fn access(&mut self, record: Record) -> HierarchyOutcome {
        let out1 = self.l1.access(record);
        if out1.hit {
            return HierarchyOutcome {
                l1_hit: true,
                l2_hit: false,
            };
        }
        // L1 dirty victim is written back into L2 (not a demand access for
        // L2's hit/miss accounting; modelled as a write touch).
        if let Some(victim) = out1.evicted.filter(|v| v.dirty) {
            let addr = victim.block << self.l1.config().block_bits();
            self.l2.access(Record::write(addr));
        }
        // The refill itself: L2 lookup with the demand kind (loads stay
        // loads; an allocating store appears as a read-for-ownership fetch).
        let refill_kind = match record.kind {
            AccessKind::InstrFetch => AccessKind::InstrFetch,
            _ => AccessKind::Read,
        };
        let out2 = self.l2.access(Record::new(record.addr, refill_kind));
        if !out2.hit {
            self.memory_fetches += 1;
        }
        HierarchyOutcome {
            l1_hit: false,
            l2_hit: out2.hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Replacement;

    fn hierarchy(l1_sets: u32, l2_sets: u32) -> TwoLevel {
        let l1 = CacheConfig::new(l1_sets, 2, 16, Replacement::Fifo).expect("valid");
        let l2 = CacheConfig::new(l2_sets, 4, 16, Replacement::Lru).expect("valid");
        TwoLevel::new(l1, l2).expect("compatible")
    }

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = hierarchy(4, 64);
        for _ in 0..3 {
            for b in 0..32u64 {
                h.access(Record::read(b * 16));
            }
        }
        assert_eq!(h.l1_stats().accesses(), 96);
        assert_eq!(
            h.l2_stats().accesses(),
            h.l1_stats().misses(),
            "every L2 access is an L1 miss (no dirty write-backs here)"
        );
    }

    #[test]
    fn l2_turns_l1_capacity_misses_into_l2_hits() {
        // Working set of 32 blocks: thrashes a 8-block L1, fits a 256-block L2.
        let mut h = hierarchy(4, 64);
        for _round in 0..10 {
            for b in 0..32u64 {
                h.access(Record::read(b * 16));
            }
        }
        assert!(h.l1_stats().miss_rate() > 0.5, "L1 thrashes");
        // After the first (compulsory) round, L2 holds the whole set.
        assert_eq!(
            h.memory_fetches(),
            32,
            "only compulsory misses reach memory"
        );
        assert!(h.global_miss_rate() < 0.11);
    }

    #[test]
    fn dirty_l1_victims_are_written_to_l2() {
        let mut h = hierarchy(1, 64);
        // Two blocks alternating in a 2-way L1 set; writes make them dirty.
        h.access(Record::write(0x00));
        h.access(Record::write(0x10));
        h.access(Record::write(0x20)); // evicts dirty block 0 -> L2 write
        let l2_writes = h.l2_stats().accesses_of(dew_trace::AccessKind::Write);
        assert_eq!(l2_writes, 1, "one dirty victim written back into L2");
    }

    #[test]
    fn incompatible_block_sizes_rejected() {
        let l1 = CacheConfig::new(4, 1, 32, Replacement::Fifo).expect("valid");
        let l2 = CacheConfig::new(64, 4, 16, Replacement::Lru).expect("valid");
        assert!(TwoLevel::new(l1, l2).is_err());
    }

    #[test]
    fn ifetches_keep_their_kind_in_l2() {
        let mut h = hierarchy(1, 16);
        h.access(Record::ifetch(0x40));
        assert_eq!(
            h.l2_stats().accesses_of(dew_trace::AccessKind::InstrFetch),
            1
        );
    }

    #[test]
    fn empty_hierarchy_rates() {
        let h = hierarchy(4, 16);
        assert_eq!(h.global_miss_rate(), 0.0);
        assert_eq!(h.memory_fetches(), 0);
    }
}
