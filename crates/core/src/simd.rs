//! Explicit wide-scan tag-compare primitives: the lane-wide compare /
//! movemask kernel behind every fused arena scan, with a mandatory scalar
//! fallback.
//!
//! The fused kernels' hot operation is always the same: compare a small
//! contiguous region of 64-bit way tags against one requested block number
//! and learn *which* lane matched (FIFO and LRU need the position — FIFO for
//! its per-list windows, LRU for the stack depth — and PLRU/SLRU need the
//! first match or the first sentinel). Until this module, that scan relied
//! on LLVM autovectorising the branchless `hit_mask |= (tag == block) << i`
//! loop; here it is explicit:
//!
//! * **scalar** — a branchless u64 loop using the SWAR zero test
//!   `((x - 1) & !x) >> 63` on `tag ^ needle`, so even the fallback emits no
//!   per-lane branches. This path is the **oracle**: the SIMD paths are
//!   property-tested bit-identical to it (`tests/proptest_simd_kernels.rs`,
//!   [`crate::kernel::selftest`]);
//! * **sse2** — two tags per step via `_mm_cmpeq_epi32` plus a lane swap and
//!   AND (plain SSE2 has no 64-bit compare; equality of both 32-bit halves
//!   is 64-bit equality), movemasked through `_mm_movemask_pd`;
//! * **avx2** — four tags per step via `_mm256_cmpeq_epi64` /
//!   `_mm256_movemask_pd`.
//!
//! Because a match mask is position-exact (bit `i` set iff lane `i` equals
//! the needle), every policy's semantics survive the translation: FIFO's
//! per-list windows test `mask & window`, LRU's depth is
//! `mask.trailing_zeros()`, and PLRU/SLRU's "first match or first invalid"
//! falls out of masking the region against the needle *and* the sentinel
//! ([`lane_scan`]).
//!
//! # Dispatch
//!
//! [`KernelBackend::active`] detects the widest usable backend **once per
//! process** (`OnceLock`): compiled out unless the `simd` cargo feature is
//! on and the target is `x86_64`, overridden by `DEW_FORCE_SCALAR=1` in the
//! environment, and downgraded for the rest of the process if the
//! [`crate::kernel::selftest`] differential check ever disagrees with the
//! scalar oracle. Kernels capture the backend at construction and dispatch
//! their *batch* loop (`run_blocks`), not each scan: the batch driver is
//! compiled once per backend under `#[target_feature]`, so the
//! `#[inline(always)]` scan below it inlines into feature-enabled codegen
//! and costs no per-scan call.
//!
//! # Safety
//!
//! This module is the only place `dew-core` touches `core::arch` (the crate
//! otherwise forbids unsafe code; with the `simd` feature it is demoted to
//! `deny` and allowed here and in the kernels' `#[target_feature]` batch
//! wrappers). The AVX2 intrinsics are only reachable through
//! [`KernelBackend::Avx2`], which [`KernelBackend::active`] and
//! [`KernelBackend::is_available`] hand out only after
//! `is_x86_feature_detected!("avx2")` succeeds; the SSE2 path is
//! unconditionally sound on `x86_64` (baseline ISA). The unaligned-load
//! intrinsics read only in-bounds lanes: full vectors while
//! `i + LANES <= region.len()`, then a scalar tail.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which tag-scan implementation a kernel runs. See the module docs for the
/// dispatch rules; [`KernelBackend::active`] is the process-wide selection
/// every kernel captures at construction, and
/// [`crate::SweepOutcome::kernel_backend`] reports it per sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelBackend {
    /// The branchless SWAR u64 loop — always available, and the oracle the
    /// SIMD paths are property-tested against.
    Scalar,
    /// Two tags per step through `core::arch` SSE2 intrinsics (`x86_64`
    /// baseline; requires the `simd` cargo feature).
    Sse2,
    /// Four tags per step through `core::arch` AVX2 intrinsics (runtime
    /// detected; requires the `simd` cargo feature).
    Avx2,
}

/// Set when the startup selftest caught a divergence: every later
/// [`KernelBackend::active`] answers `Scalar`, so freshly built kernels
/// degrade to the oracle instead of trusting a miscompiled or misdetected
/// SIMD path.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

impl KernelBackend {
    /// Stable lowercase name (`scalar` / `sse2` / `avx2`), as printed by
    /// `dew sweep` and recorded in bench JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Sse2 => "sse2",
            KernelBackend::Avx2 => "avx2",
        }
    }

    /// The widest backend this build *and* this machine support, detected
    /// once per process. `DEW_FORCE_SCALAR=1` (any non-empty value other
    /// than `0`) pins it to `Scalar`; a failed [`crate::kernel::selftest`]
    /// downgrades it to `Scalar` for the rest of the process.
    #[must_use]
    pub fn active() -> KernelBackend {
        static ACTIVE: OnceLock<KernelBackend> = OnceLock::new();
        if FORCE_SCALAR.load(Ordering::Relaxed) {
            return KernelBackend::Scalar;
        }
        *ACTIVE.get_or_init(Self::detect)
    }

    /// `true` when this backend can run on this build and machine.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            KernelBackend::Scalar => true,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => true,
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            _ => false,
        }
    }

    fn detect() -> KernelBackend {
        let forced =
            std::env::var_os("DEW_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != *"0");
        if forced {
            return KernelBackend::Scalar;
        }
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return KernelBackend::Avx2;
            }
            return KernelBackend::Sse2;
        }
        #[allow(unreachable_code)]
        KernelBackend::Scalar
    }
}

impl fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Downgrades every subsequent [`KernelBackend::active`] call to `Scalar`.
/// Called by [`crate::kernel::selftest`] when a differential check fails.
pub(crate) fn force_scalar_globally() {
    FORCE_SCALAR.store(true, Ordering::Relaxed);
}

/// One scan backend as a zero-sized strategy type: kernels monomorphise
/// their batch loop over this, so the `#[inline(always)]` mask computation
/// inlines into each backend's `#[target_feature]` driver.
pub(crate) trait TagScan: Copy {
    /// Position-exact match mask: bit `i` is set iff `region[i] == needle`.
    /// `region.len()` must not exceed 64.
    fn match_mask(self, region: &[u64], needle: u64) -> u64;
}

/// Branchless scalar equality bit: `1` iff `a == b`, computed with the SWAR
/// zero test on the XOR (no `setcc` needed even without vector units).
#[inline(always)]
fn eq_bit(a: u64, b: u64) -> u64 {
    let x = a ^ b;
    (!x & x.wrapping_sub(1)) >> 63
}

/// The scalar oracle. See [`TagScan`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScalarScan;

impl TagScan for ScalarScan {
    #[inline(always)]
    fn match_mask(self, region: &[u64], needle: u64) -> u64 {
        debug_assert!(region.len() <= 64);
        let mut mask = 0u64;
        for (i, &tag) in region.iter().enumerate() {
            mask |= eq_bit(tag, needle) << i;
        }
        mask
    }
}

/// The SSE2 backend (x86_64 baseline). See [`TagScan`] and the module docs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sse2Scan;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl TagScan for Sse2Scan {
    #[inline(always)]
    #[allow(unsafe_code)]
    fn match_mask(self, region: &[u64], needle: u64) -> u64 {
        debug_assert!(region.len() <= 64);
        use core::arch::x86_64::{
            _mm_and_si128, _mm_castsi128_pd, _mm_cmpeq_epi32, _mm_loadu_si128, _mm_movemask_pd,
            _mm_set1_epi64x, _mm_shuffle_epi32,
        };
        let len = region.len();
        let mut mask = 0u64;
        let mut i = 0usize;
        // SAFETY: SSE2 is baseline on x86_64; the unaligned load reads lanes
        // `i..i+2`, in bounds by the loop condition.
        unsafe {
            let n = _mm_set1_epi64x(needle as i64);
            while i + 2 <= len {
                let v = _mm_loadu_si128(region.as_ptr().add(i).cast());
                // Plain SSE2 has no 64-bit compare: a u64 lane is equal iff
                // both of its 32-bit halves compare equal, so AND the 32-bit
                // compare with its half-swapped self (0xB1 swaps adjacent
                // 32-bit lanes) before taking the two 64-bit sign bits.
                let eq32 = _mm_cmpeq_epi32(v, n);
                let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32::<0b1011_0001>(eq32));
                mask |= (_mm_movemask_pd(_mm_castsi128_pd(eq64)) as u64) << i;
                i += 2;
            }
        }
        if i < len {
            mask |= eq_bit(region[i], needle) << i;
        }
        mask
    }
}

/// The AVX2 backend (runtime detected). See [`TagScan`] and the module docs.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Debug, Clone, Copy)]
pub(crate) struct Avx2Scan;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl TagScan for Avx2Scan {
    #[inline(always)]
    #[allow(unsafe_code)]
    fn match_mask(self, region: &[u64], needle: u64) -> u64 {
        debug_assert!(region.len() <= 64);
        debug_assert!(KernelBackend::Avx2.is_available());
        use core::arch::x86_64::{
            _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
            _mm256_set1_epi64x,
        };
        let len = region.len();
        let mut mask = 0u64;
        let mut i = 0usize;
        // SAFETY: this strategy is only constructed after
        // `is_x86_feature_detected!("avx2")` succeeded (and the kernels'
        // batch drivers carry `#[target_feature(enable = "avx2")]`, so the
        // intrinsics inline there); the unaligned load reads lanes
        // `i..i+4`, in bounds by the loop condition.
        unsafe {
            let n = _mm256_set1_epi64x(needle as i64);
            while i + 4 <= len {
                let v = _mm256_loadu_si256(region.as_ptr().add(i).cast());
                let eq = _mm256_cmpeq_epi64(v, n);
                mask |= ((_mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32) as u64) << i;
                i += 4;
            }
        }
        while i < len {
            mask |= eq_bit(region[i], needle) << i;
            i += 1;
        }
        mask
    }
}

/// Match mask over a region of any length, windowed in 64-lane pieces:
/// the first window with a match decides (callers only need the first
/// position). Returns the global position of the first matching lane.
#[inline(always)]
pub(crate) fn first_match<S: TagScan>(scan: S, region: &[u64], needle: u64) -> Option<usize> {
    let mut base = 0usize;
    for window in region.chunks(64) {
        let m = scan.match_mask(window, needle);
        if m != 0 {
            return Some(base + m.trailing_zeros() as usize);
        }
        base += window.len();
    }
    None
}

/// Outcome of [`lane_scan`]: the first matching lane, or the valid-prefix
/// length when the needle is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LaneScan {
    /// The needle is resident at this index (always inside the valid
    /// prefix: sentinels never equal a real block number).
    Hit(usize),
    /// The needle is absent; `valid_len` is the index of the first sentinel
    /// lane (== `region.len()` when the lane is full).
    Miss {
        /// Length of the valid prefix.
        valid_len: usize,
    },
}

/// The PLRU/SLRU scan — first match or first sentinel, whichever comes
/// first — as two masks: lanes equal to `needle` and lanes equal to
/// `sentinel`. Bit-identical to the sequential "break at sentinel, stop at
/// match" loop because the first set bit of the combined mask is exactly
/// where that loop stops.
#[inline(always)]
pub(crate) fn lane_scan<S: TagScan>(
    scan: S,
    region: &[u64],
    needle: u64,
    sentinel: u64,
) -> LaneScan {
    let mut base = 0usize;
    for window in region.chunks(64) {
        let hits = scan.match_mask(window, needle);
        let invalid = scan.match_mask(window, sentinel);
        let combined = hits | invalid;
        if combined != 0 {
            let t = combined.trailing_zeros() as usize;
            if (hits >> t) & 1 == 1 {
                return LaneScan::Hit(base + t);
            }
            return LaneScan::Miss {
                valid_len: base + t,
            };
        }
        base += window.len();
    }
    LaneScan::Miss {
        valid_len: region.len(),
    }
}

/// How many requests ahead of the batch cursor the fused drivers prefetch
/// the deepest level's lanes — far enough to cover a memory round trip at
/// the kernel's per-request cost, near enough that the lines are still
/// resident when the cursor arrives.
pub(crate) const PF_DIST: usize = 8;

/// Byte alignment of every way-tag lane: one cache line, so a node's scan
/// region starts at a line boundary and the wide loads split across as few
/// lines as possible.
pub(crate) const LANE_ALIGN: usize = 64;
const LANE_PAD: usize = LANE_ALIGN / std::mem::size_of::<u64>() - 1;

/// A `u64` lane over-allocated by [`LANE_PAD`] words and offset so the
/// logical slice starts on a [`LANE_ALIGN`]-byte boundary. Alignment is
/// best-effort (correctness never depends on it — `align_offset` is allowed
/// to fail); everything else behaves like the `Vec<u64>` it replaces, via
/// `Deref`.
#[derive(Debug)]
pub(crate) struct TagLane {
    buf: Vec<u64>,
    off: usize,
    len: usize,
}

impl TagLane {
    /// A lane of `len` words, every word `fill`, aligned to [`LANE_ALIGN`].
    pub(crate) fn filled(len: usize, fill: u64) -> TagLane {
        let buf = vec![fill; len + LANE_PAD];
        let off = buf.as_ptr().align_offset(LANE_ALIGN);
        let off = if off > LANE_PAD { 0 } else { off };
        TagLane { buf, off, len }
    }
}

impl std::ops::Deref for TagLane {
    type Target = [u64];
    #[inline(always)]
    fn deref(&self) -> &[u64] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl std::ops::DerefMut for TagLane {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.off..self.off + self.len]
    }
}

impl Clone for TagLane {
    fn clone(&self) -> TagLane {
        let mut lane = TagLane::filled(self.len, 0);
        lane.copy_from_slice(self);
        lane
    }
}

impl<'a> IntoIterator for &'a TagLane {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &'a mut TagLane {
    type Item = &'a mut u64;
    type IntoIter = std::slice::IterMut<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

/// Software prefetch of `lane[idx]` into L1 (no-op off `x86_64`, without
/// the `simd` feature, or out of bounds — the bounds check keeps the read
/// address inside the allocation, which also keeps Miri happy).
#[inline(always)]
#[allow(unused_variables)]
pub(crate) fn prefetch_read<T>(lane: &[T], idx: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    if idx < lane.len() {
        // SAFETY: in bounds by the check above; prefetch performs no
        // architecturally visible memory access.
        #[allow(unsafe_code)]
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(lane.as_ptr().add(idx).cast());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<KernelBackend> {
        let mut b = vec![KernelBackend::Scalar];
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            b.push(KernelBackend::Sse2);
            if KernelBackend::Avx2.is_available() {
                b.push(KernelBackend::Avx2);
            }
        }
        b
    }

    fn mask_via(backend: KernelBackend, region: &[u64], needle: u64) -> u64 {
        match backend {
            KernelBackend::Scalar => ScalarScan.match_mask(region, needle),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => Sse2Scan.match_mask(region, needle),
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => Avx2Scan.match_mask(region, needle),
            #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
            _ => unreachable!("backend unavailable in this build"),
        }
    }

    #[test]
    fn every_backend_masks_every_length_and_position_identically() {
        for backend in backends() {
            for len in 0..=64usize {
                let mut region = vec![0xDEAD_BEEFu64; len];
                assert_eq!(mask_via(backend, &region, 7), 0, "{backend} len={len}");
                for pos in 0..len {
                    region[pos] = 7;
                    let expected = 1u64 << pos;
                    assert_eq!(
                        mask_via(backend, &region, 7),
                        expected,
                        "{backend} len={len} pos={pos}"
                    );
                    region[pos] = 0xDEAD_BEEF;
                }
            }
        }
    }

    #[test]
    fn masks_catch_high_bit_and_half_word_aliases() {
        // Values whose 32-bit halves collide pairwise: the SSE2 half-compare
        // must not report a false positive.
        let region = [
            0x0000_0001_0000_0002u64,
            0x0000_0001_0000_0003,
            0x0000_0004_0000_0002,
            u64::MAX - 1,
            u64::MAX,
        ];
        for backend in backends() {
            assert_eq!(mask_via(backend, &region, 0x0000_0001_0000_0002), 1);
            assert_eq!(mask_via(backend, &region, 0x0000_0001_0000_0003), 2);
            assert_eq!(mask_via(backend, &region, 0x0000_0004_0000_0002), 4);
            assert_eq!(mask_via(backend, &region, u64::MAX), 16);
            assert_eq!(mask_via(backend, &region, 0x0000_0002_0000_0001), 0);
        }
    }

    #[test]
    fn lane_scan_matches_sequential_semantics() {
        const S: u64 = u64::MAX;
        let cases: Vec<(Vec<u64>, u64, LaneScan)> = vec![
            (vec![], 1, LaneScan::Miss { valid_len: 0 }),
            (vec![S, S], 1, LaneScan::Miss { valid_len: 0 }),
            (vec![2, 1, S], 1, LaneScan::Hit(1)),
            (vec![2, 3, S], 1, LaneScan::Miss { valid_len: 2 }),
            (vec![2, 3, 4], 1, LaneScan::Miss { valid_len: 3 }),
            (vec![1, S, S], 1, LaneScan::Hit(0)),
        ];
        for (region, needle, expected) in &cases {
            assert_eq!(
                lane_scan(ScalarScan, region, *needle, S),
                *expected,
                "region={region:?}"
            );
        }
        // A long lane exercises the windowing.
        let mut long = vec![9u64; 100];
        long[97] = 1;
        assert_eq!(lane_scan(ScalarScan, &long, 1, S), LaneScan::Hit(97));
        assert_eq!(first_match(ScalarScan, &long, 1), Some(97));
        assert_eq!(first_match(ScalarScan, &long, 8), None);
    }

    #[test]
    fn tag_lane_is_aligned_and_behaves_like_a_vec() {
        for len in [0usize, 1, 7, 14, 16, 1000] {
            let mut lane = TagLane::filled(len, u64::MAX);
            assert_eq!(lane.len(), len);
            assert!(lane.iter().all(|&v| v == u64::MAX));
            if len > 0 {
                assert_eq!(
                    lane.as_ptr() as usize % LANE_ALIGN,
                    0,
                    "lane base must sit on a cache line"
                );
                lane[len - 1] = 42;
            }
            let clone = lane.clone();
            assert_eq!(&*clone, &*lane);
            if len > 0 {
                assert_eq!(clone.as_ptr() as usize % LANE_ALIGN, 0);
            }
        }
    }

    #[test]
    fn active_backend_is_available_and_stable() {
        let a = KernelBackend::active();
        assert!(a.is_available());
        assert_eq!(KernelBackend::active(), a, "cached per process");
        assert!(KernelBackend::Scalar.is_available());
        assert_eq!(a.name().to_string(), format!("{a}"));
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let lane = vec![1u64; 8];
        prefetch_read(&lane, 0);
        prefetch_read(&lane, 7);
        prefetch_read(&lane, 8); // out of bounds: no-op
        prefetch_read::<u64>(&[], 0);
    }
}
