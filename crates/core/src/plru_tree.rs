//! Single-pass multi-configuration **tree-PLRU** simulation on the fused
//! arena: the policy real embedded L1s ship, running under the same
//! one-traversal-per-block-size contract as [`crate::MultiAssocTree`] (FIFO)
//! and [`crate::lru_tree::LruTreeSimulator`] (LRU).
//!
//! # A policy is a lane layout plus an update rule
//!
//! Tree-PLRU has neither FIFO's "blocks never move" invariant in a form that
//! admits intersection links, nor LRU's stack property — a PLRU hit *mutates*
//! per-set state (the direction bits), and a hit at associativity `A` says
//! nothing exact about associativity `2A`. So the PLRU lane layout is the
//! honest one: per `(node, associativity)` lane, a way-tag region plus one
//! word of direction bits, all updated in the same shared walk. What *does*
//! carry over from the paper's machinery:
//!
//! * the **MRA lane** is policy-agnostic (Property 2's precondition — the
//!   most recently accessed block of a set is resident at every
//!   associativity — holds under any policy), so the direct-mapped results
//!   and the per-level hit short-circuit are shared. The early *termination*
//!   is not: stopping the walk would leave direction bits stale below, so
//!   like LRU the walk always visits every level ([`crate::DewOptions::validate`]);
//! * a per-lane **MRA way pointer** (the wave-pointer idea, Property 3,
//!   re-aimed): PLRU never moves a resident block between ways, so the way
//!   the MRA block occupied last time is where it still is — an MRA match
//!   re-touches the direction bits without any tag search;
//! * **duplicate elision** stays sound: touching the same way twice is
//!   idempotent on the direction bits.
//!
//! Within one lane the update rule is exactly the reference semantics of
//! `dew_cachesim`'s set (`crates/cachesim/src/set.rs`): victims follow the
//! direction bits root-to-leaf, touches point every bit on the way's path
//! away from it, and invalid ways fill in physical order first.
//!
//! # Examples
//!
//! ```
//! use dew_core::plru_tree::{PlruTreeOptions, PlruTreeSimulator};
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Sets 1..=8, associativities 1, 2 and 4, 4-byte blocks.
//! let mut sim = PlruTreeSimulator::new(2, 0, 3, 4, PlruTreeOptions::default())?;
//! for i in 0..100u64 {
//!     sim.step((i % 40) * 4);
//! }
//! assert_eq!(sim.assoc_list(), &[1, 2, 4]);
//! assert!(sim.results().misses(8, 4).is_some());
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::INVALID_TAG;
use crate::results::{AllAssocResults, LevelResult, PassResults};
use crate::simd::{
    lane_scan, prefetch_read, KernelBackend, LaneScan, ScalarScan, TagLane, TagScan, PF_DIST,
};
use crate::space::{DewError, PassConfig};

/// Snapshot magic of the arena tree-PLRU simulator.
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"DEWP";
/// Snapshot format version of the arena tree-PLRU simulator.
const SNAP_VERSION: u8 = 1;

/// Widest PLRU lane supported: the direction bits of one lane live in a
/// single `u64` heap (matching `dew_cachesim`'s `MAX_PLRU_ASSOC`).
pub const MAX_PLRU_ASSOC: u32 = 64;

/// Behaviour toggles of the tree-PLRU simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlruTreeOptions {
    /// CRCB-style elision: a request to the same block as the immediately
    /// preceding request hits at depth 0 everywhere, and re-touching the same
    /// way is idempotent on the direction bits, so the request can be skipped
    /// whole. Defaults to on.
    pub duplicate_elision: bool,
}

impl Default for PlruTreeOptions {
    fn default() -> Self {
        PlruTreeOptions {
            duplicate_elision: true,
        }
    }
}

/// Work counters of the tree-PLRU simulator (instrumented kernel only; the
/// fast kernel maintains just the request-level tallies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlruTreeCounters {
    /// Requests simulated (skipped duplicates included).
    pub accesses: u64,
    /// Tree nodes visited.
    pub node_evaluations: u64,
    /// Evaluations settled by the MRA comparison (a hit in every lane; the
    /// walk continues — unlike FIFO there is no early termination — but no
    /// lane needs a tag search, only a way-pointer re-touch).
    pub mra_hits: u64,
    /// Requests elided as consecutive duplicates.
    pub duplicate_skips: u64,
    /// Tag comparisons performed (the MRA comparison of each node evaluation
    /// plus the per-lane searches below it).
    pub tag_comparisons: u64,
}

impl fmt::Display for PlruTreeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} evaluations, {} MRA hits, {} duplicate skips, {} comparisons",
            self.accesses,
            self.node_evaluations,
            self.mra_hits,
            self.duplicate_skips,
            self.tag_comparisons
        )
    }
}

/// The arena: flat lanes over all forest levels concatenated. Node `i`'s
/// lane `k` (associativity `lanes[k]`) occupies
/// `tags[i * stride + lane_off[k] ..][.. lanes[k]]`; scalar per-`(node,
/// lane)` state lives in dense `num_lanes`-strided vectors.
#[derive(Debug, Clone)]
struct PlruArena {
    /// Dense per-node MRA tags: the direct-mapped contents and the shared
    /// hit short-circuit, as in every fused kernel.
    mra: Vec<u64>,
    /// Way-tag regions, cache-line aligned ([`TagLane`]), invalid ways
    /// holding the sentinel. Ways fill in physical order, so valid tags are
    /// always a prefix of each lane.
    tags: TagLane,
    /// Direction bits per `(node, lane)`, heap-indexed with the root at
    /// bit 1 (the reference layout of `dew_cachesim`'s set).
    bits: Vec<u64>,
    /// Way index of the MRA block per `(node, lane)`: resident blocks never
    /// move between ways, so an MRA match re-touches this way directly.
    mra_way: Vec<u32>,
    /// Node-index base per level plus a final total.
    node_off: Vec<usize>,
    /// `(1 << set_bits) - 1` per level.
    set_mask: Vec<u64>,
    /// Misses per `(level, lane)`, level-major.
    misses: Vec<u64>,
    /// Direct-mapped misses per level (from the shared MRA comparisons).
    dm_misses: Vec<u64>,
}

impl PlruArena {
    fn new(pass: &PassConfig, stride: usize, num_lanes: usize) -> Self {
        let mut node_off = Vec::with_capacity(pass.num_levels() as usize + 1);
        let mut set_mask = Vec::with_capacity(pass.num_levels() as usize);
        let mut total = 0usize;
        for set_bits in pass.min_set_bits()..=pass.max_set_bits() {
            node_off.push(total);
            set_mask.push((1u64 << set_bits) - 1);
            total += 1usize << set_bits;
        }
        node_off.push(total);
        let num_levels = pass.num_levels() as usize;
        PlruArena {
            mra: vec![INVALID_TAG; total],
            tags: TagLane::filled(total * stride, INVALID_TAG),
            bits: vec![0; total * num_lanes],
            mra_way: vec![0; total * num_lanes],
            node_off,
            set_mask,
            // `max(1)`: an assoc-1-only forest still iterates its levels
            // through `chunks_exact_mut`, which needs a nonzero stride.
            misses: vec![0; num_levels * num_lanes.max(1)],
            dm_misses: vec![0; num_levels],
        }
    }
}

/// Follows the direction bits of one lane from the root to the pseudo-LRU
/// way (`dew_cachesim`'s `plru_victim`, on an external bit word).
#[inline]
fn plru_victim(bits: u64, assoc: usize) -> usize {
    let levels = assoc.trailing_zeros();
    let mut idx = 1usize;
    for _ in 0..levels {
        let bit = (bits >> idx) & 1;
        idx = 2 * idx + bit as usize;
    }
    idx - assoc
}

/// Points every direction bit on the path to `way` *away* from it
/// (`dew_cachesim`'s `plru_touch`, on an external bit word).
#[inline]
fn plru_touch(bits: &mut u64, way: usize, assoc: usize) {
    let levels = assoc.trailing_zeros();
    let mut idx = 1usize;
    for level in (0..levels).rev() {
        let dir = (way >> level) & 1;
        if dir == 0 {
            *bits |= 1 << idx;
        } else {
            *bits &= !(1 << idx);
        }
        idx = 2 * idx + dir;
    }
}

/// Exact single-pass tree-PLRU simulator for all set counts in a range and
/// all power-of-two associativities in a range. See the module docs.
#[derive(Debug, Clone)]
pub struct PlruTreeSimulator {
    /// Geometry; `assoc()` reports the widest simulated associativity.
    pass: PassConfig,
    opts: PlruTreeOptions,
    /// Every reported associativity, ascending (includes 1 when the range
    /// starts there; associativity-1 results come from the MRA lane).
    assoc_list: Vec<u32>,
    /// Simulated lane associativities (the reported list above 1).
    lanes: Vec<u32>,
    /// Per-lane tag offset inside a node's region.
    lane_off: Vec<usize>,
    /// Tag-region entries per node (sum of the lane widths).
    stride: usize,
    arena: PlruArena,
    counters: PlruTreeCounters,
    /// Search comparisons per lane; instrumented only.
    lane_comparisons: Vec<u64>,
    /// Block of the previous request, for the CRCB-style elision.
    prev_block: u64,
    /// Whether the kernel maintains the work counters.
    instrument: bool,
    /// The tag-scan backend batched scans run on, fixed at construction
    /// ([`KernelBackend::active`]).
    backend: KernelBackend,
}

impl PlruTreeSimulator {
    /// Builds a simulator for set counts `2^min_set_bits..=2^max_set_bits`,
    /// block size `2^block_bits` bytes, and associativities
    /// `1, 2, 4, …, max_assoc`, using the fast (uninstrumented) kernel.
    ///
    /// # Errors
    ///
    /// As [`PassConfig::new`], plus [`DewError::BadAssoc`] for a
    /// non-power-of-two `max_assoc` or one above [`MAX_PLRU_ASSOC`].
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: PlruTreeOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        PlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            false,
        )
    }

    /// As [`PlruTreeSimulator::new`], but with the work counters live.
    ///
    /// # Errors
    ///
    /// As [`PlruTreeSimulator::new`].
    pub fn instrumented(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: PlruTreeOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        PlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            true,
        )
    }

    /// Full-control constructor: inclusive `log2` ranges for the set counts
    /// and the reported associativities, and a runtime kernel selection.
    /// This is the entry point the fused sweep uses for its per-block-size
    /// PLRU passes.
    ///
    /// # Errors
    ///
    /// As [`PassConfig::new`], plus [`DewError::EmptySetRange`] when the
    /// associativity range is inverted and [`DewError::BadAssoc`] when the
    /// widest lane exceeds [`MAX_PLRU_ASSOC`].
    pub fn with_instrumentation(
        block_bits: u32,
        set_bits: (u32, u32),
        assoc_bits: (u32, u32),
        opts: PlruTreeOptions,
        instrument: bool,
    ) -> Result<Self, DewError> {
        if assoc_bits.0 > assoc_bits.1 {
            return Err(DewError::EmptySetRange {
                min_set_bits: assoc_bits.0,
                max_set_bits: assoc_bits.1,
            });
        }
        if assoc_bits.1 > MAX_PLRU_ASSOC.trailing_zeros() {
            return Err(DewError::BadAssoc(
                1u32.checked_shl(assoc_bits.1).unwrap_or(u32::MAX),
            ));
        }
        let pass = PassConfig::new(block_bits, set_bits.0, set_bits.1, 1 << assoc_bits.1)?;
        let assoc_list: Vec<u32> = (assoc_bits.0..=assoc_bits.1).map(|b| 1 << b).collect();
        let lanes: Vec<u32> = (assoc_bits.0.max(1)..=assoc_bits.1)
            .map(|b| 1 << b)
            .collect();
        let mut lane_off = Vec::with_capacity(lanes.len());
        let mut stride = 0usize;
        for &w in &lanes {
            lane_off.push(stride);
            stride += w as usize;
        }
        Ok(PlruTreeSimulator {
            arena: PlruArena::new(&pass, stride.max(1), lanes.len()),
            pass,
            opts,
            assoc_list,
            lane_comparisons: if instrument {
                vec![0; lanes.len()]
            } else {
                Vec::new()
            },
            lanes,
            lane_off,
            stride,
            counters: PlruTreeCounters::default(),
            prev_block: INVALID_TAG,
            instrument,
            backend: KernelBackend::active(),
        })
    }

    /// The tag-scan backend batched scans run on (fixed at construction
    /// unless [`PlruTreeSimulator::force_scan_backend`] pins another).
    #[must_use]
    pub fn scan_backend(&self) -> KernelBackend {
        self.backend
    }

    /// Pins the scan backend (the differential harness drives the same
    /// simulator once per backend to prove them bit-identical).
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `backend` is not available on this
    /// build/machine.
    pub fn force_scan_backend(&mut self, backend: KernelBackend) -> Result<(), DewError> {
        if !backend.is_available() {
            return Err(DewError::UnsoundOptions(
                "requested scan backend is not available on this build/machine",
            ));
        }
        self.backend = backend;
        Ok(())
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The geometry of the forest (`assoc()` reports the widest lane).
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// `true` when this simulator maintains the work counters.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrument
    }

    /// The work counters.
    #[must_use]
    pub fn counters(&self) -> &PlruTreeCounters {
        &self.counters
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        self.step_block(addr >> self.pass.block_bits());
    }

    /// Simulates one request given as a pre-decoded block number.
    ///
    /// # Panics
    ///
    /// As [`PlruTreeSimulator::step`], if `block` equals the internal
    /// sentinel.
    pub fn step_block(&mut self, block: u64) {
        assert_ne!(
            block, INVALID_TAG,
            "block {block:#x} exceeds the supported range"
        );
        // Single steps always use the scalar scan: batch-level backend
        // dispatch is where the SIMD instantiations live (`crate::simd`
        // module docs), and the backends are bit-identical anyway.
        self.kernel(ScalarScan, block);
    }

    /// Simulates a batch of pre-decoded block numbers — the sweep's fused
    /// drive path.
    ///
    /// # Panics
    ///
    /// As [`PlruTreeSimulator::step`], if any block equals the sentinel.
    pub fn run_blocks(&mut self, blocks: &[u64]) {
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => {
                // SAFETY: `backend` is only `Avx2` after runtime detection
                // (`KernelBackend::is_available`).
                #[allow(unsafe_code)]
                unsafe {
                    self.run_blocks_avx2(blocks);
                }
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => self.drive(crate::simd::Sse2Scan, blocks),
            _ => self.drive(ScalarScan, blocks),
        }
    }

    /// The AVX2 compilation root of the batch loop (see `crate::simd`
    /// module docs for the dispatch rules).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn run_blocks_avx2(&mut self, blocks: &[u64]) {
        self.drive(crate::simd::Avx2Scan, blocks);
    }

    /// The batch loop: the kernel on every block, plus software prefetch of
    /// the deepest (largest, least cache-resident) level's MRA word and
    /// way-tag region [`PF_DIST`] requests ahead.
    #[inline(always)]
    fn drive<S: TagScan>(&mut self, scan: S, blocks: &[u64]) {
        let deepest = self.arena.set_mask.len() - 1;
        let d_off = self.arena.node_off[deepest];
        let d_mask = self.arena.set_mask[deepest];
        let stride = self.stride.max(1);
        for (i, &b) in blocks.iter().enumerate() {
            assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
            if let Some(&ahead) = blocks.get(i + PF_DIST) {
                let node = d_off + (ahead & d_mask) as usize;
                prefetch_read(&self.arena.mra, node);
                prefetch_read(&self.arena.tags, node * stride);
            }
            self.kernel(scan, b);
        }
    }

    /// The kernel. Per level: one MRA comparison settles the direct-mapped
    /// result; on a match every lane re-touches its MRA way pointer (no
    /// searches, no misses anywhere — but no early termination either, the
    /// direction bits of deeper levels still need the touch). On a mismatch
    /// each lane searches its valid prefix, touching the hit way or
    /// inserting at the first invalid way / the direction-bit victim.
    ///
    /// `S` is the tag-scan backend the wide compares run on ([`TagScan`]).
    fn kernel<S: TagScan>(&mut self, scan: S, block: u64) {
        self.counters.accesses += 1;
        if self.opts.duplicate_elision {
            if block == self.prev_block {
                // The block is the MRA entry of every set on its path, and
                // re-touching the same way is idempotent on the bits.
                self.counters.duplicate_skips += 1;
                return;
            }
            self.prev_block = block;
        }
        let nk = self.lanes.len();
        let stride = self.stride.max(1);
        let a = &mut self.arena;
        for li in 0..a.set_mask.len() {
            let node = a.node_off[li] + (block & a.set_mask[li]) as usize;
            if self.instrument {
                self.counters.node_evaluations += 1;
                self.counters.tag_comparisons += 1;
            }
            if a.mra[node] == block {
                if self.instrument {
                    self.counters.mra_hits += 1;
                }
                // Hit in every lane; the way pointer spares the search, the
                // touch is mandatory.
                for (k, &w) in self.lanes.iter().enumerate() {
                    plru_touch(
                        &mut a.bits[node * nk + k],
                        a.mra_way[node * nk + k] as usize,
                        w as usize,
                    );
                }
                continue;
            }
            a.dm_misses[li] += 1;
            a.mra[node] = block;
            let region = &mut a.tags[node * stride..(node + 1) * stride];
            for (k, (&w, &off)) in self.lanes.iter().zip(self.lane_off.iter()).enumerate() {
                let w = w as usize;
                let lane = &mut region[off..off + w];
                // One wide scan finds the block or, failing that, the first
                // invalid way (valid tags are a prefix: ways fill in
                // physical order and evictions overwrite in place). The
                // comparison tallies are derived arithmetically — a hit at
                // depth `i` would have inspected `i + 1` valid tags, a miss
                // the whole valid prefix — so the instrumented counters stay
                // bit-identical to the sequential scalar scan's.
                let (hit, first_invalid) = match lane_scan(scan, lane, block, INVALID_TAG) {
                    LaneScan::Hit(i) => (Some(i), w),
                    LaneScan::Miss { valid_len } => (None, valid_len),
                };
                if self.instrument {
                    let spent = match hit {
                        Some(i) => i as u64 + 1,
                        None => first_invalid as u64,
                    };
                    self.lane_comparisons[k] += spent;
                    self.counters.tag_comparisons += spent;
                }
                let bits = &mut a.bits[node * nk + k];
                let way = match hit {
                    Some(i) => i,
                    None => {
                        a.misses[li * nk.max(1) + k] += 1;
                        let victim = if first_invalid < w {
                            first_invalid
                        } else {
                            plru_victim(*bits, w)
                        };
                        lane[victim] = block;
                        victim
                    }
                };
                plru_touch(bits, way, w);
                a.mra_way[node * nk + k] = way as u32;
            }
        }
    }

    /// Snapshot of the per-configuration miss counts (associativity 1, when
    /// simulated, comes from the shared direct-mapped accounting).
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        let include_dm = self.assoc_list.first() == Some(&1);
        let nk = self.lanes.len();
        let stride = nk.max(1);
        let misses = (0..self.arena.dm_misses.len())
            .map(|li| {
                let mut row = Vec::with_capacity(self.assoc_list.len());
                if include_dm {
                    row.push(self.arena.dm_misses[li]);
                }
                row.extend_from_slice(&self.arena.misses[li * stride..li * stride + nk]);
                row
            })
            .collect();
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            misses,
        )
    }

    /// Fans this pass out into the [`PassResults`] a standalone
    /// `(block size, assoc)` pass would have produced, or `None` when
    /// `assoc` was not simulated — the sweep's per-pass result shape, as in
    /// every fused kernel.
    #[must_use]
    pub fn pass_results(&self, assoc: u32) -> Option<PassResults> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        let pass = PassConfig::new(
            self.pass.block_bits(),
            self.pass.min_set_bits(),
            self.pass.max_set_bits(),
            assoc,
        )
        .ok()?;
        let stride = self.lanes.len().max(1);
        let k = self.lanes.iter().position(|&a| a == assoc);
        let levels = self
            .arena
            .dm_misses
            .iter()
            .enumerate()
            .map(|(li, &dm)| {
                let misses = match k {
                    Some(k) => self.arena.misses[li * stride + k],
                    None => dm, // assoc 1: the MRA lane is the simulation
                };
                LevelResult::new(self.pass.min_set_bits() + li as u32, misses, dm)
            })
            .collect();
        Some(PassResults::new(pass, self.counters.accesses, levels))
    }

    /// The [`DewCounters`] view a standalone pass at `assoc` is entitled to
    /// report. The walk is shared, so the evaluation-level quantities are
    /// shared verbatim; an MRA hit settles the node without a search (the
    /// way pointer re-touch is free of tag comparisons) and maps onto the
    /// `mra_stops` bucket, every other evaluation is a search in this lane.
    /// Per-lane search comparisons are tracked separately so each view
    /// reports its own lane's work. Returns `None` when `assoc` was not
    /// simulated.
    #[must_use]
    pub fn pass_counters(&self, assoc: u32) -> Option<DewCounters> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        if !self.instrument {
            return Some(DewCounters {
                accesses: self.counters.accesses,
                duplicate_skips: self.counters.duplicate_skips,
                ..DewCounters::new()
            });
        }
        let searches = self.counters.node_evaluations - self.counters.mra_hits;
        let search_comparisons = match self.lanes.iter().position(|&a| a == assoc) {
            Some(k) => self.lane_comparisons[k],
            // Associativity 1: the MRA mismatch *is* the decision, mirroring
            // the FIFO fan-out's direct-mapped accounting.
            None => searches,
        };
        Some(DewCounters {
            accesses: self.counters.accesses,
            duplicate_skips: self.counters.duplicate_skips,
            node_evaluations: self.counters.node_evaluations,
            mra_stops: self.counters.mra_hits,
            searches,
            search_comparisons,
            tag_comparisons: self.counters.node_evaluations + search_comparisons,
            ..DewCounters::new()
        })
    }

    /// Actual heap footprint of the arena's lanes in bytes (excludes
    /// counters and scratch).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let a = &self.arena;
        a.mra.len() * 8 + a.tags.len() * 8 + a.bits.len() * 8 + a.mra_way.len() * 4
    }

    /// Serialises the complete arena state to bytes under its own magic
    /// (`DEWP`). The sharded sweep's snapshot-handoff mode and the
    /// checkpoint sidecars round-trip these buffers.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&SNAP_MAGIC);
        out.push(SNAP_VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.assoc_list[0].trailing_zeros());
        put_u32(&mut out, self.pass.assoc().trailing_zeros());
        let flags = u8::from(self.opts.duplicate_elision) | u8::from(self.instrument) << 1;
        out.push(flags);
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_hits,
            c.duplicate_skips,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        for &v in &self.lane_comparisons {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.prev_block);
        let a = &self.arena;
        for &v in a
            .misses
            .iter()
            .chain(&a.dm_misses)
            .chain(&a.mra)
            .chain(&a.tags)
            .chain(&a.bits)
        {
            put_u64(&mut out, v);
        }
        for &v in &a.mra_way {
            put_u32(&mut out, v);
        }
        out
    }

    /// Restores a simulator from [`PlruTreeSimulator::to_snapshot`] output;
    /// continuing it is bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers; a valid buffer of one of the *other*
    /// policies' kernels reports [`crate::snapshot::SnapshotError::PolicyMismatch`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError};
        let mut cur = Cursor::new(bytes);
        let magic = cur.bytes(4)?;
        if magic != SNAP_MAGIC {
            for sibling in [
                crate::multi_assoc::SNAP_MAGIC,
                crate::lru_tree::SNAP_MAGIC,
                crate::slru_tree::SNAP_MAGIC,
            ] {
                if magic == sibling {
                    return Err(SnapshotError::PolicyMismatch {
                        expected: SNAP_MAGIC,
                        found: sibling,
                    });
                }
            }
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits) = (cur.u32()?, cur.u32()?, cur.u32()?);
        let (assoc_lo_bits, assoc_hi_bits) = (cur.u32()?, cur.u32()?);
        let flags = cur.u8()?;
        let opts = PlruTreeOptions {
            duplicate_elision: flags & 1 != 0,
        };
        let instrument = flags & 2 != 0;
        let mut sim = PlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (assoc_lo_bits, assoc_hi_bits),
            opts,
            instrument,
        )
        .map_err(|_| SnapshotError::Corrupt("invalid arena geometry"))?;
        let c = &mut sim.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.mra_hits = cur.u64()?;
        c.duplicate_skips = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        for v in &mut sim.lane_comparisons {
            *v = cur.u64()?;
        }
        sim.prev_block = cur.u64()?;
        let a = &mut sim.arena;
        for v in a
            .misses
            .iter_mut()
            .chain(&mut a.dm_misses)
            .chain(&mut a.mra)
            .chain(&mut a.tags)
            .chain(&mut a.bits)
        {
            *v = cur.u64()?;
        }
        let nk = sim.lanes.len();
        for (i, v) in a.mra_way.iter_mut().enumerate() {
            *v = cur.u32()?;
            if nk > 0 && *v >= sim.lanes[i % nk] {
                return Err(SnapshotError::Corrupt("way pointer out of range"));
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 80) * 4
                }
            })
            .collect()
    }

    fn oracle(sets: u32, assoc: u32, block: u32, addrs: &[u64]) -> u64 {
        let records: Vec<Record> = addrs.iter().map(|&a| Record::read(a)).collect();
        simulate_trace(
            CacheConfig::new(sets, assoc, block, Replacement::Plru).expect("valid"),
            &records,
        )
        .misses()
    }

    #[test]
    fn matches_reference_plru_for_all_configs() {
        let a = addrs(3000, 0x5EED_6001);
        for instrument in [false, true] {
            let mut sim = PlruTreeSimulator::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                PlruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let r = sim.results();
            for set_bits in 0..=5u32 {
                for assoc in [1u32, 2, 4, 8] {
                    let sets = 1 << set_bits;
                    assert_eq!(
                        r.misses(sets, assoc),
                        Some(oracle(sets, assoc, 4, &a)),
                        "sets={sets} assoc={assoc} instrument={instrument}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_elision_does_not_change_results() {
        let mut a = addrs(1500, 0x5EED_6002);
        // Salt the trace with consecutive duplicates.
        let mut salted = Vec::with_capacity(a.len() * 2);
        for (i, &x) in a.iter().enumerate() {
            salted.push(x);
            if i % 3 == 0 {
                salted.push(x);
            }
        }
        a = salted;
        let run = |elide: bool| {
            let mut sim = PlruTreeSimulator::new(
                2,
                0,
                4,
                8,
                PlruTreeOptions {
                    duplicate_elision: elide,
                },
            )
            .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            sim.results()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn pass_results_fan_out_matches_all_assoc_view() {
        let a = addrs(2500, 0x5EED_6003);
        for instrument in [false, true] {
            let mut sim = PlruTreeSimulator::with_instrumentation(
                3,
                (1, 5),
                (0, 3),
                PlruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let all = sim.results();
            for &assoc in sim.assoc_list() {
                let pr = sim.pass_results(assoc).expect("simulated");
                assert_eq!(pr.pass().assoc(), assoc);
                for set_bits in 1..=5u32 {
                    let sets = 1 << set_bits;
                    assert_eq!(pr.misses(sets, assoc), all.misses(sets, assoc));
                    assert_eq!(pr.misses(sets, 1), all.misses(sets, 1));
                }
                let c = sim.pass_counters(assoc).expect("simulated");
                assert!(c.is_consistent(), "assoc={assoc}: {c}");
                assert_eq!(c.accesses, a.len() as u64);
            }
            assert!(sim.pass_results(16).is_none());
            assert!(sim.pass_counters(16).is_none());
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let a = addrs(2000, 0x5EED_6004);
        for instrument in [false, true] {
            let mut sim = PlruTreeSimulator::with_instrumentation(
                2,
                (0, 4),
                (1, 3),
                PlruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a[..1000] {
                sim.step(x);
            }
            let mut restored =
                PlruTreeSimulator::from_snapshot(&sim.to_snapshot()).expect("round trip");
            for &x in &a[1000..] {
                sim.step(x);
                restored.step(x);
            }
            assert_eq!(sim.results(), restored.results());
            assert_eq!(sim.counters(), restored.counters());
            assert_eq!(sim.to_snapshot(), restored.to_snapshot());
        }
    }

    #[test]
    fn foreign_magic_is_a_policy_mismatch() {
        use crate::snapshot::SnapshotError;
        let lru = crate::lru_tree::LruTreeSimulator::new(
            2,
            0,
            2,
            2,
            crate::lru_tree::LruTreeOptions::default(),
        )
        .expect("valid");
        match PlruTreeSimulator::from_snapshot(&lru.to_snapshot()) {
            Err(SnapshotError::PolicyMismatch { expected, found }) => {
                assert_eq!(expected, SNAP_MAGIC);
                assert_eq!(found, crate::lru_tree::SNAP_MAGIC);
            }
            other => panic!("expected PolicyMismatch, got {other:?}"),
        }
        assert!(matches!(
            PlruTreeSimulator::from_snapshot(b"JUNKrest"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wide_lanes_are_bounded() {
        assert!(matches!(
            PlruTreeSimulator::new(2, 0, 2, 128, PlruTreeOptions::default()),
            Err(DewError::BadAssoc(128))
        ));
        assert!(PlruTreeSimulator::new(2, 0, 2, 64, PlruTreeOptions::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_block_panics_in_batches() {
        let mut sim = PlruTreeSimulator::new(0, 0, 1, 2, PlruTreeOptions::default()).expect("ok");
        sim.run_blocks(&[0, 1, u64::MAX]);
    }
}
