//! The unified sweep entry point: a [`SweepRequest`] names *what* to sweep
//! (a [`ConfigSpace`]), *how* ([`DewOptions`] — policy included — thread
//! count, instrumentation) and *under which execution plan* (sharding,
//! sampling, resilience), then [`SweepRequest::run`] or
//! [`SweepRequest::run_streamed`] dispatches to the fused drivers.
//!
//! Every axis is orthogonal where soundness allows; the unsound
//! combinations are rejected up front with
//! [`DewError::UnsoundOptions`] instead of silently picking a driver:
//!
//! | plan              | sharded | sampled | instrumented | resilient |
//! |-------------------|---------|---------|--------------|-----------|
//! | sharded           |    —    |   no    |      no      | handoff¹  |
//! | sampled           |   no    |    —    |      no      |    no     |
//! | instrumented      |   no    |   no    |      —       |    no     |
//! | resilient         |handoff¹ |   no    |      no      |     —     |
//!
//! ¹ a resilient sharded sweep must use [`ShardMode::SnapshotHandoff`] —
//! the warmup-overlap estimator has no exact per-record position for a
//! checkpoint to name.
//!
//! [`SweepRequest::run_streamed`] additionally rejects sharding, sampling
//! and instrumentation: a streamed trace has no slice to shard or sample,
//! and no instrumented streaming driver exists.

use dew_trace::{Record, TraceSource};

use crate::options::{DewOptions, TreePolicy};
use crate::resilience::Resilience;
use crate::results::SweepOutcome;
use crate::space::{ConfigSpace, DewError};
use crate::sweep::{
    handoff_boundaries, run_resilient, sampled_impl, sharded_impl, streamed_impl, sweep_trace_with,
    ShardMode, ShardSpec,
};

/// A fully described sweep: configuration space × policy options × threads
/// × instrumentation × execution plan, built fluently and executed with
/// [`SweepRequest::run`] (in-memory trace) or [`SweepRequest::run_streamed`]
/// (re-openable [`TraceSource`]).
///
/// ```
/// use dew_core::{ConfigSpace, SweepRequest, TreePolicy};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// let space = ConfigSpace::new((0, 4), (2, 4), (0, 2))?;
/// let trace: Vec<Record> = (0..500u64).map(|i| Record::read((i % 97) * 4)).collect();
/// let outcome = SweepRequest::new(&space)
///     .policy(TreePolicy::Plru)
///     .threads(1)
///     .run(&trace)?;
/// assert_eq!(outcome.config_count() as u64, space.config_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepRequest<'a> {
    space: &'a ConfigSpace,
    options: DewOptions,
    threads: usize,
    instrumented: bool,
    shards: Option<ShardSpec>,
    sample: Option<(usize, usize)>,
    resilience: Option<&'a Resilience<'a>>,
}

impl<'a> SweepRequest<'a> {
    /// Starts a request over `space` with default options (FIFO policy, all
    /// optimisations on), automatic thread count, no instrumentation and
    /// the plain execution plan.
    pub fn new(space: &'a ConfigSpace) -> Self {
        SweepRequest {
            space,
            options: DewOptions::default(),
            threads: 0,
            instrumented: false,
            shards: None,
            sample: None,
            resilience: None,
        }
    }

    /// Replaces the policy options wholesale. Use this for fine-grained
    /// flag control; for the common case of "this policy with its sound
    /// defaults", [`SweepRequest::policy`] is shorter.
    #[must_use]
    pub fn options(mut self, options: DewOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects a replacement policy with its preset sound options
    /// ([`DewOptions::for_policy`]). Overwrites any earlier
    /// [`SweepRequest::options`] call.
    #[must_use]
    pub fn policy(mut self, policy: TreePolicy) -> Self {
        self.options = DewOptions::for_policy(policy);
        self
    }

    /// Worker thread count; `0` (the default) means one per available core,
    /// capped at the job count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Maintains the full [`crate::DewCounters`] breakdown per pass.
    /// Composes with neither sharding, sampling nor resilience.
    #[must_use]
    pub fn instrumented(mut self, on: bool) -> Self {
        self.instrumented = on;
        self
    }

    /// Splits the trace into contiguous intervals per `spec` (exact
    /// snapshot handoff, or the warmup-overlap estimator).
    #[must_use]
    pub fn sharded(mut self, spec: ShardSpec) -> Self {
        self.shards = Some(spec);
        self
    }

    /// Sweeps a periodic cluster sample: the leading `sample_len` records
    /// of every `period`-record window. Excludes every other plan axis.
    #[must_use]
    pub fn sampled(mut self, period: usize, sample_len: usize) -> Self {
        self.sample = Some((period, sample_len));
        self
    }

    /// Runs under the fault-tolerance contract of `res`: retry with
    /// bounded backoff, panic isolation, checkpoint/resume, graceful
    /// degradation.
    #[must_use]
    pub fn resilient(mut self, res: &'a Resilience<'a>) -> Self {
        self.resilience = Some(res);
        self
    }

    /// Rejects plan-axis combinations no driver implements soundly.
    fn check_combos(&self) -> Result<(), DewError> {
        if self.sample.is_some()
            && (self.shards.is_some() || self.instrumented || self.resilience.is_some())
        {
            return Err(DewError::UnsoundOptions(
                "sampled sweeps compose with neither sharding, instrumentation nor resilience",
            ));
        }
        if self.instrumented && (self.shards.is_some() || self.resilience.is_some()) {
            return Err(DewError::UnsoundOptions(
                "instrumented sweeps run in-memory and unsharded; drop sharding/resilience",
            ));
        }
        if self.resilience.is_some() {
            if let Some(spec) = self.shards {
                if spec.mode != ShardMode::SnapshotHandoff {
                    return Err(DewError::UnsoundOptions(
                        "resilient sharded sweeps require ShardMode::SnapshotHandoff",
                    ));
                }
            }
        }
        Ok(())
    }

    /// Executes the request over an in-memory trace.
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when the option flags are unsound for
    /// the policy, the sampling plan is malformed, or the plan axes
    /// conflict (see the module table); [`DewError::BadAssoc`] when the
    /// space exceeds a policy's lane capacity (tree-PLRU caps at
    /// [`crate::plru_tree::MAX_PLRU_ASSOC`] ways); resilient plans may
    /// also return [`DewError::Checkpoint`], [`DewError::TraceRead`] or
    /// [`DewError::WorkerPanic`] per the [`Resilience`] contract.
    pub fn run(&self, records: &[Record]) -> Result<SweepOutcome, DewError> {
        self.check_combos()?;
        if let Some((period, sample_len)) = self.sample {
            return sampled_impl(
                self.space,
                records,
                self.options,
                self.threads,
                period,
                sample_len,
            );
        }
        match (self.resilience, self.shards) {
            (Some(res), Some(spec)) => {
                let boundaries = handoff_boundaries(records.len(), spec.shards);
                run_resilient(
                    self.space,
                    &dew_trace::SliceSource(records),
                    &boundaries,
                    self.options,
                    self.threads,
                    res,
                )
            }
            (Some(res), None) => run_resilient(
                self.space,
                &dew_trace::SliceSource(records),
                &[],
                self.options,
                self.threads,
                res,
            ),
            (None, Some(spec)) => {
                sharded_impl(self.space, records, self.options, self.threads, spec)
            }
            (None, None) => sweep_trace_with(
                self.space,
                records,
                self.options,
                self.threads,
                self.instrumented,
            ),
        }
    }

    /// Executes the request over a re-openable [`TraceSource`] in bounded
    /// memory (the trace is never resident). The source is opened once per
    /// block size and must replay identically on every open.
    ///
    /// Streamed execution supports the plain and resilient plans only.
    ///
    /// # Errors
    ///
    /// As [`SweepRequest::run`], plus [`DewError::UnsoundOptions`] when the
    /// request carries sharding, sampling or instrumentation, and
    /// [`DewError::TraceRead`] when the source fails.
    pub fn run_streamed<S: TraceSource>(&self, source: &S) -> Result<SweepOutcome, DewError> {
        self.check_combos()?;
        if self.shards.is_some() || self.sample.is_some() || self.instrumented {
            return Err(DewError::UnsoundOptions(
                "streamed sweeps support the plain and resilient plans only \
                 (no sharding, sampling or instrumentation)",
            ));
        }
        match self.resilience {
            Some(res) => run_resilient(self.space, source, &[], self.options, self.threads, res),
            None => streamed_impl(self.space, source, self.options, self.threads),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::sweep::{
        sweep_trace, sweep_trace_instrumented, sweep_trace_resilient, sweep_trace_sampled,
        sweep_trace_sharded, sweep_trace_sharded_resilient, sweep_trace_streamed,
    };
    use dew_trace::SliceSource;

    fn trace(n: usize) -> Vec<Record> {
        let mut x = 0xA5A5_5A5Au64;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = if i % 7 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 88) * 4
                };
                Record::read(addr)
            })
            .collect()
    }

    #[test]
    fn outcome_records_the_active_scan_backend() {
        let space = ConfigSpace::new((0, 2), (2, 2), (0, 1)).expect("valid");
        let outcome = SweepRequest::new(&space).run(&trace(200)).expect("sweep");
        assert_eq!(outcome.kernel_backend(), crate::KernelBackend::active());
        assert!(["scalar", "sse2", "avx2"].contains(&outcome.kernel_backend().name()));
    }

    #[test]
    fn builder_matches_every_forwarder_for_every_policy() {
        let space = ConfigSpace::new((0, 3), (1, 3), (0, 2)).expect("valid");
        let records = trace(900);
        for policy in TreePolicy::ALL {
            let options = DewOptions::for_policy(policy);
            let base = SweepRequest::new(&space).options(options).threads(2);

            let plain = base.run(&records).expect("plain");
            let fwd = sweep_trace(&space, &records, options, 2).expect("fwd");
            assert_eq!(plain.sorted(), fwd.sorted(), "{policy}: plain");

            let inst = base.instrumented(true).run(&records).expect("instrumented");
            let fwd = sweep_trace_instrumented(&space, &records, options, 2).expect("fwd");
            assert_eq!(inst.sorted(), fwd.sorted(), "{policy}: instrumented");

            let spec = ShardSpec {
                shards: 3,
                mode: ShardMode::SnapshotHandoff,
            };
            let sharded = base.sharded(spec).run(&records).expect("sharded");
            let fwd = sweep_trace_sharded(&space, &records, options, 2, spec).expect("fwd");
            assert_eq!(sharded.sorted(), fwd.sorted(), "{policy}: sharded");
            assert_eq!(sharded.sorted(), plain.sorted(), "{policy}: handoff exact");

            let sampled = base.sampled(64, 16).run(&records).expect("sampled");
            let fwd = sweep_trace_sampled(&space, &records, options, 2, 64, 16).expect("fwd");
            assert_eq!(sampled.sorted(), fwd.sorted(), "{policy}: sampled");

            let res = Resilience::new();
            let resilient = base.resilient(&res).run(&records).expect("resilient");
            let fwd = sweep_trace_resilient(&space, &records, options, 2, &res).expect("fwd");
            assert_eq!(resilient.sorted(), fwd.sorted(), "{policy}: resilient");
            assert_eq!(
                resilient.sorted(),
                plain.sorted(),
                "{policy}: resilient exact"
            );

            let both = base
                .sharded(spec)
                .resilient(&res)
                .run(&records)
                .expect("both");
            let fwd =
                sweep_trace_sharded_resilient(&space, &records, options, 2, 3, &res).expect("fwd");
            assert_eq!(both.sorted(), fwd.sorted(), "{policy}: sharded resilient");

            let streamed = base.run_streamed(&SliceSource(&records)).expect("streamed");
            let fwd =
                sweep_trace_streamed(&space, &SliceSource(&records), options, 2).expect("fwd");
            assert_eq!(streamed.sorted(), fwd.sorted(), "{policy}: streamed");
            assert_eq!(
                streamed.sorted(),
                plain.sorted(),
                "{policy}: streamed exact"
            );
        }
    }

    #[test]
    fn unsound_plan_combinations_are_rejected_up_front() {
        let space = ConfigSpace::new((0, 2), (1, 2), (0, 1)).expect("valid");
        let records = trace(64);
        let res = Resilience::new();
        let handoff = ShardSpec {
            shards: 2,
            mode: ShardMode::SnapshotHandoff,
        };
        let overlap = ShardSpec {
            shards: 2,
            mode: ShardMode::WarmupOverlap { overlap: 8 },
        };
        let bad = [
            SweepRequest::new(&space).sampled(8, 4).sharded(handoff),
            SweepRequest::new(&space).sampled(8, 4).instrumented(true),
            SweepRequest::new(&space).sampled(8, 4).resilient(&res),
            SweepRequest::new(&space)
                .instrumented(true)
                .sharded(handoff),
            SweepRequest::new(&space).instrumented(true).resilient(&res),
            SweepRequest::new(&space).resilient(&res).sharded(overlap),
        ];
        for req in bad {
            assert!(
                matches!(req.run(&records), Err(DewError::UnsoundOptions(_))),
                "expected UnsoundOptions"
            );
        }
        for req in [
            SweepRequest::new(&space).sharded(handoff),
            SweepRequest::new(&space).sampled(8, 4),
            SweepRequest::new(&space).instrumented(true),
        ] {
            assert!(
                matches!(
                    req.run_streamed(&SliceSource(&records)),
                    Err(DewError::UnsoundOptions(_))
                ),
                "streamed must reject sharding/sampling/instrumentation"
            );
        }
    }

    #[test]
    fn plru_rejects_spaces_wider_than_its_lane_capacity() {
        let space = ConfigSpace::new((0, 2), (1, 2), (0, 7)).expect("valid");
        let records = trace(16);
        let err = SweepRequest::new(&space)
            .policy(TreePolicy::Plru)
            .run(&records)
            .expect_err("128-way PLRU must be rejected");
        assert!(matches!(err, DewError::BadAssoc(128)));
    }

    #[test]
    fn policy_builder_is_the_preset() {
        let space = ConfigSpace::new((0, 2), (1, 2), (0, 1)).expect("valid");
        for policy in TreePolicy::ALL {
            let req = SweepRequest::new(&space).policy(policy);
            assert_eq!(req.options, DewOptions::for_policy(policy));
        }
    }
}
