//! Work counters: the quantities behind the paper's Table 3 (tag
//! comparisons) and Table 4 (property effectiveness).
//!
//! Counter semantics (also documented in `DESIGN.md`):
//!
//! * every node evaluation performs one MRA comparison;
//! * a wave-pointer check is one additional comparison and settles the node
//!   (hit or miss) without a search;
//! * an MRE check is one additional comparison; only a *match* settles the
//!   node (as a miss);
//! * an intersection check (the fused multi-associativity extension's
//!   cross-associativity link, see [`crate::MultiAssocTree`]) is one
//!   additional comparison and settles the node (hit or miss) without a
//!   search;
//! * a search compares the requested tag against each valid way in physical
//!   order, stopping at the match.
//!
//! Every node evaluation therefore lands in exactly one bucket:
//! `mra_stops + wave_hits + wave_misses + mre_misses + intersection_hits +
//! intersection_misses + searches == node_evaluations`, an identity the
//! test-suite enforces. The intersection buckets stay zero for single-pass
//! [`crate::DewTree`]s, so the original paper identity is a special case.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Work counters accumulated by a DEW tree over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DewCounters {
    /// Requests simulated.
    pub accesses: u64,
    /// Tree nodes visited (the node that fires the MRA stop included).
    pub node_evaluations: u64,
    /// Evaluations settled by the MRA early termination (Property 2).
    pub mra_stops: u64,
    /// Evaluations settled as hits by a wave pointer (Property 3).
    pub wave_hits: u64,
    /// Evaluations settled as misses by a wave pointer (Property 3).
    pub wave_misses: u64,
    /// Evaluations settled as misses by the MRE entry (Property 4).
    pub mre_misses: u64,
    /// Evaluations settled as hits by a cross-associativity intersection
    /// link (fused multi-associativity passes only; see
    /// [`crate::MultiAssocTree`]).
    pub intersection_hits: u64,
    /// Evaluations settled as misses by a cross-associativity intersection
    /// link (fused multi-associativity passes only).
    pub intersection_misses: u64,
    /// Evaluations that fell through to a tag-list search.
    pub searches: u64,
    /// Requests skipped whole by the CRCB-style duplicate elision extension
    /// (zero unless [`crate::DewOptions::dup_elision`] is enabled).
    pub duplicate_skips: u64,
    /// Tag comparisons performed inside searches.
    pub search_comparisons: u64,
    /// Total tag comparisons: MRA + wave + MRE checks + search comparisons.
    pub tag_comparisons: u64,
}

impl DewCounters {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        DewCounters::default()
    }

    /// Evaluations settled by a wave pointer (hit or miss).
    #[must_use]
    pub fn wave_total(&self) -> u64 {
        self.wave_hits + self.wave_misses
    }

    /// Evaluations settled by a cross-associativity intersection link
    /// (hit or miss).
    #[must_use]
    pub fn intersection_total(&self) -> u64 {
        self.intersection_hits + self.intersection_misses
    }

    /// The worst-case evaluation count for a run of `self.accesses` requests
    /// over `num_levels` forest levels — Table 4's "Unoptimized evaluations"
    /// column (every request visits every level).
    #[must_use]
    pub fn unoptimized_evaluations(&self, num_levels: u32) -> u64 {
        self.accesses * u64::from(num_levels)
    }

    /// The accounting identity described in the module docs. The test-suite
    /// asserts this after every simulation.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.mra_stops
            + self.wave_hits
            + self.wave_misses
            + self.mre_misses
            + self.intersection_hits
            + self.intersection_misses
            + self.searches
            == self.node_evaluations
    }
}

impl Add for DewCounters {
    type Output = DewCounters;

    fn add(mut self, rhs: DewCounters) -> DewCounters {
        self += rhs;
        self
    }
}

impl AddAssign for DewCounters {
    fn add_assign(&mut self, rhs: DewCounters) {
        self.accesses += rhs.accesses;
        self.node_evaluations += rhs.node_evaluations;
        self.mra_stops += rhs.mra_stops;
        self.wave_hits += rhs.wave_hits;
        self.wave_misses += rhs.wave_misses;
        self.mre_misses += rhs.mre_misses;
        self.intersection_hits += rhs.intersection_hits;
        self.intersection_misses += rhs.intersection_misses;
        self.searches += rhs.searches;
        self.duplicate_skips += rhs.duplicate_skips;
        self.search_comparisons += rhs.search_comparisons;
        self.tag_comparisons += rhs.tag_comparisons;
    }
}

impl fmt::Display for DewCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} evaluations ({} MRA stops, {} wave, {} MRE, {} intersection, \
             {} searches), {} comparisons",
            self.accesses,
            self.node_evaluations,
            self.mra_stops,
            self.wave_total(),
            self.mre_misses,
            self.intersection_total(),
            self.searches,
            self.tag_comparisons,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_detects_inconsistency() {
        let mut c = DewCounters::new();
        assert!(c.is_consistent());
        c.node_evaluations = 10;
        c.mra_stops = 4;
        c.searches = 6;
        assert!(c.is_consistent());
        c.wave_hits = 1;
        assert!(!c.is_consistent());
        // The intersection buckets participate in the identity too.
        c.node_evaluations += 3;
        c.intersection_hits = 2;
        c.intersection_misses = 1;
        assert!(!c.is_consistent());
        c.wave_hits = 0;
        assert!(c.is_consistent());
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = DewCounters {
            accesses: 1,
            node_evaluations: 2,
            tag_comparisons: 3,
            ..Default::default()
        };
        let b = DewCounters {
            accesses: 10,
            node_evaluations: 20,
            searches: 5,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.accesses, 11);
        assert_eq!(c.node_evaluations, 22);
        assert_eq!(c.tag_comparisons, 3);
        assert_eq!(c.searches, 5);
    }

    #[test]
    fn unoptimized_is_accesses_times_levels() {
        let c = DewCounters {
            accesses: 100,
            ..Default::default()
        };
        assert_eq!(c.unoptimized_evaluations(15), 1500);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!DewCounters::new().to_string().is_empty());
    }
}
