//! The DEW simulation forest: binomial trees of cache sets with wave
//! pointers, MRA early termination and MRE victim entries.

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::{NodeMeta, EMPTY_WAVE, INVALID_TAG};
use crate::options::{DewOptions, TreePolicy};
use crate::results::{LevelResult, PassResults};
use crate::space::{DewError, PassConfig};

/// Sentinel for "no parent matching entry" in the walk (root level, or the
/// parent level determined the block without a resident entry).
const NO_PARENT: usize = usize::MAX;

/// The whole forest in one arena: every level's nodes and way entries live in
/// a single pair of contiguous allocations, addressed through precomputed
/// per-level node offsets and set masks.
///
/// Node `(li, set)` is `meta[node_off[li] + set]`; its tag list is
/// `ways[(node_off[li] + set) * assoc ..][..assoc]`. The LRU `last_access`
/// lane is kept out-of-line (indexed like `ways`) so FIFO passes never touch
/// — or even allocate — it.
#[derive(Debug, Clone)]
struct Forest {
    /// The MRA-tag lane, dense and on its own: the MRA comparison runs on
    /// every node evaluation and is the *only* state a Property-2 stop
    /// touches, so stops read 8 bytes per node instead of a whole
    /// [`NodeMeta`].
    mra: Vec<u64>,
    meta: Vec<NodeMeta>,
    /// The way-tag lane (`num_nodes × assoc`, node `i`'s list at
    /// `tags[i*assoc..][..assoc]`): dense `u64`s so residency searches scan
    /// 8 bytes per way and vectorise.
    tags: Vec<u64>,
    /// The wave-pointer lane, parallel to `tags`; only the instrumented
    /// kernel (the paper's shortcut ladder) reads or writes it, so it is
    /// only allocated for instrumented trees.
    waves: Vec<u32>,
    /// Per-way last-access time; only populated under [`TreePolicy::Lru`].
    last_access: Vec<u64>,
    /// Node-index base per level, plus a final entry holding the total node
    /// count (so `node_off[li]..node_off[li + 1]` is level `li`'s node range).
    node_off: Vec<usize>,
    /// `(1 << set_bits) - 1` per level (zero for the single-set root level),
    /// so the hot loop indexes with one mask and no branch.
    set_mask: Vec<u64>,
    misses: Vec<u64>,
    dm_misses: Vec<u64>,
}

impl Forest {
    fn new(pass: &PassConfig, lru: bool, instrument: bool) -> Self {
        let num_levels = pass.num_levels() as usize;
        let assoc = pass.assoc() as usize;
        let mut node_off = Vec::with_capacity(num_levels + 1);
        let mut set_mask = Vec::with_capacity(num_levels);
        let mut total = 0usize;
        for set_bits in pass.min_set_bits()..=pass.max_set_bits() {
            node_off.push(total);
            set_mask.push((1u64 << set_bits) - 1);
            total += 1usize << set_bits;
        }
        node_off.push(total);
        Forest {
            mra: vec![INVALID_TAG; total],
            meta: vec![NodeMeta::EMPTY; total],
            tags: vec![INVALID_TAG; total * assoc],
            waves: if instrument {
                vec![EMPTY_WAVE; total * assoc]
            } else {
                Vec::new()
            },
            last_access: if lru {
                vec![0; total * assoc]
            } else {
                Vec::new()
            },
            node_off,
            set_mask,
            misses: vec![0; num_levels],
            dm_misses: vec![0; num_levels],
        }
    }

    /// Level `li`'s node-index range in the arena.
    fn level_nodes(&self, li: usize) -> std::ops::Range<usize> {
        self.node_off[li]..self.node_off[li + 1]
    }
}

/// The DEW simulator: one pass over a trace produces exact miss counts for
/// every simulated set count at the pass associativity *and* at
/// associativity 1.
///
/// # How a request is simulated
///
/// A request's block maps to exactly one node per level (its set at that set
/// count); the nodes form a root-to-leaf path because the set index at level
/// `l+1` extends the index at level `l` by one address bit. [`DewTree::step`]
/// walks that path top-down (smallest set count first) and, per node:
///
/// 1. compares the **MRA tag** — a match means the block was the last one
///    handled at this node, so nothing in this set (or any descendant set on
///    the block's path) has changed since the block was resident: the request
///    hits *here and at every larger set count*, and the walk stops
///    (Property 2). The MRA comparison simultaneously yields the
///    direct-mapped result for this level, because a direct-mapped set always
///    holds its most recent requester;
/// 2. otherwise consults the parent entry's **wave pointer**: because FIFO
///    never moves a resident block between ways, the pointer — refreshed on
///    every walk — still names the block's way if the block is resident at
///    all, so one comparison decides hit *or* miss (Property 3);
/// 3. otherwise compares the **MRE tag**: the most recently evicted block is
///    certainly absent, so a match decides a miss without a search
///    (Property 4);
/// 4. otherwise falls back to searching the tag list.
///
/// Hits and misses are then applied with the paper's Algorithm 1/2: a miss
/// inserts at the FIFO round-robin position; if the victim of an earlier
/// eviction (held in the MRE entry) is the requested block, the entry is
/// exchanged back in, preserving its wave pointer across the evict/re-insert
/// cycle.
///
/// ## Why the early stop is sound (Property 2)
///
/// Invariant: if a node's MRA tag equals block `T`, then every descendant
/// node on `T`'s path also has MRA = `T`, and `T` is resident in all of them.
/// Walks modify MRA top-down along a contiguous prefix of the path, and stop
/// only at a node whose MRA already equals the request — so a stale
/// "MRA = T" below a stop point can only be *preserved*, never invalidated,
/// by requests that stop above it (a stop means a hit everywhere below, and
/// FIFO hits change nothing). Any request that actually reaches a descendant
/// overwrites its MRA, breaking the invariant's premise rather than its
/// conclusion. Exactness against a per-configuration reference simulator is
/// enforced for every configuration by the test-suite.
///
/// # The two kernels
///
/// The walk above is compiled twice. [`DewTree::instrumented`] builds the
/// *instrumented* kernel: the paper's full determination ladder, with every
/// [`DewCounters`] field maintained (the Table 3/4 quantities).
/// [`DewTree::new`] builds the *fast* kernel: no counters, and — because
/// Properties 3 and 4 only ever save comparisons, never change what is
/// resident — no wave-pointer or MRE traffic at all; residency is decided
/// by a branchless scan of the dense way-tag lane instead (under the
/// uninstrumented kernel the `wave`/`mre` option flags therefore have no
/// effect). Both kernels are further specialized over the paper's default
/// configuration (all properties on, FIFO), folding every option test out
/// of the default hot loop. All instantiations produce bit-identical miss
/// counts — a property-tested invariant. Request-level counters
/// (`accesses`, `duplicate_skips`) are maintained by every instantiation,
/// since results need them.
///
/// # Examples
///
/// ```
/// use dew_core::{DewOptions, DewTree, PassConfig};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// // Set counts 1..=16, 4-way, 4-byte blocks — plus free direct-mapped results.
/// let pass = PassConfig::new(2, 0, 4, 4)?;
/// let mut tree = DewTree::new(pass, DewOptions::default())?;
/// for i in 0..32u64 {
///     tree.step_record(Record::read((i % 8) * 4));
/// }
/// // 8 hot blocks fit a 16-set direct-mapped cache: only compulsory misses.
/// assert_eq!(tree.results().misses(16, 1), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DewTree {
    pass: PassConfig,
    opts: DewOptions,
    forest: Forest,
    counters: DewCounters,
    now: u64,
    /// Block of the previous request, for the CRCB-style elision extension.
    prev_block: u64,
    /// Which kernel instantiation `step` dispatches to.
    instrument: bool,
    /// `true` when `opts` matches the paper's default configuration and the
    /// `DEFAULT_PATH` kernel instantiation applies.
    specialized: bool,
}

impl DewTree {
    /// Builds an empty forest for `pass` with behaviour `opts`, using the
    /// fast (uninstrumented) kernel: per-node work counters stay zero and
    /// cost nothing. Use [`DewTree::instrumented`] when the
    /// [`DewTree::counters`] breakdown matters.
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `opts` fails
    /// [`DewOptions::validate`] (the MRA stop with LRU lists).
    pub fn new(pass: PassConfig, opts: DewOptions) -> Result<Self, DewError> {
        DewTree::with_instrumentation(pass, opts, false)
    }

    /// Builds a forest whose kernel maintains the full [`DewCounters`]
    /// breakdown (Table 3/4 quantities). Miss counts are bit-identical to
    /// [`DewTree::new`]'s; only the throughput differs.
    ///
    /// # Errors
    ///
    /// As [`DewTree::new`].
    pub fn instrumented(pass: PassConfig, opts: DewOptions) -> Result<Self, DewError> {
        DewTree::with_instrumentation(pass, opts, true)
    }

    /// Builds a forest selecting the kernel instantiation at runtime.
    ///
    /// # Errors
    ///
    /// As [`DewTree::new`].
    pub fn with_instrumentation(
        pass: PassConfig,
        opts: DewOptions,
        instrument: bool,
    ) -> Result<Self, DewError> {
        opts.validate()?;
        let lru = opts.policy == TreePolicy::Lru;
        let specialized = opts.mra_stop
            && opts.wave
            && opts.mre
            && !opts.dup_elision
            && opts.policy == TreePolicy::Fifo;
        Ok(DewTree {
            forest: Forest::new(&pass, lru, instrument),
            pass,
            opts,
            counters: DewCounters::new(),
            now: 0,
            prev_block: INVALID_TAG,
            instrument,
            specialized,
        })
    }

    /// The pass specification.
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> &DewOptions {
        &self.opts
    }

    /// `true` when this tree maintains the per-node work counters.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrument
    }

    /// Requests simulated so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.counters.accesses
    }

    /// The work counters (Table 1/3/4 quantities). On a tree built with
    /// [`DewTree::new`] only the request-level fields (`accesses`,
    /// `duplicate_skips`) are maintained; the per-node breakdown requires
    /// [`DewTree::instrumented`].
    #[must_use]
    pub fn counters(&self) -> &DewCounters {
        &self.counters
    }

    /// Simulates one request given as a trace record. Only the address
    /// matters: the paper's simulation is kind-agnostic (every miss
    /// allocates).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// Panics if the block number equals the internal sentinel (only possible
    /// for addresses at the very top of the 64-bit space with tiny blocks;
    /// real traces validated through [`PassConfig::new`]'s geometry limits
    /// never reach it).
    pub fn step(&mut self, addr: u64) {
        self.step_block(addr >> self.pass.block_bits());
    }

    /// Simulates one request given as a pre-decoded block number
    /// (`addr >> block_bits` for this pass's block size).
    ///
    /// # Panics
    ///
    /// As [`DewTree::step`], if `block` equals the internal sentinel.
    pub fn step_block(&mut self, block: u64) {
        assert_ne!(
            block, INVALID_TAG,
            "block {block:#x} exceeds the supported range"
        );
        match (self.instrument, self.specialized) {
            (false, true) => self.step_block_fast::<true>(block),
            (false, false) => self.step_block_fast::<false>(block),
            (true, true) => self.kernel_instrumented::<true>(block),
            (true, false) => self.kernel_instrumented::<false>(block),
        }
    }

    /// Fast-kernel dispatch on the associativity. Widths 1 and 2 get their
    /// own instantiation — there the scan reduces to one or two scalar
    /// compares and the loop overhead dominates. Wider lists keep the
    /// runtime-width scan, which LLVM vectorises better than a fully
    /// unrolled conditional-move chain (measured on the `dew_step` bench).
    fn step_block_fast<const DEFAULT_PATH: bool>(&mut self, block: u64) {
        match self.pass.assoc() {
            1 => self.kernel_fast::<DEFAULT_PATH, 1>(block),
            2 => self.kernel_fast::<DEFAULT_PATH, 2>(block),
            _ => self.kernel_fast::<DEFAULT_PATH, 0>(block),
        }
    }

    /// Simulates a batch of pre-decoded block numbers (`addr >> block_bits`
    /// for this pass's block size; see `dew_trace::decode_blocks`).
    ///
    /// This is the fastest way to drive a tree: the trace is decoded once,
    /// the kernel dispatch happens once per batch instead of once per
    /// request, and the same buffer can be shared across every pass of a
    /// sweep (block numbers only depend on the block size, not on the
    /// associativity or set counts).
    ///
    /// # Panics
    ///
    /// As [`DewTree::step`], if any block equals the internal sentinel.
    pub fn run_blocks(&mut self, blocks: &[u64]) {
        match (self.instrument, self.specialized) {
            (false, true) => self.run_blocks_inner::<false, true>(blocks),
            (false, false) => self.run_blocks_inner::<false, false>(blocks),
            (true, true) => self.run_blocks_inner::<true, true>(blocks),
            (true, false) => self.run_blocks_inner::<true, false>(blocks),
        }
    }

    fn run_blocks_inner<const INSTRUMENT: bool, const DEFAULT_PATH: bool>(
        &mut self,
        blocks: &[u64],
    ) {
        if INSTRUMENT {
            for &block in blocks {
                assert_ne!(
                    block, INVALID_TAG,
                    "block {block:#x} exceeds the supported range"
                );
                self.kernel_instrumented::<DEFAULT_PATH>(block);
            }
        } else {
            match self.pass.assoc() {
                1 => self.run_blocks_fast::<DEFAULT_PATH, 1>(blocks),
                2 => self.run_blocks_fast::<DEFAULT_PATH, 2>(blocks),
                _ => self.run_blocks_fast::<DEFAULT_PATH, 0>(blocks),
            }
        }
    }

    fn run_blocks_fast<const DEFAULT_PATH: bool, const ASSOC: usize>(&mut self, blocks: &[u64]) {
        for &block in blocks {
            assert_ne!(
                block, INVALID_TAG,
                "block {block:#x} exceeds the supported range"
            );
            self.kernel_fast::<DEFAULT_PATH, ASSOC>(block);
        }
    }

    /// Shared per-request prologue of both kernels: request accounting and
    /// the CRCB-style duplicate elision. Returns `true` when the request was
    /// elided whole.
    #[inline(always)]
    fn prologue<const DEFAULT_PATH: bool>(&mut self, block: u64) -> bool {
        debug_assert!(!DEFAULT_PATH || self.specialized, "dispatch mismatch");
        self.counters.accesses += 1;
        if !DEFAULT_PATH {
            self.now += 1;
            if self.opts.dup_elision {
                if block == self.prev_block {
                    // CRCB-style extension: the block was the previous
                    // request, so it is resident (and MRU) at every level —
                    // a hit everywhere with no state to update under FIFO,
                    // and an idempotent recency refresh under LRU (no other
                    // block touched these sets in between).
                    self.counters.duplicate_skips += 1;
                    return true;
                }
                self.prev_block = block;
            }
        }
        false
    }

    /// The fast kernel: no counters, and — the decisive part — no wave or
    /// MRE traffic at all.
    ///
    /// Properties 3 and 4 are *comparison-saving oracles*: they decide
    /// hit/miss early but never change which block is resident where, so
    /// miss counts do not depend on them (the ablation tests prove this).
    /// On modern out-of-order hardware a branchless compare of every way in
    /// the dense tag lane is cheaper than the shortcut ladder's
    /// unpredictable branches — and once nothing reads wave pointers or MRE
    /// entries, nothing needs to *maintain* them either, which removes the
    /// parent-entry tracking and makes the per-level iterations independent
    /// (the walk's only remaining serial dependence is the MRA stop).
    /// The instrumented kernel keeps the full ladder, because the paper's
    /// comparison counts are defined by it.
    ///
    /// `DEFAULT_PATH = true` additionally folds away the LRU machinery and
    /// the elision check (the options are known to match the paper's
    /// default configuration). `ASSOC` is the tag-list width when positive
    /// (letting the scan unroll and the FIFO wrap fold to a mask) and `0`
    /// for the generic runtime-width fallback.
    fn kernel_fast<const DEFAULT_PATH: bool, const ASSOC: usize>(&mut self, block: u64) {
        if self.prologue::<DEFAULT_PATH>(block) {
            return;
        }
        debug_assert!(ASSOC == 0 || ASSOC == self.pass.assoc() as usize);
        let assoc = if ASSOC == 0 {
            self.pass.assoc() as usize
        } else {
            ASSOC
        };
        let lru = !DEFAULT_PATH && self.opts.policy == TreePolicy::Lru;
        let mra_stop = DEFAULT_PATH || self.opts.mra_stop;
        let now = self.now;
        let Forest {
            mra,
            meta,
            tags,
            last_access,
            node_off,
            set_mask,
            misses,
            dm_misses,
            ..
        } = &mut self.forest;

        // One zipped iterator over the per-level lanes: the bounds checks
        // collapse into the iterator, leaving only the arena accesses
        // checked inside the loop.
        let levels = set_mask
            .iter()
            .zip(node_off.iter())
            .zip(misses.iter_mut().zip(dm_misses.iter_mut()));
        for ((&mask, &off), (level_misses, level_dm_misses)) in levels {
            let node = off + (block & mask) as usize;
            let mra_match = mra[node] == block;
            if mra_match {
                if mra_stop {
                    // Property 2: hit here and at every larger set count, for
                    // the pass associativity and for associativity 1 alike.
                    return;
                }
            } else {
                // The direct-mapped cache at this level holds its most recent
                // requester, so an MRA mismatch is exactly a DM miss.
                *level_dm_misses += 1;
            }
            mra[node] = block;
            let base = node * assoc;

            // Branchless residency check over the whole tag list: invalid
            // ways hold the sentinel (which no real block equals), so the
            // `valid` prefix length is irrelevant, and a resident block
            // occupies exactly one way, so selecting the matching index with
            // conditional moves is exact. The dense `u64` lane lets LLVM
            // vectorise this compare.
            let list = &tags[base..base + assoc];
            let mut hit_way = usize::MAX;
            for (i, &tag) in list.iter().enumerate() {
                hit_way = if tag == block { i } else { hit_way };
            }
            debug_assert!(
                !(mra_match && hit_way == usize::MAX),
                "an MRA match implies residency; miss determination is wrong"
            );

            if hit_way != usize::MAX {
                // Algorithm 1: Handle_hit (FIFO hits change nothing).
                if lru {
                    last_access[base + hit_way] = now;
                }
            } else {
                // Algorithm 2: Handle_miss.
                *level_misses += 1;
                let m = &mut meta[node];
                let n = if lru {
                    if (m.valid as usize) < assoc {
                        m.valid as usize
                    } else {
                        crate::node::lru_victim(&last_access[base..base + assoc])
                    }
                } else {
                    // FIFO: the round-robin pointer designates the least
                    // recently inserted block (or the next empty way).
                    m.fifo_ptr as usize
                };
                let slot = &mut tags[base + n];
                if *slot == INVALID_TAG {
                    m.valid += 1;
                }
                *slot = block;
                if lru {
                    last_access[base + n] = now;
                } else {
                    m.fifo_ptr = crate::node::fifo_advance(m.fifo_ptr, assoc);
                }
            }
        }
    }

    /// The instrumented kernel: the paper's full determination ladder (wave
    /// pointer, then MRE, then a stop-at-match search), with every
    /// [`DewCounters`] field maintained. Miss counts are bit-identical to
    /// [`DewTree::kernel_fast`]'s — a property-tested invariant.
    fn kernel_instrumented<const DEFAULT_PATH: bool>(&mut self, block: u64) {
        if self.prologue::<DEFAULT_PATH>(block) {
            return;
        }
        let assoc = self.pass.assoc() as usize;
        let lru = !DEFAULT_PATH && self.opts.policy == TreePolicy::Lru;
        let mra_stop = DEFAULT_PATH || self.opts.mra_stop;
        let use_wave = DEFAULT_PATH || self.opts.wave;
        let use_mre = DEFAULT_PATH || self.opts.mre;
        let now = self.now;
        let counters = &mut self.counters;
        let Forest {
            mra,
            meta,
            tags,
            waves,
            last_access,
            node_off,
            set_mask,
            misses,
            dm_misses,
        } = &mut self.forest;
        // Global way index (within the previous level) of the entry that
        // holds `block` after handling — "the parent node's matching entry".
        let mut parent = NO_PARENT;
        // The current value of `waves[parent]`, carried in a register: every
        // handling path below knows it without re-loading (a fresh insert
        // leaves `EMPTY_WAVE`, an MRE exchange restores a value we just
        // swapped, a hit reads it once at the end of the iteration). This
        // breaks the walk's store-to-load dependence on the entry the
        // previous level just wrote.
        let mut parent_wave = EMPTY_WAVE;

        let levels = set_mask
            .iter()
            .zip(node_off.iter())
            .zip(misses.iter_mut().zip(dm_misses.iter_mut()));
        for ((&mask, &off), (level_misses, level_dm_misses)) in levels {
            let node = off + (block & mask) as usize;
            counters.node_evaluations += 1;
            counters.tag_comparisons += 1; // the MRA comparison
            let mra_match = mra[node] == block;
            if mra_match {
                if mra_stop {
                    // Property 2: hit here and at every larger set count, for
                    // the pass associativity and for associativity 1 alike.
                    counters.mra_stops += 1;
                    return;
                }
            } else {
                // The direct-mapped cache at this level holds its most recent
                // requester, so an MRA mismatch is exactly a DM miss.
                *level_dm_misses += 1;
            }
            let base = node * assoc;
            let m = &mut meta[node];

            // Hit/miss determination: wave pointer, then MRE, then search.
            let mut found: Option<usize> = None;
            let mut determined = false;
            if use_wave && parent != NO_PARENT && parent_wave != EMPTY_WAVE {
                // Property 3: a valid wave pointer names the only way this
                // block can occupy, so one comparison decides.
                counters.tag_comparisons += 1;
                let w = parent_wave as usize;
                debug_assert!(w < assoc, "wave pointer within tag list");
                if tags[base + w] == block {
                    counters.wave_hits += 1;
                    found = Some(w);
                } else {
                    counters.wave_misses += 1;
                }
                determined = true;
            }
            if !determined && use_mre {
                // Property 4: the most recently evicted block is certainly
                // not in the tag list.
                counters.tag_comparisons += 1;
                if m.mre == block {
                    counters.mre_misses += 1;
                    determined = true;
                }
            }
            if !determined {
                counters.searches += 1;
                // The scan stops at the match, because the paper's
                // comparison counts do.
                for (i, &tag) in tags[base..base + m.valid as usize].iter().enumerate() {
                    counters.search_comparisons += 1;
                    counters.tag_comparisons += 1;
                    if tag == block {
                        found = Some(i);
                        break;
                    }
                }
            }
            debug_assert!(
                !(mra_match && found.is_none()),
                "an MRA match implies residency; miss determination is wrong"
            );

            mra[node] = block;
            let n = match found {
                Some(n) => {
                    // Algorithm 1: Handle_hit.
                    if lru {
                        last_access[base + n] = now;
                    }
                    parent_wave = waves[base + n];
                    n
                }
                None => {
                    // Algorithm 2: Handle_miss.
                    *level_misses += 1;
                    let n = if lru {
                        if (m.valid as usize) < assoc {
                            m.valid as usize
                        } else {
                            crate::node::lru_victim(&last_access[base..base + assoc])
                        }
                    } else {
                        // FIFO: the round-robin pointer designates the least
                        // recently inserted block (or the next empty way).
                        m.fifo_ptr as usize
                    };
                    if use_mre && m.mre == block {
                        // Algorithm 2, line 5: exchange the victim way with
                        // the MRE entry, restoring the block's preserved wave
                        // pointer.
                        debug_assert_eq!(
                            m.valid as usize, assoc,
                            "MRE only holds a tag after an eviction, which requires a full set"
                        );
                        std::mem::swap(&mut tags[base + n], &mut m.mre);
                        std::mem::swap(&mut waves[base + n], &mut m.mre_wave);
                        parent_wave = waves[base + n];
                    } else {
                        // Algorithm 2, lines 7-8: fresh insert; the evicted
                        // entry (tag and wave pointer) moves to the MRE slot.
                        let evicted_tag = std::mem::replace(&mut tags[base + n], block);
                        let evicted_wave = std::mem::replace(&mut waves[base + n], EMPTY_WAVE);
                        parent_wave = EMPTY_WAVE;
                        if evicted_tag == INVALID_TAG {
                            m.valid += 1;
                        } else if use_mre {
                            m.mre = evicted_tag;
                            m.mre_wave = evicted_wave;
                        }
                    }
                    if lru {
                        last_access[base + n] = now;
                    } else {
                        m.fifo_ptr = crate::node::fifo_advance(m.fifo_ptr, assoc);
                    }
                    n
                }
            };
            // Algorithm 1 line 3 / Algorithm 2 line 10: refresh the parent's
            // matching entry's wave pointer.
            if use_wave && parent != NO_PARENT {
                waves[parent] = n as u32;
            }
            parent = base + n;
        }
    }

    /// Snapshot of the per-level miss counts.
    #[must_use]
    pub fn results(&self) -> PassResults {
        let levels = self
            .forest
            .misses
            .iter()
            .zip(&self.forest.dm_misses)
            .enumerate()
            .map(|(li, (&misses, &dm))| {
                LevelResult::new(self.pass.min_set_bits() + li as u32, misses, dm)
            })
            .collect();
        PassResults::new(self.pass, self.counters.accesses, levels)
    }

    /// Storage the paper's 32-bit model assigns to this forest:
    /// `Σ_levels S × (96 + 64·A)` bits (Section 5).
    #[must_use]
    pub fn paper_model_bits(&self) -> u64 {
        let a = u64::from(self.pass.assoc());
        (self.pass.min_set_bits()..=self.pass.max_set_bits())
            .map(|sb| (1u64 << sb) * (96 + 64 * a))
            .sum()
    }

    /// Serialises the complete simulation state (geometry, options,
    /// counters, every node) to bytes. See [`crate::snapshot`] for the
    /// format and the use case.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64, MAGIC, VERSION};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.pass.assoc());
        let flags = u8::from(self.opts.mra_stop)
            | u8::from(self.opts.wave) << 1
            | u8::from(self.opts.mre) << 2
            | u8::from(self.opts.dup_elision) << 3
            | u8::from(self.opts.policy == TreePolicy::Lru) << 4
            | u8::from(self.instrument) << 5;
        out.push(flags);
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_stops,
            c.wave_hits,
            c.wave_misses,
            c.mre_misses,
            c.searches,
            c.duplicate_skips,
            c.search_comparisons,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.now);
        put_u64(&mut out, self.prev_block);
        // Version 2 writes the arena in layout order: the per-level miss
        // tallies, then the whole metadata lane, the whole way lane and the
        // whole (possibly empty) last-access lane.
        for (m, dm) in self.forest.misses.iter().zip(&self.forest.dm_misses) {
            put_u64(&mut out, *m);
            put_u64(&mut out, *dm);
        }
        for (&mra, m) in self.forest.mra.iter().zip(&self.forest.meta) {
            put_u64(&mut out, mra);
            put_u64(&mut out, m.mre);
            put_u32(&mut out, m.mre_wave);
            put_u32(&mut out, m.fifo_ptr);
            put_u32(&mut out, m.valid);
        }
        // Fast trees carry no wave lane; on disk their entries read as
        // "empty", which is exactly the state an instrumented kernel would
        // never have consulted anyway.
        for (i, &tag) in self.forest.tags.iter().enumerate() {
            put_u64(&mut out, tag);
            put_u32(
                &mut out,
                self.forest.waves.get(i).copied().unwrap_or(EMPTY_WAVE),
            );
        }
        for &t in &self.forest.last_access {
            put_u64(&mut out, t);
        }
        out
    }

    /// Restores a tree from [`DewTree::to_snapshot`] output. The snapshot is
    /// self-describing: geometry and options are recovered from it. Both the
    /// current (arena-ordered) version-2 layout and the legacy per-level
    /// version-1 layout are accepted; version-1 snapshots restore as
    /// instrumented trees, matching the kernel that wrote them.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError, MAGIC, VERSION, VERSION_1};
        let mut cur = Cursor::new(bytes);
        if cur.bytes(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != VERSION && version != VERSION_1 {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits, assoc) =
            (cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?);
        let pass = PassConfig::new(block_bits, min_set_bits, max_set_bits, assoc)
            .map_err(|_| SnapshotError::Corrupt("invalid pass geometry"))?;
        let flags = cur.u8()?;
        let opts = DewOptions {
            mra_stop: flags & 1 != 0,
            wave: flags & 2 != 0,
            mre: flags & 4 != 0,
            dup_elision: flags & 8 != 0,
            policy: if flags & 16 != 0 {
                TreePolicy::Lru
            } else {
                TreePolicy::Fifo
            },
        };
        // Version-1 trees always maintained the full counters.
        let instrument = version == VERSION_1 || flags & 32 != 0;
        let mut tree = DewTree::with_instrumentation(pass, opts, instrument)
            .map_err(|_| SnapshotError::Corrupt("unsound option flags"))?;
        let c = &mut tree.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.mra_stops = cur.u64()?;
        c.wave_hits = cur.u64()?;
        c.wave_misses = cur.u64()?;
        c.mre_misses = cur.u64()?;
        c.searches = cur.u64()?;
        c.duplicate_skips = cur.u64()?;
        c.search_comparisons = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        tree.now = cur.u64()?;
        tree.prev_block = cur.u64()?;
        let assoc = pass.assoc() as usize;
        let num_levels = pass.num_levels() as usize;

        let read_meta =
            |cur: &mut Cursor<'_>, mra: &mut u64, m: &mut NodeMeta| -> Result<(), SnapshotError> {
                *mra = cur.u64()?;
                m.mre = cur.u64()?;
                m.mre_wave = cur.u32()?;
                m.fifo_ptr = cur.u32()?;
                m.valid = cur.u32()?;
                if m.fifo_ptr as usize >= assoc || m.valid as usize > assoc {
                    return Err(SnapshotError::Corrupt("node state out of range"));
                }
                Ok(())
            };
        let read_way =
            |cur: &mut Cursor<'_>, tag: &mut u64, wave: &mut u32| -> Result<(), SnapshotError> {
                *tag = cur.u64()?;
                *wave = cur.u32()?;
                if *wave != EMPTY_WAVE && *wave as usize >= assoc {
                    return Err(SnapshotError::Corrupt("wave pointer out of range"));
                }
                Ok(())
            };

        if version == VERSION_1 {
            // Legacy layout: each level interleaves its miss tallies,
            // metadata, ways and last-access times.
            for li in 0..num_levels {
                tree.forest.misses[li] = cur.u64()?;
                tree.forest.dm_misses[li] = cur.u64()?;
                let nodes = tree.forest.level_nodes(li);
                let (mra_lane, meta_lane) = (
                    &mut tree.forest.mra[nodes.clone()],
                    &mut tree.forest.meta[nodes.clone()],
                );
                for (mra, m) in mra_lane.iter_mut().zip(meta_lane) {
                    read_meta(&mut cur, mra, m)?;
                }
                let ways = nodes.start * assoc..nodes.end * assoc;
                let (tag_lane, wave_lane) = (
                    &mut tree.forest.tags[ways.clone()],
                    &mut tree.forest.waves[ways.clone()],
                );
                for (tag, wave) in tag_lane.iter_mut().zip(wave_lane) {
                    read_way(&mut cur, tag, wave)?;
                }
                if !tree.forest.last_access.is_empty() {
                    for t in &mut tree.forest.last_access[ways] {
                        *t = cur.u64()?;
                    }
                }
            }
        } else {
            for li in 0..num_levels {
                tree.forest.misses[li] = cur.u64()?;
                tree.forest.dm_misses[li] = cur.u64()?;
            }
            let (mra_lane, meta_lane) = (&mut tree.forest.mra, &mut tree.forest.meta);
            for (mra, m) in mra_lane.iter_mut().zip(meta_lane) {
                read_meta(&mut cur, mra, m)?;
            }
            let has_waves = !tree.forest.waves.is_empty();
            for i in 0..tree.forest.tags.len() {
                let mut wave = EMPTY_WAVE;
                read_way(&mut cur, &mut tree.forest.tags[i], &mut wave)?;
                if has_waves {
                    tree.forest.waves[i] = wave;
                }
            }
            for t in &mut tree.forest.last_access {
                *t = cur.u64()?;
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(tree)
    }

    /// Actual heap footprint of the forest's node storage in bytes
    /// (this implementation's 64-bit tags; excludes counters).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.forest.mra.len() * std::mem::size_of::<u64>()
            + self.forest.meta.len() * std::mem::size_of::<NodeMeta>()
            + self.forest.tags.len() * std::mem::size_of::<u64>()
            + self.forest.waves.len() * std::mem::size_of::<u32>()
            + self.forest.last_access.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{Cache, CacheConfig, Replacement};

    fn fifo_tree(block_bits: u32, min: u32, max: u32, assoc: u32) -> DewTree {
        DewTree::instrumented(
            PassConfig::new(block_bits, min, max, assoc).expect("valid pass"),
            DewOptions::default(),
        )
        .expect("valid options")
    }

    /// Reference miss count via the per-configuration simulator.
    fn reference_misses(
        sets: u32,
        assoc: u32,
        block_bytes: u32,
        policy: Replacement,
        addrs: &[u64],
    ) -> u64 {
        let mut cache =
            Cache::new(CacheConfig::new(sets, assoc, block_bytes, policy).expect("valid config"));
        for &a in addrs {
            cache.access(Record::read(a));
        }
        cache.stats().misses()
    }

    fn pseudo_random_addrs(n: usize, span: u64, seed: u64) -> Vec<u64> {
        // Deterministic xorshift mix: localised with occasional far jumps.
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 7 == 0 {
                    x % span
                } else {
                    (x % 64) * 4 + (i as u64 % 3) * 128
                }
            })
            .collect()
    }

    #[test]
    fn streaming_trace_misses_everywhere() {
        let mut t = fifo_tree(2, 0, 3, 2);
        for i in 0..64u64 {
            t.step(i * 4);
        }
        let r = t.results();
        for sets in [1u32, 2, 4, 8] {
            assert_eq!(r.misses(sets, 2), Some(64), "sets={sets}");
            assert_eq!(r.misses(sets, 1), Some(64), "sets={sets}");
        }
    }

    #[test]
    fn repeated_address_stops_at_the_root() {
        let mut t = fifo_tree(2, 0, 4, 4);
        for _ in 0..10 {
            t.step(0x40);
        }
        let c = t.counters();
        // First request walks all 5 levels; the other 9 stop at the root.
        assert_eq!(c.node_evaluations, 5 + 9);
        assert_eq!(c.mra_stops, 9);
        assert!(c.is_consistent());
        let r = t.results();
        assert_eq!(r.misses(1, 4), Some(1));
        assert_eq!(r.misses(16, 1), Some(1));
    }

    #[test]
    fn matches_reference_fifo_on_mixed_trace() {
        let addrs = pseudo_random_addrs(4000, 1 << 14, 0xDEB5_1234);
        for (block_bits, assoc) in [(0u32, 2u32), (2, 4), (4, 8), (6, 16), (2, 1)] {
            let mut t = fifo_tree(block_bits, 0, 6, assoc);
            for &a in &addrs {
                t.step(a);
            }
            assert!(t.counters().is_consistent());
            let r = t.results();
            for set_bits in 0..=6u32 {
                let sets = 1u32 << set_bits;
                let expected =
                    reference_misses(sets, assoc, 1 << block_bits, Replacement::Fifo, &addrs);
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(expected),
                    "sets={sets} assoc={assoc} block_bits={block_bits}"
                );
                let expected_dm =
                    reference_misses(sets, 1, 1 << block_bits, Replacement::Fifo, &addrs);
                assert_eq!(r.misses(sets, 1), Some(expected_dm), "DM sets={sets}");
            }
        }
    }

    #[test]
    fn uninstrumented_kernel_matches_reference_too() {
        let addrs = pseudo_random_addrs(4000, 1 << 14, 0xDEB5_1234);
        let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
        let mut t = DewTree::new(pass, DewOptions::default()).expect("sound");
        assert!(!t.is_instrumented());
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        assert_eq!(t.counters().accesses, addrs.len() as u64);
        assert_eq!(
            t.counters().node_evaluations,
            0,
            "the fast kernel performs no per-node counting"
        );
        for set_bits in 0..=6u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 4, 4, Replacement::Fifo, &addrs);
            assert_eq!(r.misses(sets, 4), Some(expected), "sets={sets}");
        }
    }

    #[test]
    fn instrumented_and_fast_kernels_are_bit_identical() {
        let addrs = pseudo_random_addrs(5000, 1 << 13, 0x00DD_BA11);
        for opts in [
            DewOptions::default(),
            DewOptions::unoptimized(),
            DewOptions::lru(),
        ] {
            let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
            let mut slow = DewTree::instrumented(pass, opts).expect("sound");
            let mut fast = DewTree::new(pass, opts).expect("sound");
            for &a in &addrs {
                slow.step(a);
                fast.step(a);
            }
            assert_eq!(slow.results(), fast.results(), "{opts}");
        }
    }

    #[test]
    fn run_blocks_matches_per_record_stepping() {
        let addrs = pseudo_random_addrs(3000, 1 << 12, 0xB10C_B10C);
        let pass = PassConfig::new(4, 0, 5, 4).expect("valid");
        let blocks: Vec<u64> = addrs.iter().map(|&a| a >> 4).collect();
        for instrument in [false, true] {
            let mut stepped =
                DewTree::with_instrumentation(pass, DewOptions::default(), instrument)
                    .expect("sound");
            for &a in &addrs {
                stepped.step(a);
            }
            let mut batched =
                DewTree::with_instrumentation(pass, DewOptions::default(), instrument)
                    .expect("sound");
            batched.run_blocks(&blocks);
            assert_eq!(stepped.results(), batched.results());
            assert_eq!(stepped.counters(), batched.counters());
        }
    }

    #[test]
    fn matches_reference_lru_on_mixed_trace() {
        let addrs = pseudo_random_addrs(3000, 1 << 12, 0xABCD_EF01);
        let pass = PassConfig::new(2, 0, 5, 4).expect("valid");
        let mut t = DewTree::instrumented(pass, DewOptions::lru()).expect("valid");
        for &a in &addrs {
            t.step(a);
        }
        assert!(t.counters().is_consistent());
        let r = t.results();
        for set_bits in 0..=5u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 4, 4, Replacement::Lru, &addrs);
            assert_eq!(r.misses(sets, 4), Some(expected), "LRU sets={sets}");
            let expected_dm = reference_misses(sets, 1, 4, Replacement::Lru, &addrs);
            assert_eq!(r.misses(sets, 1), Some(expected_dm), "LRU DM sets={sets}");
        }
    }

    #[test]
    fn properties_do_not_change_results() {
        let addrs = pseudo_random_addrs(2500, 1 << 12, 0x1357_9BDF);
        let pass = PassConfig::new(2, 0, 5, 4).expect("valid");
        let baseline = {
            let mut t = DewTree::new(pass, DewOptions::unoptimized()).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            t.results()
        };
        for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
            let mut t = DewTree::instrumented(pass, opts).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            assert!(t.counters().is_consistent(), "{opts}");
            assert_eq!(t.results(), baseline, "results changed under {opts}");
        }
    }

    #[test]
    fn properties_reduce_work_monotonically() {
        // Byte-addressable sequential loop: consecutive requests share a
        // block (the paper's traces have this shape), so the MRA stop fires
        // on most requests and the short-circuit checks pay off.
        let addrs: Vec<u64> = (0..4000u64).map(|i| i % 640).collect();
        let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
        let run = |opts: DewOptions| {
            let mut t = DewTree::instrumented(pass, opts).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            *t.counters()
        };
        let none = run(DewOptions::unoptimized());
        let full = run(DewOptions::default());
        assert!(
            full.node_evaluations < none.node_evaluations,
            "MRA stop prunes evaluations"
        );
        assert!(
            full.tag_comparisons < none.tag_comparisons,
            "properties cut comparisons"
        );
        assert_eq!(
            none.node_evaluations,
            none.unoptimized_evaluations(pass.num_levels()),
            "without the stop, every request visits every level"
        );
    }

    #[test]
    fn forest_with_min_sets_above_one() {
        let addrs = pseudo_random_addrs(1500, 1 << 10, 0xFEED_BEEF);
        let mut t = fifo_tree(2, 3, 6, 2);
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        assert_eq!(
            r.misses(4, 2),
            None,
            "below the forest's smallest set count"
        );
        for set_bits in 3..=6u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 2, 4, Replacement::Fifo, &addrs);
            assert_eq!(r.misses(sets, 2), Some(expected), "forest sets={sets}");
        }
    }

    #[test]
    fn single_level_tree_works() {
        let addrs = pseudo_random_addrs(500, 1 << 8, 0x600D_CAFE);
        let mut t = fifo_tree(0, 4, 4, 4);
        for &a in &addrs {
            t.step(a);
        }
        let expected = reference_misses(16, 4, 1, Replacement::Fifo, &addrs);
        assert_eq!(t.results().misses(16, 4), Some(expected));
    }

    #[test]
    fn assoc_one_tree_agrees_with_its_own_dm_results() {
        let addrs = pseudo_random_addrs(1000, 1 << 10, 0x0BAD_F00D);
        let mut t = fifo_tree(2, 0, 5, 1);
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        for l in r.levels() {
            assert_eq!(
                l.misses(),
                l.dm_misses(),
                "a 1-way tag list and the MRA entry simulate the same cache"
            );
        }
    }

    #[test]
    fn mre_restores_wave_pointers_across_evictions() {
        // Thrash two blocks in a direct-mapped root so evict/re-insert cycles
        // exercise the MRE exchange path (Algorithm 2 line 5).
        let mut t = fifo_tree(2, 0, 2, 1);
        for i in 0..40u64 {
            t.step(if i % 2 == 0 { 0x00 } else { 0x100 });
        }
        let c = t.counters();
        assert!(c.mre_misses > 0, "MRE determinations must fire: {c}");
        assert!(c.is_consistent());
        // Exactness under thrashing:
        let addrs: Vec<u64> = (0..40u64)
            .map(|i| if i % 2 == 0 { 0x00 } else { 0x100 })
            .collect();
        for set_bits in 0..=2u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 1, 4, Replacement::Fifo, &addrs);
            assert_eq!(t.results().misses(sets, 1), Some(expected));
        }
    }

    #[test]
    fn wave_pointers_fire_on_tree_descent() {
        // A loop over a few blocks: after warm-up, descents should be decided
        // by wave pointers or MRA stops, not searches.
        let mut t = fifo_tree(2, 0, 3, 4);
        let addrs: Vec<u64> = (0..12u64).map(|i| (i % 3) * 4).collect();
        for &a in &addrs {
            t.step(a);
        }
        let c = t.counters();
        assert!(c.wave_hits > 0, "wave hits expected: {c}");
        assert!(c.is_consistent());
    }

    #[test]
    fn belady_anomaly_exists_under_fifo() {
        // The canonical Belady sequence: FIFO with MORE capacity can miss
        // MORE. This is why FIFO has no inclusion property and why DEW cannot
        // reuse the LRU single-pass machinery (paper Section 1).
        let seq = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        // Direct check of the anomaly with exact FIFO frame counts 3 and 4
        // using a tiny inline model (power-of-two caches can't express 3
        // ways).
        fn fifo_misses(frames: usize, seq: &[u64]) -> u32 {
            let mut q: Vec<u64> = Vec::new();
            let mut misses = 0;
            for &b in seq {
                if !q.contains(&b) {
                    misses += 1;
                    if q.len() == frames {
                        q.remove(0);
                    }
                    q.push(b);
                }
            }
            misses
        }
        assert!(
            fifo_misses(4, &seq) > fifo_misses(3, &seq),
            "Belady's anomaly: 4 frames must miss more than 3 on this sequence"
        );
    }

    #[test]
    fn memory_models() {
        let t = fifo_tree(2, 0, 2, 4);
        // Levels with 1, 2 and 4 sets: (1+2+4) x (96 + 64*4) bits.
        assert_eq!(t.paper_model_bits(), 7 * (96 + 256));
        assert!(t.footprint_bytes() > 0);
        let lru = DewTree::new(
            PassConfig::new(2, 0, 2, 4).expect("valid"),
            DewOptions::lru(),
        )
        .expect("valid");
        assert!(
            lru.footprint_bytes() > t.footprint_bytes(),
            "LRU stores access times"
        );
    }

    #[test]
    fn run_and_step_record_are_step_by_address() {
        let records: Vec<Record> = (0..50u64).map(|i| Record::read((i % 9) * 8)).collect();
        let mut a = fifo_tree(2, 0, 3, 2);
        a.run(records.iter().copied());
        let mut b = fifo_tree(2, 0, 3, 2);
        for r in &records {
            b.step_record(*r);
        }
        assert_eq!(a.results(), b.results());
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_address_panics() {
        let mut t = fifo_tree(0, 0, 1, 1);
        t.step(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_block_panics_in_batches() {
        let mut t = DewTree::new(
            PassConfig::new(0, 0, 1, 1).expect("valid"),
            DewOptions::default(),
        )
        .expect("sound");
        t.run_blocks(&[0, 1, u64::MAX]);
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let addrs = pseudo_random_addrs(3000, 1 << 12, 0x5AFE_5AFE);
        let (first, second) = addrs.split_at(1500);
        for opts in [
            DewOptions::default(),
            DewOptions::lru(),
            DewOptions::unoptimized(),
        ] {
            for instrument in [false, true] {
                let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
                // Uninterrupted run.
                let mut straight =
                    DewTree::with_instrumentation(pass, opts, instrument).expect("sound");
                for &a in &addrs {
                    straight.step(a);
                }
                // Checkpointed run: simulate half, snapshot, restore, finish.
                let mut head =
                    DewTree::with_instrumentation(pass, opts, instrument).expect("sound");
                for &a in first {
                    head.step(a);
                }
                let snapshot = head.to_snapshot();
                drop(head);
                let mut tail = DewTree::from_snapshot(&snapshot).expect("restores");
                assert_eq!(tail.pass(), &pass);
                assert_eq!(tail.options(), &opts);
                assert_eq!(tail.is_instrumented(), instrument);
                for &a in second {
                    tail.step(a);
                }
                assert_eq!(tail.results(), straight.results(), "{opts}");
                assert_eq!(tail.counters(), straight.counters(), "{opts}");
            }
        }
    }

    /// Serialises a tree in the legacy version-1 layout (per-level
    /// interleaved, no instrument flag), as PR-1-era builds wrote it.
    fn to_snapshot_v1(tree: &DewTree) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64, MAGIC, VERSION_1};
        let assoc = tree.pass.assoc() as usize;
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION_1);
        put_u32(&mut out, tree.pass.block_bits());
        put_u32(&mut out, tree.pass.min_set_bits());
        put_u32(&mut out, tree.pass.max_set_bits());
        put_u32(&mut out, tree.pass.assoc());
        let flags = u8::from(tree.opts.mra_stop)
            | u8::from(tree.opts.wave) << 1
            | u8::from(tree.opts.mre) << 2
            | u8::from(tree.opts.dup_elision) << 3
            | u8::from(tree.opts.policy == TreePolicy::Lru) << 4;
        out.push(flags);
        let c = &tree.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_stops,
            c.wave_hits,
            c.wave_misses,
            c.mre_misses,
            c.searches,
            c.duplicate_skips,
            c.search_comparisons,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, tree.now);
        put_u64(&mut out, tree.prev_block);
        for li in 0..tree.pass.num_levels() as usize {
            put_u64(&mut out, tree.forest.misses[li]);
            put_u64(&mut out, tree.forest.dm_misses[li]);
            let nodes = tree.forest.level_nodes(li);
            for (mra, m) in tree.forest.mra[nodes.clone()]
                .iter()
                .zip(&tree.forest.meta[nodes.clone()])
            {
                put_u64(&mut out, *mra);
                put_u64(&mut out, m.mre);
                put_u32(&mut out, m.mre_wave);
                put_u32(&mut out, m.fifo_ptr);
                put_u32(&mut out, m.valid);
            }
            let ways = nodes.start * assoc..nodes.end * assoc;
            for (&tag, &wave) in tree.forest.tags[ways.clone()]
                .iter()
                .zip(&tree.forest.waves[ways.clone()])
            {
                put_u64(&mut out, tag);
                put_u32(&mut out, wave);
            }
            if !tree.forest.last_access.is_empty() {
                for &t in &tree.forest.last_access[ways] {
                    put_u64(&mut out, t);
                }
            }
        }
        out
    }

    #[test]
    fn legacy_v1_snapshots_still_restore() {
        let addrs = pseudo_random_addrs(2000, 1 << 11, 0x0001_E6AC);
        let (first, second) = addrs.split_at(1000);
        for opts in [DewOptions::default(), DewOptions::lru()] {
            let pass = PassConfig::new(2, 0, 5, 4).expect("valid");
            let mut straight = DewTree::instrumented(pass, opts).expect("sound");
            for &a in &addrs {
                straight.step(a);
            }
            let mut head = DewTree::instrumented(pass, opts).expect("sound");
            for &a in first {
                head.step(a);
            }
            let v1 = to_snapshot_v1(&head);
            let mut tail = DewTree::from_snapshot(&v1).expect("v1 decodes");
            assert!(
                tail.is_instrumented(),
                "v1 snapshots come from always-instrumented builds"
            );
            for &a in second {
                tail.step(a);
            }
            assert_eq!(tail.results(), straight.results(), "{opts}");
            assert_eq!(tail.counters(), straight.counters(), "{opts}");
        }
    }

    #[test]
    fn snapshot_rejects_foreign_and_corrupt_buffers() {
        use crate::snapshot::SnapshotError;
        assert!(matches!(
            DewTree::from_snapshot(b"nope"),
            Err(SnapshotError::Corrupt(_)) | Err(SnapshotError::BadMagic)
        ));
        let mut t = fifo_tree(2, 0, 2, 2);
        t.step(0x100);
        let mut snap = t.to_snapshot();
        // Unknown version.
        let mut wrong_version = snap.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            DewTree::from_snapshot(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
        // Truncated.
        snap.truncate(snap.len() - 3);
        assert!(matches!(
            DewTree::from_snapshot(&snap),
            Err(SnapshotError::Corrupt(_))
        ));
        // Trailing garbage.
        let mut long = t.to_snapshot();
        long.push(0);
        assert!(matches!(
            DewTree::from_snapshot(&long),
            Err(SnapshotError::TrailingBytes(1))
        ));
    }

    #[test]
    fn duplicate_elision_preserves_results_and_skips_work() {
        // Byte-sequential accesses: with 16-byte blocks, 15 of every 16
        // requests repeat the previous block.
        let addrs: Vec<u64> = (0..2000u64).map(|i| i % 512).collect();
        let pass = PassConfig::new(4, 0, 5, 4).expect("valid");
        let plain = {
            let mut t = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
            for &a in &addrs {
                t.step(a);
            }
            (t.results(), *t.counters())
        };
        let elided = {
            let opts = DewOptions {
                dup_elision: true,
                ..DewOptions::default()
            };
            let mut t = DewTree::instrumented(pass, opts).expect("sound");
            for &a in &addrs {
                t.step(a);
            }
            (t.results(), *t.counters())
        };
        assert_eq!(plain.0, elided.0, "elision must not change results");
        assert!(
            elided.1.duplicate_skips > 1000,
            "skips: {}",
            elided.1.duplicate_skips
        );
        assert!(elided.1.node_evaluations < plain.1.node_evaluations);
        assert!(elided.1.is_consistent());
    }

    #[test]
    fn duplicate_elision_is_exact_under_lru_too() {
        let addrs: Vec<u64> = (0..3000u64)
            .map(|i| {
                let x = (i * 2654435761) >> 5;
                (x % 128) * 2 // pairs of accesses to nearby bytes
            })
            .collect();
        let pass = PassConfig::new(2, 0, 4, 4).expect("valid");
        let opts = DewOptions {
            dup_elision: true,
            ..DewOptions::lru()
        };
        let mut t = DewTree::new(pass, opts).expect("sound");
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        for set_bits in 0..=4u32 {
            let sets = 1u32 << set_bits;
            for a in [1u32, 4] {
                let expected = reference_misses(sets, a, 4, Replacement::Lru, &addrs);
                assert_eq!(r.misses(sets, a), Some(expected), "sets={sets} assoc={a}");
            }
        }
    }
}
