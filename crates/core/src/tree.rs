//! The DEW simulation forest: binomial trees of cache sets with wave
//! pointers, MRA early termination and MRE victim entries.

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::{NodeMeta, WayEntry, EMPTY_WAVE, INVALID_TAG};
use crate::options::{DewOptions, TreePolicy};
use crate::results::{LevelResult, PassResults};
use crate::space::{DewError, PassConfig};

/// One forest level: all `2^set_bits` sets of the cache with that set count,
/// stored flat (node `i`'s tag list is `ways[i*assoc .. (i+1)*assoc]`).
#[derive(Debug, Clone)]
struct Level {
    meta: Vec<NodeMeta>,
    ways: Vec<WayEntry>,
    /// Per-way last-access time; only populated under [`TreePolicy::Lru`].
    last_access: Vec<u64>,
    misses: u64,
    dm_misses: u64,
}

impl Level {
    fn new(num_sets: usize, assoc: usize, lru: bool) -> Self {
        Level {
            meta: vec![NodeMeta::EMPTY; num_sets],
            ways: vec![WayEntry::EMPTY; num_sets * assoc],
            last_access: if lru {
                vec![0; num_sets * assoc]
            } else {
                Vec::new()
            },
            misses: 0,
            dm_misses: 0,
        }
    }
}

/// The DEW simulator: one pass over a trace produces exact miss counts for
/// every simulated set count at the pass associativity *and* at
/// associativity 1.
///
/// # How a request is simulated
///
/// A request's block maps to exactly one node per level (its set at that set
/// count); the nodes form a root-to-leaf path because the set index at level
/// `l+1` extends the index at level `l` by one address bit. [`DewTree::step`]
/// walks that path top-down (smallest set count first) and, per node:
///
/// 1. compares the **MRA tag** — a match means the block was the last one
///    handled at this node, so nothing in this set (or any descendant set on
///    the block's path) has changed since the block was resident: the request
///    hits *here and at every larger set count*, and the walk stops
///    (Property 2). The MRA comparison simultaneously yields the
///    direct-mapped result for this level, because a direct-mapped set always
///    holds its most recent requester;
/// 2. otherwise consults the parent entry's **wave pointer**: because FIFO
///    never moves a resident block between ways, the pointer — refreshed on
///    every walk — still names the block's way if the block is resident at
///    all, so one comparison decides hit *or* miss (Property 3);
/// 3. otherwise compares the **MRE tag**: the most recently evicted block is
///    certainly absent, so a match decides a miss without a search
///    (Property 4);
/// 4. otherwise falls back to searching the tag list.
///
/// Hits and misses are then applied with the paper's Algorithm 1/2: a miss
/// inserts at the FIFO round-robin position; if the victim of an earlier
/// eviction (held in the MRE entry) is the requested block, the entry is
/// exchanged back in, preserving its wave pointer across the evict/re-insert
/// cycle.
///
/// ## Why the early stop is sound (Property 2)
///
/// Invariant: if a node's MRA tag equals block `T`, then every descendant
/// node on `T`'s path also has MRA = `T`, and `T` is resident in all of them.
/// Walks modify MRA top-down along a contiguous prefix of the path, and stop
/// only at a node whose MRA already equals the request — so a stale
/// "MRA = T" below a stop point can only be *preserved*, never invalidated,
/// by requests that stop above it (a stop means a hit everywhere below, and
/// FIFO hits change nothing). Any request that actually reaches a descendant
/// overwrites its MRA, breaking the invariant's premise rather than its
/// conclusion. Exactness against a per-configuration reference simulator is
/// enforced for every configuration by the test-suite.
///
/// # Examples
///
/// ```
/// use dew_core::{DewOptions, DewTree, PassConfig};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// // Set counts 1..=16, 4-way, 4-byte blocks — plus free direct-mapped results.
/// let pass = PassConfig::new(2, 0, 4, 4)?;
/// let mut tree = DewTree::new(pass, DewOptions::default())?;
/// for i in 0..32u64 {
///     tree.step_record(Record::read((i % 8) * 4));
/// }
/// // 8 hot blocks fit a 16-set direct-mapped cache: only compulsory misses.
/// assert_eq!(tree.results().misses(16, 1), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DewTree {
    pass: PassConfig,
    opts: DewOptions,
    levels: Vec<Level>,
    counters: DewCounters,
    now: u64,
    /// Block of the previous request, for the CRCB-style elision extension.
    prev_block: u64,
}

impl DewTree {
    /// Builds an empty forest for `pass` with behaviour `opts`.
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `opts` fails
    /// [`DewOptions::validate`] (the MRA stop with LRU lists).
    pub fn new(pass: PassConfig, opts: DewOptions) -> Result<Self, DewError> {
        opts.validate()?;
        let lru = opts.policy == TreePolicy::Lru;
        let assoc = pass.assoc() as usize;
        let levels = (pass.min_set_bits()..=pass.max_set_bits())
            .map(|set_bits| Level::new(1usize << set_bits, assoc, lru))
            .collect();
        Ok(DewTree {
            pass,
            opts,
            levels,
            counters: DewCounters::new(),
            now: 0,
            prev_block: INVALID_TAG,
        })
    }

    /// The pass specification.
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> &DewOptions {
        &self.opts
    }

    /// Requests simulated so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.counters.accesses
    }

    /// The work counters (Table 3/4 quantities).
    #[must_use]
    pub fn counters(&self) -> &DewCounters {
        &self.counters
    }

    /// Simulates one request given as a trace record. Only the address
    /// matters: the paper's simulation is kind-agnostic (every miss
    /// allocates).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// Panics if the block number equals the internal sentinel (only possible
    /// for addresses at the very top of the 64-bit space with tiny blocks;
    /// real traces validated through [`PassConfig::new`]'s geometry limits
    /// never reach it).
    pub fn step(&mut self, addr: u64) {
        let block = addr >> self.pass.block_bits();
        assert_ne!(
            block, INVALID_TAG,
            "address {addr:#x} exceeds the supported range"
        );
        self.counters.accesses += 1;
        self.now += 1;
        if self.opts.dup_elision && block == self.prev_block {
            // CRCB-style extension: the block was the previous request, so it
            // is resident (and MRU) at every level — a hit everywhere with no
            // state to update under FIFO, and an idempotent recency refresh
            // under LRU (no other block touched these sets in between).
            self.counters.duplicate_skips += 1;
            return;
        }
        self.prev_block = block;
        let assoc = self.pass.assoc() as usize;
        let lru = self.opts.policy == TreePolicy::Lru;
        // Global way index (within the previous level) of the entry that
        // holds `block` after handling — "the parent node's matching entry".
        let mut parent_way: Option<usize> = None;

        for li in 0..self.levels.len() {
            let set_bits = self.pass.min_set_bits() + li as u32;
            let set_idx = if set_bits == 0 {
                0
            } else {
                (block & ((1u64 << set_bits) - 1)) as usize
            };

            self.counters.node_evaluations += 1;
            self.counters.tag_comparisons += 1; // the MRA comparison
            let (lower, rest) = self.levels.split_at_mut(li);
            let level = &mut rest[0];
            let mut meta = level.meta[set_idx];

            let mra_match = meta.mra == block;
            if mra_match {
                if self.opts.mra_stop {
                    // Property 2: hit here and at every larger set count, for
                    // the pass associativity and for associativity 1 alike.
                    self.counters.mra_stops += 1;
                    return;
                }
            } else {
                // The direct-mapped cache at this level holds its most recent
                // requester, so an MRA mismatch is exactly a DM miss.
                level.dm_misses += 1;
            }

            let ways = &mut level.ways[set_idx * assoc..(set_idx + 1) * assoc];

            // Hit/miss determination: wave pointer, then MRE, then search.
            let mut determined: Option<Option<usize>> = None;
            if self.opts.wave {
                if let Some(pw) = parent_way {
                    let wave = lower[li - 1].ways[pw].wave;
                    if wave != EMPTY_WAVE {
                        // Property 3: a valid wave pointer names the only way
                        // this block can occupy, so one comparison decides.
                        self.counters.tag_comparisons += 1;
                        let w = wave as usize;
                        debug_assert!(w < assoc, "wave pointer within tag list");
                        if ways[w].tag == block {
                            self.counters.wave_hits += 1;
                            determined = Some(Some(w));
                        } else {
                            self.counters.wave_misses += 1;
                            determined = Some(None);
                        }
                    }
                }
            }
            if determined.is_none() && self.opts.mre {
                // Property 4: the most recently evicted block is certainly
                // not in the tag list.
                self.counters.tag_comparisons += 1;
                if meta.mre == block {
                    self.counters.mre_misses += 1;
                    determined = Some(None);
                }
            }
            let found = match determined {
                Some(f) => f,
                None => {
                    self.counters.searches += 1;
                    let valid = meta.valid as usize;
                    let mut found = None;
                    for (i, entry) in ways[..valid].iter().enumerate() {
                        self.counters.search_comparisons += 1;
                        self.counters.tag_comparisons += 1;
                        if entry.tag == block {
                            found = Some(i);
                            break;
                        }
                    }
                    found
                }
            };
            debug_assert!(
                !(mra_match && found.is_none()),
                "an MRA match implies residency; miss determination is wrong"
            );

            let n = match found {
                Some(n) => {
                    // Algorithm 1: Handle_hit.
                    meta.mra = block;
                    if lru {
                        level.last_access[set_idx * assoc + n] = self.now;
                    }
                    n
                }
                None => {
                    // Algorithm 2: Handle_miss.
                    meta.mra = block;
                    level.misses += 1;
                    let n = if lru {
                        if (meta.valid as usize) < assoc {
                            meta.valid as usize
                        } else {
                            let base = set_idx * assoc;
                            (0..assoc)
                                .min_by_key(|&i| level.last_access[base + i])
                                .expect("assoc >= 1")
                        }
                    } else {
                        // FIFO: the round-robin pointer designates the least
                        // recently inserted block (or the next empty way).
                        meta.fifo_ptr as usize
                    };
                    if self.opts.mre && meta.mre == block {
                        // Algorithm 2, line 5: exchange the victim way with
                        // the MRE entry, restoring the block's preserved wave
                        // pointer.
                        debug_assert_eq!(
                            meta.valid as usize, assoc,
                            "MRE only holds a tag after an eviction, which requires a full set"
                        );
                        std::mem::swap(&mut ways[n].tag, &mut meta.mre);
                        std::mem::swap(&mut ways[n].wave, &mut meta.mre_wave);
                    } else {
                        // Algorithm 2, lines 7-8: fresh insert; the evicted
                        // entry (tag and wave pointer) moves to the MRE slot.
                        let evicted = ways[n];
                        ways[n] = WayEntry {
                            tag: block,
                            wave: EMPTY_WAVE,
                        };
                        if evicted.tag == INVALID_TAG {
                            meta.valid += 1;
                        } else if self.opts.mre {
                            meta.mre = evicted.tag;
                            meta.mre_wave = evicted.wave;
                        }
                    }
                    if lru {
                        level.last_access[set_idx * assoc + n] = self.now;
                    } else {
                        meta.fifo_ptr = (meta.fifo_ptr + 1) % assoc as u32;
                    }
                    n
                }
            };
            level.meta[set_idx] = meta;
            // Algorithm 1 line 3 / Algorithm 2 line 10: refresh the parent's
            // matching entry's wave pointer.
            if self.opts.wave {
                if let Some(pw) = parent_way {
                    lower[li - 1].ways[pw].wave = n as u32;
                }
            }
            parent_way = Some(set_idx * assoc + n);
        }
    }

    /// Snapshot of the per-level miss counts.
    #[must_use]
    pub fn results(&self) -> PassResults {
        let levels = self
            .levels
            .iter()
            .enumerate()
            .map(|(li, l)| {
                LevelResult::new(self.pass.min_set_bits() + li as u32, l.misses, l.dm_misses)
            })
            .collect();
        PassResults::new(self.pass, self.counters.accesses, levels)
    }

    /// Storage the paper's 32-bit model assigns to this forest:
    /// `Σ_levels S × (96 + 64·A)` bits (Section 5).
    #[must_use]
    pub fn paper_model_bits(&self) -> u64 {
        let a = u64::from(self.pass.assoc());
        (self.pass.min_set_bits()..=self.pass.max_set_bits())
            .map(|sb| (1u64 << sb) * (96 + 64 * a))
            .sum()
    }

    /// Serialises the complete simulation state (geometry, options,
    /// counters, every node) to bytes. See [`crate::snapshot`] for the
    /// format and the use case.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64, MAGIC, VERSION};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.pass.assoc());
        let flags = u8::from(self.opts.mra_stop)
            | u8::from(self.opts.wave) << 1
            | u8::from(self.opts.mre) << 2
            | u8::from(self.opts.dup_elision) << 3
            | u8::from(self.opts.policy == TreePolicy::Lru) << 4;
        out.push(flags);
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_stops,
            c.wave_hits,
            c.wave_misses,
            c.mre_misses,
            c.searches,
            c.duplicate_skips,
            c.search_comparisons,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.now);
        put_u64(&mut out, self.prev_block);
        for level in &self.levels {
            put_u64(&mut out, level.misses);
            put_u64(&mut out, level.dm_misses);
            for m in &level.meta {
                put_u64(&mut out, m.mra);
                put_u64(&mut out, m.mre);
                put_u32(&mut out, m.mre_wave);
                put_u32(&mut out, m.fifo_ptr);
                put_u32(&mut out, m.valid);
            }
            for w in &level.ways {
                put_u64(&mut out, w.tag);
                put_u32(&mut out, w.wave);
            }
            for &t in &level.last_access {
                put_u64(&mut out, t);
            }
        }
        out
    }

    /// Restores a tree from [`DewTree::to_snapshot`] output. The snapshot is
    /// self-describing: geometry and options are recovered from it.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError, MAGIC, VERSION};
        let mut cur = Cursor::new(bytes);
        if cur.bytes(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits, assoc) =
            (cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?);
        let pass = PassConfig::new(block_bits, min_set_bits, max_set_bits, assoc)
            .map_err(|_| SnapshotError::Corrupt("invalid pass geometry"))?;
        let flags = cur.u8()?;
        let opts = DewOptions {
            mra_stop: flags & 1 != 0,
            wave: flags & 2 != 0,
            mre: flags & 4 != 0,
            dup_elision: flags & 8 != 0,
            policy: if flags & 16 != 0 {
                TreePolicy::Lru
            } else {
                TreePolicy::Fifo
            },
        };
        let mut tree =
            DewTree::new(pass, opts).map_err(|_| SnapshotError::Corrupt("unsound option flags"))?;
        let c = &mut tree.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.mra_stops = cur.u64()?;
        c.wave_hits = cur.u64()?;
        c.wave_misses = cur.u64()?;
        c.mre_misses = cur.u64()?;
        c.searches = cur.u64()?;
        c.duplicate_skips = cur.u64()?;
        c.search_comparisons = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        tree.now = cur.u64()?;
        tree.prev_block = cur.u64()?;
        let assoc = pass.assoc() as usize;
        for level in &mut tree.levels {
            level.misses = cur.u64()?;
            level.dm_misses = cur.u64()?;
            for m in &mut level.meta {
                m.mra = cur.u64()?;
                m.mre = cur.u64()?;
                m.mre_wave = cur.u32()?;
                m.fifo_ptr = cur.u32()?;
                m.valid = cur.u32()?;
                if m.fifo_ptr as usize >= assoc || m.valid as usize > assoc {
                    return Err(SnapshotError::Corrupt("node state out of range"));
                }
            }
            for w in &mut level.ways {
                w.tag = cur.u64()?;
                w.wave = cur.u32()?;
                if w.wave != EMPTY_WAVE && w.wave as usize >= assoc {
                    return Err(SnapshotError::Corrupt("wave pointer out of range"));
                }
            }
            for t in &mut level.last_access {
                *t = cur.u64()?;
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(tree)
    }

    /// Actual heap footprint of the forest's node storage in bytes
    /// (this implementation's 64-bit tags; excludes counters).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| {
                l.meta.len() * std::mem::size_of::<NodeMeta>()
                    + l.ways.len() * std::mem::size_of::<WayEntry>()
                    + l.last_access.len() * std::mem::size_of::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{Cache, CacheConfig, Replacement};

    fn fifo_tree(block_bits: u32, min: u32, max: u32, assoc: u32) -> DewTree {
        DewTree::new(
            PassConfig::new(block_bits, min, max, assoc).expect("valid pass"),
            DewOptions::default(),
        )
        .expect("valid options")
    }

    /// Reference miss count via the per-configuration simulator.
    fn reference_misses(
        sets: u32,
        assoc: u32,
        block_bytes: u32,
        policy: Replacement,
        addrs: &[u64],
    ) -> u64 {
        let mut cache =
            Cache::new(CacheConfig::new(sets, assoc, block_bytes, policy).expect("valid config"));
        for &a in addrs {
            cache.access(Record::read(a));
        }
        cache.stats().misses()
    }

    fn pseudo_random_addrs(n: usize, span: u64, seed: u64) -> Vec<u64> {
        // Deterministic xorshift mix: localised with occasional far jumps.
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 7 == 0 {
                    x % span
                } else {
                    (x % 64) * 4 + (i as u64 % 3) * 128
                }
            })
            .collect()
    }

    #[test]
    fn streaming_trace_misses_everywhere() {
        let mut t = fifo_tree(2, 0, 3, 2);
        for i in 0..64u64 {
            t.step(i * 4);
        }
        let r = t.results();
        for sets in [1u32, 2, 4, 8] {
            assert_eq!(r.misses(sets, 2), Some(64), "sets={sets}");
            assert_eq!(r.misses(sets, 1), Some(64), "sets={sets}");
        }
    }

    #[test]
    fn repeated_address_stops_at_the_root() {
        let mut t = fifo_tree(2, 0, 4, 4);
        for _ in 0..10 {
            t.step(0x40);
        }
        let c = t.counters();
        // First request walks all 5 levels; the other 9 stop at the root.
        assert_eq!(c.node_evaluations, 5 + 9);
        assert_eq!(c.mra_stops, 9);
        assert!(c.is_consistent());
        let r = t.results();
        assert_eq!(r.misses(1, 4), Some(1));
        assert_eq!(r.misses(16, 1), Some(1));
    }

    #[test]
    fn matches_reference_fifo_on_mixed_trace() {
        let addrs = pseudo_random_addrs(4000, 1 << 14, 0xDEB5_1234);
        for (block_bits, assoc) in [(0u32, 2u32), (2, 4), (4, 8), (6, 16), (2, 1)] {
            let mut t = fifo_tree(block_bits, 0, 6, assoc);
            for &a in &addrs {
                t.step(a);
            }
            assert!(t.counters().is_consistent());
            let r = t.results();
            for set_bits in 0..=6u32 {
                let sets = 1u32 << set_bits;
                let expected =
                    reference_misses(sets, assoc, 1 << block_bits, Replacement::Fifo, &addrs);
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(expected),
                    "sets={sets} assoc={assoc} block_bits={block_bits}"
                );
                let expected_dm =
                    reference_misses(sets, 1, 1 << block_bits, Replacement::Fifo, &addrs);
                assert_eq!(r.misses(sets, 1), Some(expected_dm), "DM sets={sets}");
            }
        }
    }

    #[test]
    fn matches_reference_lru_on_mixed_trace() {
        let addrs = pseudo_random_addrs(3000, 1 << 12, 0xABCD_EF01);
        let pass = PassConfig::new(2, 0, 5, 4).expect("valid");
        let mut t = DewTree::new(pass, DewOptions::lru()).expect("valid");
        for &a in &addrs {
            t.step(a);
        }
        assert!(t.counters().is_consistent());
        let r = t.results();
        for set_bits in 0..=5u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 4, 4, Replacement::Lru, &addrs);
            assert_eq!(r.misses(sets, 4), Some(expected), "LRU sets={sets}");
            let expected_dm = reference_misses(sets, 1, 4, Replacement::Lru, &addrs);
            assert_eq!(r.misses(sets, 1), Some(expected_dm), "LRU DM sets={sets}");
        }
    }

    #[test]
    fn properties_do_not_change_results() {
        let addrs = pseudo_random_addrs(2500, 1 << 12, 0x1357_9BDF);
        let pass = PassConfig::new(2, 0, 5, 4).expect("valid");
        let baseline = {
            let mut t = DewTree::new(pass, DewOptions::unoptimized()).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            t.results()
        };
        for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
            let mut t = DewTree::new(pass, opts).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            assert!(t.counters().is_consistent(), "{opts}");
            assert_eq!(t.results(), baseline, "results changed under {opts}");
        }
    }

    #[test]
    fn properties_reduce_work_monotonically() {
        // Byte-addressable sequential loop: consecutive requests share a
        // block (the paper's traces have this shape), so the MRA stop fires
        // on most requests and the short-circuit checks pay off.
        let addrs: Vec<u64> = (0..4000u64).map(|i| i % 640).collect();
        let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
        let run = |opts: DewOptions| {
            let mut t = DewTree::new(pass, opts).expect("valid");
            for &a in &addrs {
                t.step(a);
            }
            *t.counters()
        };
        let none = run(DewOptions::unoptimized());
        let full = run(DewOptions::default());
        assert!(
            full.node_evaluations < none.node_evaluations,
            "MRA stop prunes evaluations"
        );
        assert!(
            full.tag_comparisons < none.tag_comparisons,
            "properties cut comparisons"
        );
        assert_eq!(
            none.node_evaluations,
            none.unoptimized_evaluations(pass.num_levels()),
            "without the stop, every request visits every level"
        );
    }

    #[test]
    fn forest_with_min_sets_above_one() {
        let addrs = pseudo_random_addrs(1500, 1 << 10, 0xFEED_BEEF);
        let mut t = fifo_tree(2, 3, 6, 2);
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        assert_eq!(
            r.misses(4, 2),
            None,
            "below the forest's smallest set count"
        );
        for set_bits in 3..=6u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 2, 4, Replacement::Fifo, &addrs);
            assert_eq!(r.misses(sets, 2), Some(expected), "forest sets={sets}");
        }
    }

    #[test]
    fn single_level_tree_works() {
        let addrs = pseudo_random_addrs(500, 1 << 8, 0x600D_CAFE);
        let mut t = fifo_tree(0, 4, 4, 4);
        for &a in &addrs {
            t.step(a);
        }
        let expected = reference_misses(16, 4, 1, Replacement::Fifo, &addrs);
        assert_eq!(t.results().misses(16, 4), Some(expected));
    }

    #[test]
    fn assoc_one_tree_agrees_with_its_own_dm_results() {
        let addrs = pseudo_random_addrs(1000, 1 << 10, 0x0BAD_F00D);
        let mut t = fifo_tree(2, 0, 5, 1);
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        for l in r.levels() {
            assert_eq!(
                l.misses(),
                l.dm_misses(),
                "a 1-way tag list and the MRA entry simulate the same cache"
            );
        }
    }

    #[test]
    fn mre_restores_wave_pointers_across_evictions() {
        // Thrash two blocks in a direct-mapped root so evict/re-insert cycles
        // exercise the MRE exchange path (Algorithm 2 line 5).
        let mut t = fifo_tree(2, 0, 2, 1);
        for i in 0..40u64 {
            t.step(if i % 2 == 0 { 0x00 } else { 0x100 });
        }
        let c = t.counters();
        assert!(c.mre_misses > 0, "MRE determinations must fire: {c}");
        assert!(c.is_consistent());
        // Exactness under thrashing:
        let addrs: Vec<u64> = (0..40u64)
            .map(|i| if i % 2 == 0 { 0x00 } else { 0x100 })
            .collect();
        for set_bits in 0..=2u32 {
            let sets = 1u32 << set_bits;
            let expected = reference_misses(sets, 1, 4, Replacement::Fifo, &addrs);
            assert_eq!(t.results().misses(sets, 1), Some(expected));
        }
    }

    #[test]
    fn wave_pointers_fire_on_tree_descent() {
        // A loop over a few blocks: after warm-up, descents should be decided
        // by wave pointers or MRA stops, not searches.
        let mut t = fifo_tree(2, 0, 3, 4);
        let addrs: Vec<u64> = (0..12u64).map(|i| (i % 3) * 4).collect();
        for &a in &addrs {
            t.step(a);
        }
        let c = t.counters();
        assert!(c.wave_hits > 0, "wave hits expected: {c}");
        assert!(c.is_consistent());
    }

    #[test]
    fn belady_anomaly_exists_under_fifo() {
        // The canonical Belady sequence: FIFO with MORE capacity can miss
        // MORE. This is why FIFO has no inclusion property and why DEW cannot
        // reuse the LRU single-pass machinery (paper Section 1).
        let seq = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let addrs: Vec<u64> = seq.iter().map(|b| b * 4).collect();
        let m3 = reference_misses(1, 4, 4, Replacement::Fifo, &addrs[..]); // 4 ways
        let m4 = {
            // 3-way FIFO is not power-of-two; emulate via fully-assoc FIFO of
            // 3 blocks using a 1-set cache with assoc rounded? Instead compare
            // 4-way (1 set) against 8-way (1 set): classic anomaly needs 3 vs
            // 4 frames, so check against the DEW tree level structure instead:
            m3
        };
        let _ = m4;
        // Direct check of the anomaly with exact FIFO frame counts 3 and 4
        // using a tiny inline model (power-of-two caches can't express 3
        // ways).
        fn fifo_misses(frames: usize, seq: &[u64]) -> u32 {
            let mut q: Vec<u64> = Vec::new();
            let mut misses = 0;
            for &b in seq {
                if !q.contains(&b) {
                    misses += 1;
                    if q.len() == frames {
                        q.remove(0);
                    }
                    q.push(b);
                }
            }
            misses
        }
        assert!(
            fifo_misses(4, &seq) > fifo_misses(3, &seq),
            "Belady's anomaly: 4 frames must miss more than 3 on this sequence"
        );
    }

    #[test]
    fn memory_models() {
        let t = fifo_tree(2, 0, 2, 4);
        // Levels with 1, 2 and 4 sets: (1+2+4) x (96 + 64*4) bits.
        assert_eq!(t.paper_model_bits(), 7 * (96 + 256));
        assert!(t.footprint_bytes() > 0);
        let lru = DewTree::new(
            PassConfig::new(2, 0, 2, 4).expect("valid"),
            DewOptions::lru(),
        )
        .expect("valid");
        assert!(
            lru.footprint_bytes() > t.footprint_bytes(),
            "LRU stores access times"
        );
    }

    #[test]
    fn run_and_step_record_are_step_by_address() {
        let records: Vec<Record> = (0..50u64).map(|i| Record::read((i % 9) * 8)).collect();
        let mut a = fifo_tree(2, 0, 3, 2);
        a.run(records.iter().copied());
        let mut b = fifo_tree(2, 0, 3, 2);
        for r in &records {
            b.step_record(*r);
        }
        assert_eq!(a.results(), b.results());
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_address_panics() {
        let mut t = fifo_tree(0, 0, 1, 1);
        t.step(u64::MAX);
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let addrs = pseudo_random_addrs(3000, 1 << 12, 0x5AFE_5AFE);
        let (first, second) = addrs.split_at(1500);
        for opts in [
            DewOptions::default(),
            DewOptions::lru(),
            DewOptions::unoptimized(),
        ] {
            let pass = PassConfig::new(2, 0, 6, 4).expect("valid");
            // Uninterrupted run.
            let mut straight = DewTree::new(pass, opts).expect("sound");
            for &a in &addrs {
                straight.step(a);
            }
            // Checkpointed run: simulate half, snapshot, restore, finish.
            let mut head = DewTree::new(pass, opts).expect("sound");
            for &a in first {
                head.step(a);
            }
            let snapshot = head.to_snapshot();
            drop(head);
            let mut tail = DewTree::from_snapshot(&snapshot).expect("restores");
            assert_eq!(tail.pass(), &pass);
            assert_eq!(tail.options(), &opts);
            for &a in second {
                tail.step(a);
            }
            assert_eq!(tail.results(), straight.results(), "{opts}");
            assert_eq!(tail.counters(), straight.counters(), "{opts}");
        }
    }

    #[test]
    fn snapshot_rejects_foreign_and_corrupt_buffers() {
        use crate::snapshot::SnapshotError;
        assert!(matches!(
            DewTree::from_snapshot(b"nope"),
            Err(SnapshotError::Corrupt(_)) | Err(SnapshotError::BadMagic)
        ));
        let mut t = fifo_tree(2, 0, 2, 2);
        t.step(0x100);
        let mut snap = t.to_snapshot();
        // Wrong version.
        let mut wrong_version = snap.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            DewTree::from_snapshot(&wrong_version),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
        // Truncated.
        snap.truncate(snap.len() - 3);
        assert!(matches!(
            DewTree::from_snapshot(&snap),
            Err(SnapshotError::Corrupt(_))
        ));
        // Trailing garbage.
        let mut long = t.to_snapshot();
        long.push(0);
        assert!(matches!(
            DewTree::from_snapshot(&long),
            Err(SnapshotError::TrailingBytes(1))
        ));
    }

    #[test]
    fn duplicate_elision_preserves_results_and_skips_work() {
        // Byte-sequential accesses: with 16-byte blocks, 15 of every 16
        // requests repeat the previous block.
        let addrs: Vec<u64> = (0..2000u64).map(|i| i % 512).collect();
        let pass = PassConfig::new(4, 0, 5, 4).expect("valid");
        let plain = {
            let mut t = DewTree::new(pass, DewOptions::default()).expect("sound");
            for &a in &addrs {
                t.step(a);
            }
            (t.results(), *t.counters())
        };
        let elided = {
            let opts = DewOptions {
                dup_elision: true,
                ..DewOptions::default()
            };
            let mut t = DewTree::new(pass, opts).expect("sound");
            for &a in &addrs {
                t.step(a);
            }
            (t.results(), *t.counters())
        };
        assert_eq!(plain.0, elided.0, "elision must not change results");
        assert!(
            elided.1.duplicate_skips > 1000,
            "skips: {}",
            elided.1.duplicate_skips
        );
        assert!(elided.1.node_evaluations < plain.1.node_evaluations);
        assert!(elided.1.is_consistent());
    }

    #[test]
    fn duplicate_elision_is_exact_under_lru_too() {
        let addrs: Vec<u64> = (0..3000u64)
            .map(|i| {
                let x = (i * 2654435761) >> 5;
                (x % 128) * 2 // pairs of accesses to nearby bytes
            })
            .collect();
        let pass = PassConfig::new(2, 0, 4, 4).expect("valid");
        let opts = DewOptions {
            dup_elision: true,
            ..DewOptions::lru()
        };
        let mut t = DewTree::new(pass, opts).expect("sound");
        for &a in &addrs {
            t.step(a);
        }
        let r = t.results();
        for set_bits in 0..=4u32 {
            let sets = 1u32 << set_bits;
            for a in [1u32, 4] {
                let expected = reference_misses(sets, a, 4, Replacement::Lru, &addrs);
                assert_eq!(r.misses(sets, a), Some(expected), "sets={sets} assoc={a}");
            }
        }
    }
}
