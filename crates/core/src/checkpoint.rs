//! Sweep-level checkpoints: periodically persisted per-job kernel state so
//! a long sweep can crash at any point and resume bit-identically.
//!
//! A [`SweepCheckpoint`] is a sidecar file (magic `DEWC`) bundling, for
//! every fused job of a sweep (one per block size), the job's decode
//! position and its kernel snapshot — the same versioned
//! `DEWM`/`DEWL`/`DEWP`/`DEWU` buffers the sharded snapshot-handoff path
//! round-trips. Because a kernel
//! snapshot restores *exact* state (property-tested in
//! `tests/snapshot_and_timeline.rs`) and the fused kernels are insensitive
//! to how the record stream is chunked, "restore every job's kernel and
//! replay the remaining records" is not an approximation: it reproduces the
//! uninterrupted sweep bit for bit. The resilient drivers in
//! [`crate::sweep`] write and consume these through a [`CheckpointStore`].
//!
//! A checkpoint also records a *fingerprint* of the sweep it belongs to
//! (configuration space + options + policy), so resuming with a different
//! sweep shape is rejected up front instead of corrupting results. The
//! shard count is deliberately excluded: snapshot handoff is an identity,
//! so a checkpoint taken under one shard count resumes soundly under
//! another.
//!
//! # Wire format (version 1, little-endian)
//!
//! ```text
//! magic        b"DEWC"
//! version      u8 (currently 1)
//! policy       u8 (0 = fifo, 1 = lru, 2 = plru, 3 = slru)
//! fingerprint  u64
//! job_count    u32
//! per job:     block_bits u32, records_done u64, complete u8,
//!              kernel_len u32, kernel bytes (the policy kernel's own
//!              snapshot format; a complete job stores its final kernel
//!              so a resumed sweep can still fan its results out)
//! ```

use std::io::Write;
use std::sync::{Mutex, PoisonError};

use crate::options::{DewOptions, TreePolicy};
use crate::snapshot::{put_u32, put_u64, Cursor, SnapshotError};
use crate::space::ConfigSpace;

/// File magic of the sweep-checkpoint sidecar format.
pub const CKPT_MAGIC: [u8; 4] = *b"DEWC";
/// Current sweep-checkpoint format version.
pub const CKPT_VERSION: u8 = 1;

/// Persisted progress of one fused sweep job (one block size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCheckpoint {
    /// log2 of the job's block size in bytes.
    pub block_bits: u32,
    /// Records the job has consumed; resume replays the source from here.
    pub records_done: u64,
    /// Whether the job ran to the end of the trace (its results are final
    /// and `kernel` may be the job's last pre-completion snapshot).
    pub complete: bool,
    /// The kernel's `to_snapshot` buffer at `records_done`.
    pub kernel: Vec<u8>,
}

/// A point-in-time capture of a whole sweep: every job's kernel state and
/// decode position, plus the identity of the sweep they belong to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCheckpoint {
    fingerprint: u64,
    policy: TreePolicy,
    jobs: Vec<JobCheckpoint>,
}

impl SweepCheckpoint {
    /// An empty checkpoint for the sweep identified by `fingerprint`.
    pub(crate) fn new(fingerprint: u64, policy: TreePolicy) -> Self {
        SweepCheckpoint {
            fingerprint,
            policy,
            jobs: Vec::new(),
        }
    }

    /// The fingerprint of the sweep this checkpoint belongs to
    /// ([`sweep_fingerprint`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The replacement policy of the checkpointed sweep.
    #[must_use]
    pub fn policy(&self) -> TreePolicy {
        self.policy
    }

    /// All per-job captures, in no particular order.
    #[must_use]
    pub fn jobs(&self) -> &[JobCheckpoint] {
        &self.jobs
    }

    /// The capture for the job simulating `1 << block_bits`-byte blocks.
    #[must_use]
    pub fn job(&self, block_bits: u32) -> Option<&JobCheckpoint> {
        self.jobs.iter().find(|j| j.block_bits == block_bits)
    }

    /// Inserts or replaces the capture for `block_bits`.
    pub(crate) fn update_job(
        &mut self,
        block_bits: u32,
        records_done: u64,
        kernel: Vec<u8>,
        complete: bool,
    ) {
        let job = JobCheckpoint {
            block_bits,
            records_done,
            complete,
            kernel,
        };
        match self.jobs.iter_mut().find(|j| j.block_bits == block_bits) {
            Some(slot) => *slot = job,
            None => self.jobs.push(job),
        }
    }

    /// Serialises the checkpoint to the `DEWC` wire format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CKPT_MAGIC);
        out.push(CKPT_VERSION);
        out.push(match self.policy {
            TreePolicy::Fifo => 0,
            TreePolicy::Lru => 1,
            TreePolicy::Plru => 2,
            TreePolicy::Slru => 3,
        });
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, u32::try_from(self.jobs.len()).expect("job count"));
        for job in &self.jobs {
            put_u32(&mut out, job.block_bits);
            put_u64(&mut out, job.records_done);
            out.push(u8::from(job.complete));
            put_u32(&mut out, u32::try_from(job.kernel.len()).expect("kernel"));
            out.extend_from_slice(&job.kernel);
        }
        out
    }

    /// Decodes a checkpoint written by [`SweepCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] for foreign, truncated, trailing-garbage or
    /// internally inconsistent buffers. Per-job kernel buffers are carried
    /// opaquely; they are validated by the kernel's own `from_snapshot`
    /// when the resume actually restores them.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut cur = Cursor::new(bytes);
        if cur.bytes(4)? != CKPT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != CKPT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let policy = match cur.u8()? {
            0 => TreePolicy::Fifo,
            1 => TreePolicy::Lru,
            2 => TreePolicy::Plru,
            3 => TreePolicy::Slru,
            _ => return Err(SnapshotError::Corrupt("unknown checkpoint policy byte")),
        };
        let fingerprint = cur.u64()?;
        let job_count = cur.u32()? as usize;
        let mut jobs = Vec::with_capacity(job_count.min(1024));
        for _ in 0..job_count {
            let block_bits = cur.u32()?;
            let records_done = cur.u64()?;
            let complete = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Corrupt("bad job completion flag")),
            };
            let kernel_len = cur.u32()? as usize;
            let kernel = cur.bytes(kernel_len)?.to_vec();
            if jobs
                .iter()
                .any(|j: &JobCheckpoint| j.block_bits == block_bits)
            {
                return Err(SnapshotError::Corrupt("duplicate job block size"));
            }
            jobs.push(JobCheckpoint {
                block_bits,
                records_done,
                complete,
                kernel,
            });
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(SweepCheckpoint {
            fingerprint,
            policy,
            jobs,
        })
    }
}

/// Fingerprint of a sweep's identity — configuration space, kernel options
/// and policy folded through FNV-1a — used to reject resuming a checkpoint
/// into a *different* sweep. The shard count and thread count are excluded
/// on purpose: neither affects results (snapshot handoff is an identity and
/// job scheduling is deterministic per job), so a checkpoint is portable
/// across them.
#[must_use]
pub fn sweep_fingerprint(space: &ConfigSpace, options: DewOptions) -> u64 {
    let (s0, s1) = space.set_bits();
    let (b0, b1) = space.block_bits();
    let (a0, a1) = space.assoc_bits();
    // Two policy bits at 4..=5: FIFO=0 and LRU=1 keep the exact encodings
    // (and therefore fingerprints) of the two-policy format, so old
    // checkpoints resume unchanged.
    let policy_code: u64 = match options.policy {
        TreePolicy::Fifo => 0,
        TreePolicy::Lru => 1,
        TreePolicy::Plru => 2,
        TreePolicy::Slru => 3,
    };
    let flags = u64::from(options.mra_stop)
        | u64::from(options.wave) << 1
        | u64::from(options.mre) << 2
        | u64::from(options.dup_elision) << 3
        | policy_code << 4;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [
        u64::from(s0),
        u64::from(s1),
        u64::from(b0),
        u64::from(b1),
        u64::from(a0),
        u64::from(a1),
        flags,
    ] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Where resilient sweeps persist their periodic [`SweepCheckpoint`]s.
///
/// Implementations must be safe to call from multiple worker threads; the
/// drivers serialise full-checkpoint images, so each `save` call replaces
/// the previous one.
pub trait CheckpointStore: Sync {
    /// Atomically replaces the persisted checkpoint with `bytes`.
    ///
    /// # Errors
    ///
    /// A human-readable message when persisting failed; the sweep treats a
    /// failed save as fatal for the *checkpointing contract* (the run
    /// aborts rather than silently continuing unprotected).
    fn save(&self, bytes: &[u8]) -> Result<(), String>;
}

/// A [`CheckpointStore`] writing to a file via tmp-file-then-rename, so a
/// crash mid-save never leaves a torn checkpoint behind.
#[derive(Debug)]
pub struct FileCheckpointStore {
    path: std::path::PathBuf,
}

impl FileCheckpointStore {
    /// A store persisting to `path` (its parent directory must exist).
    #[must_use]
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        FileCheckpointStore { path: path.into() }
    }

    /// The destination path of the checkpoint file.
    #[must_use]
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileCheckpointStore {
    fn save(&self, bytes: &[u8]) -> Result<(), String> {
        let mut tmp = self.path.clone();
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        tmp.set_file_name(name);
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &self.path)
        };
        write().map_err(|e| format!("cannot write checkpoint {}: {e}", self.path.display()))
    }
}

/// An in-memory [`CheckpointStore`] recording every saved image, for tests
/// and for the chaos harness: each history entry is a valid kill point a
/// resume can start from.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    history: Mutex<Vec<Vec<u8>>>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        MemoryCheckpointStore::default()
    }

    /// The most recently saved checkpoint image, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Vec<u8>> {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .last()
            .cloned()
    }

    /// Every image ever saved, oldest first.
    #[must_use]
    pub fn history(&self) -> Vec<Vec<u8>> {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&self, bytes: &[u8]) -> Result<(), String> {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(bytes.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepCheckpoint {
        let mut c = SweepCheckpoint::new(0xFEED_F00D, TreePolicy::Lru);
        c.update_job(4, 1_000, vec![1, 2, 3], false);
        c.update_job(5, 2_500, vec![9; 40], true);
        c
    }

    #[test]
    fn wire_format_round_trips() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = SweepCheckpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, c);
        assert_eq!(back.job(5).expect("job").records_done, 2_500);
        assert!(back.job(5).expect("job").complete);
        assert!(back.job(6).is_none());
    }

    #[test]
    fn update_job_replaces_in_place() {
        let mut c = sample();
        c.update_job(4, 1_500, vec![7], false);
        assert_eq!(c.jobs().len(), 2);
        assert_eq!(c.job(4).expect("job").records_done, 1_500);
    }

    #[test]
    fn damaged_buffers_are_rejected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            SweepCheckpoint::from_bytes(b"DEWS rest"),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            SweepCheckpoint::from_bytes(&bytes[..bytes.len() - 2]),
            Err(SnapshotError::Corrupt("unexpected end of snapshot"))
        );
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            SweepCheckpoint::from_bytes(&padded),
            Err(SnapshotError::TrailingBytes(1))
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            SweepCheckpoint::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(99))
        );
        let mut bad_policy = bytes;
        bad_policy[5] = 7;
        assert!(matches!(
            SweepCheckpoint::from_bytes(&bad_policy),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn policy_byte_round_trips_for_every_policy() {
        for policy in TreePolicy::ALL {
            let c = SweepCheckpoint::new(1, policy);
            let back = SweepCheckpoint::from_bytes(&c.to_bytes()).expect("round trip");
            assert_eq!(back.policy(), policy);
        }
    }

    #[test]
    fn fingerprint_separates_policies() {
        let space = ConfigSpace::new((0, 4), (2, 4), (0, 2)).expect("valid");
        let prints: Vec<u64> = TreePolicy::ALL
            .iter()
            .map(|&p| sweep_fingerprint(&space, DewOptions::for_policy(p)))
            .collect();
        for i in 0..prints.len() {
            for j in i + 1..prints.len() {
                assert_ne!(prints[i], prints[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn fingerprint_separates_sweep_shapes() {
        let a = ConfigSpace::new((0, 4), (2, 4), (0, 2)).expect("valid");
        let b = ConfigSpace::new((0, 4), (2, 5), (0, 2)).expect("valid");
        let opts = DewOptions::default();
        assert_eq!(sweep_fingerprint(&a, opts), sweep_fingerprint(&a, opts));
        assert_ne!(sweep_fingerprint(&a, opts), sweep_fingerprint(&b, opts));
        let lru = DewOptions {
            policy: TreePolicy::Lru,
            mra_stop: false,
            ..opts
        };
        assert_ne!(sweep_fingerprint(&a, opts), sweep_fingerprint(&a, lru));
        let mra_off = DewOptions {
            mra_stop: false,
            ..opts
        };
        assert_ne!(sweep_fingerprint(&a, opts), sweep_fingerprint(&a, mra_off));
    }

    #[test]
    fn file_store_replaces_atomically() {
        let dir = std::env::temp_dir().join(format!("dew_ckpt_store_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("sweep.dewc");
        let store = FileCheckpointStore::new(&path);
        store.save(&sample().to_bytes()).expect("first save");
        let mut second = sample();
        second.update_job(4, 9_999, vec![4, 5], false);
        store.save(&second.to_bytes()).expect("second save");
        let back =
            SweepCheckpoint::from_bytes(&std::fs::read(&path).expect("read")).expect("decode");
        assert_eq!(back.job(4).expect("job").records_done, 9_999);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn memory_store_keeps_history() {
        let store = MemoryCheckpointStore::new();
        assert!(store.latest().is_none());
        store.save(&[1]).expect("save");
        store.save(&[2, 2]).expect("save");
        assert_eq!(store.latest(), Some(vec![2, 2]));
        assert_eq!(store.history().len(), 2);
    }
}
