//! Result types: per-level miss counts of a pass and aggregated sweep tables.

use std::collections::HashMap;
use std::fmt;

use crate::counters::DewCounters;
use crate::options::TreePolicy;
use crate::simd::KernelBackend;
use crate::space::PassConfig;

/// Miss counts for one forest level (one simulated set count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelResult {
    set_bits: u32,
    misses: u64,
    dm_misses: u64,
}

impl LevelResult {
    pub(crate) fn new(set_bits: u32, misses: u64, dm_misses: u64) -> Self {
        LevelResult {
            set_bits,
            misses,
            dm_misses,
        }
    }

    /// `log2` of the set count of this level.
    #[must_use]
    pub const fn set_bits(&self) -> u32 {
        self.set_bits
    }

    /// The set count of this level.
    #[must_use]
    pub const fn sets(&self) -> u32 {
        1 << self.set_bits
    }

    /// Misses of the cache with this set count at the pass associativity.
    #[must_use]
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Misses of the direct-mapped cache with this set count (the free
    /// associativity-1 results produced by the MRA comparisons).
    #[must_use]
    pub const fn dm_misses(&self) -> u64 {
        self.dm_misses
    }
}

/// The complete output of one DEW pass: per-level miss counts for the pass
/// associativity and for associativity 1.
///
/// # Examples
///
/// ```
/// use dew_core::{DewOptions, DewTree, PassConfig};
/// use dew_trace::Record;
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// let mut tree = DewTree::new(PassConfig::new(2, 0, 3, 4)?, DewOptions::default())?;
/// for i in 0..100u64 {
///     tree.step_record(Record::read(i * 4));
/// }
/// let results = tree.results();
/// // A pure streaming workload misses everywhere:
/// assert_eq!(results.misses(8, 4), Some(100));
/// assert_eq!(results.misses(8, 1), Some(100));
/// assert_eq!(results.misses(8, 2), None); // not simulated by this pass
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassResults {
    pass: PassConfig,
    accesses: u64,
    levels: Vec<LevelResult>,
}

impl PassResults {
    pub(crate) fn new(pass: PassConfig, accesses: u64, levels: Vec<LevelResult>) -> Self {
        PassResults {
            pass,
            accesses,
            levels,
        }
    }

    /// The pass this result belongs to.
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// Requests simulated.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Per-level results, smallest set count first.
    #[must_use]
    pub fn levels(&self) -> &[LevelResult] {
        &self.levels
    }

    /// Miss count of the cache with `sets` sets at `assoc` ways, if this pass
    /// simulated that combination (`assoc` must be 1 or the pass
    /// associativity; `sets` must be a simulated power of two).
    #[must_use]
    pub fn misses(&self, sets: u32, assoc: u32) -> Option<u64> {
        if !sets.is_power_of_two() {
            return None;
        }
        let set_bits = sets.trailing_zeros();
        if set_bits < self.pass.min_set_bits() || set_bits > self.pass.max_set_bits() {
            return None;
        }
        let level = &self.levels[(set_bits - self.pass.min_set_bits()) as usize];
        if assoc == self.pass.assoc() {
            Some(level.misses())
        } else if assoc == 1 {
            Some(level.dm_misses())
        } else {
            None
        }
    }

    /// Hit count, complementary to [`PassResults::misses`].
    #[must_use]
    pub fn hits(&self, sets: u32, assoc: u32) -> Option<u64> {
        self.misses(sets, assoc).map(|m| self.accesses - m)
    }

    /// Miss rate in `0.0..=1.0`; `None` for combinations this pass did not
    /// simulate, `0.0` for an empty run.
    #[must_use]
    pub fn miss_rate(&self, sets: u32, assoc: u32) -> Option<f64> {
        self.misses(sets, assoc).map(|m| {
            if self.accesses == 0 {
                0.0
            } else {
                m as f64 / self.accesses as f64
            }
        })
    }
}

impl fmt::Display for PassResults {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pass {} over {} requests:", self.pass, self.accesses)?;
        for l in &self.levels {
            writeln!(
                f,
                "  sets {:>6}: misses(A={}) {:>10}, misses(A=1) {:>10}",
                l.sets(),
                self.pass.assoc(),
                l.misses(),
                l.dm_misses()
            )?;
        }
        Ok(())
    }
}

/// Miss counts for every `(set count, associativity)` pair produced by a
/// single pass of an all-associativity simulator ([`crate::lru_tree::LruTreeSimulator`]
/// or [`crate::MultiAssocTree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllAssocResults {
    pass: PassConfig,
    accesses: u64,
    assoc_list: Vec<u32>,
    /// `misses[level][assoc_index]`.
    misses: Vec<Vec<u64>>,
}

impl AllAssocResults {
    pub(crate) fn new(
        pass: PassConfig,
        accesses: u64,
        assoc_list: Vec<u32>,
        misses: Vec<Vec<u64>>,
    ) -> Self {
        debug_assert_eq!(misses.len() as u32, pass.num_levels());
        debug_assert!(misses.iter().all(|m| m.len() == assoc_list.len()));
        AllAssocResults {
            pass,
            accesses,
            assoc_list,
            misses,
        }
    }

    /// Requests simulated.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// Miss count for `sets` sets at `assoc` ways, if simulated.
    #[must_use]
    pub fn misses(&self, sets: u32, assoc: u32) -> Option<u64> {
        if !sets.is_power_of_two() {
            return None;
        }
        let set_bits = sets.trailing_zeros();
        if set_bits < self.pass.min_set_bits() || set_bits > self.pass.max_set_bits() {
            return None;
        }
        let ai = self.assoc_list.iter().position(|&a| a == assoc)?;
        Some(self.misses[(set_bits - self.pass.min_set_bits()) as usize][ai])
    }

    /// Miss rate for `sets` sets at `assoc` ways, if simulated.
    #[must_use]
    pub fn miss_rate(&self, sets: u32, assoc: u32) -> Option<f64> {
        self.misses(sets, assoc).map(|m| {
            if self.accesses == 0 {
                0.0
            } else {
                m as f64 / self.accesses as f64
            }
        })
    }
}

/// One fully-specified configuration result inside a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigResult {
    /// Number of sets.
    pub sets: u32,
    /// Associativity.
    pub assoc: u32,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Total misses over the trace.
    pub misses: u64,
}

impl ConfigResult {
    /// Total cache capacity in bytes.
    #[must_use]
    pub const fn total_bytes(&self) -> u64 {
        self.sets as u64 * self.assoc as u64 * self.block_bytes as u64
    }
}

/// Per-configuration uncertainty of an approximate (warmup-overlap sharded
/// or interval-sampled) sweep: how many accesses may have been
/// misclassified by cold starts at shard or cluster boundaries.
///
/// For every boundary after the first, at most
/// `min(first-touch blocks in the measured region, sets × assoc)` accesses
/// are unknowns — an access that is *not* the window's first touch of its
/// block is classified exactly, because its reuse interval lies entirely
/// inside the contiguous replayed window. Summing that cap over boundaries
/// gives the reported slack.
///
/// Under **LRU** the slack is a guarantee ([`ShardBounds::guaranteed`] is
/// `true`): the stack property confines every divergence to the unknown
/// accesses, so the true miss count lies within `slack` of the estimate.
/// Under **FIFO** there is no inclusion property (Belady's anomaly) — a
/// cold-start divergence can cascade past the first-touch set — so the same
/// figure is reported as a diagnostic with `guaranteed == false`; see
/// `DESIGN.md` ("Sharding and cold-start reconciliation").
#[derive(Debug, Clone)]
pub struct ShardBounds {
    slack: HashMap<(u32, u32, u32), u64>,
    guaranteed: bool,
}

impl ShardBounds {
    pub(crate) fn new(slack: HashMap<(u32, u32, u32), u64>, guaranteed: bool) -> Self {
        ShardBounds { slack, guaranteed }
    }

    /// Maximum possibly-misclassified accesses for `(sets, assoc,
    /// block_bytes)`, if in the swept space.
    #[must_use]
    pub fn slack(&self, sets: u32, assoc: u32, block_bytes: u32) -> Option<u64> {
        self.slack.get(&(sets, assoc, block_bytes)).copied()
    }

    /// Whether the slack is a sound bound (LRU) or a cold-start diagnostic
    /// (FIFO — no inclusion across boundaries).
    #[must_use]
    pub const fn guaranteed(&self) -> bool {
        self.guaranteed
    }

    /// The largest slack over all configurations (worst-case uncertainty).
    #[must_use]
    pub fn max_slack(&self) -> u64 {
        self.slack.values().copied().max().unwrap_or(0)
    }
}

/// What sank a fused sweep job in a resilient (degraded-mode) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The trace source failed fatally (or exhausted its retries).
    Source,
    /// The kernel panicked; the panic was isolated to this job.
    Panic,
    /// The job was cancelled cooperatively — an explicit
    /// [`crate::CancelToken::cancel`] or an expired deadline. The job's
    /// final state was checkpointed (when checkpointing was enabled), so a
    /// cancelled job is resumable, not lost.
    Cancelled,
}

/// One fused job that a resilient sweep could not complete. A fused job
/// covers every configuration sharing a block size, so a failure flags all
/// `(sets, assoc)` combinations at that block size
/// ([`SweepOutcome::config_error`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// log2 of the failed job's block size in bytes.
    pub block_bits: u32,
    /// Records the job had consumed when it failed.
    pub records_done: u64,
    /// Human-readable failure description (source error or panic message),
    /// including the job's block size and policy.
    pub error: String,
    /// Whether the source or the kernel failed.
    pub kind: FailureKind,
}

/// Aggregated results of a multi-pass sweep over a configuration space.
///
/// Built by [`crate::sweep_trace`]; maps every `(sets, assoc, block)` of the
/// space to its exact miss count, and retains the per-pass work counters.
/// Resilient drivers ([`crate::sweep_trace_resilient`] and friends) may
/// return a *partial* outcome: [`SweepOutcome::is_partial`] flags it, and
/// [`SweepOutcome::failed_jobs`] / [`SweepOutcome::retries`] /
/// [`SweepOutcome::records_lost`] carry the honest accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    accesses: u64,
    misses: HashMap<(u32, u32, u32), u64>,
    passes: Vec<(PassConfig, DewCounters)>,
    trace_traversals: u64,
    policy: TreePolicy,
    records_simulated: u64,
    bounds: Option<ShardBounds>,
    failed: Vec<JobFailure>,
    retries: u64,
    records_lost: u64,
    kernel_backend: KernelBackend,
}

impl SweepOutcome {
    pub(crate) fn new(
        accesses: u64,
        misses: HashMap<(u32, u32, u32), u64>,
        passes: Vec<(PassConfig, DewCounters)>,
        trace_traversals: u64,
        policy: TreePolicy,
    ) -> Self {
        SweepOutcome {
            accesses,
            misses,
            passes,
            trace_traversals,
            policy,
            records_simulated: accesses * trace_traversals,
            bounds: None,
            failed: Vec::new(),
            retries: 0,
            records_lost: 0,
            // The drivers build their kernels from the same process-wide
            // detection (after the startup selftest has vetted it), so the
            // active backend at completion is the backend the sweep ran on.
            kernel_backend: KernelBackend::active(),
        }
    }

    /// Attaches a degraded run's failure accounting.
    pub(crate) fn with_failures(
        mut self,
        failed: Vec<JobFailure>,
        retries: u64,
        records_lost: u64,
    ) -> Self {
        self.failed = failed;
        self.retries = retries;
        self.records_lost = records_lost;
        self
    }

    /// Overrides the records-simulated tally (warmup-overlap sharding
    /// replays overlap records beyond `accesses × traversals`).
    pub(crate) fn with_records_simulated(mut self, records_simulated: u64) -> Self {
        self.records_simulated = records_simulated;
        self
    }

    /// Attaches the cold-start uncertainty of an approximate sweep.
    pub(crate) fn with_bounds(mut self, bounds: ShardBounds) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Requests in the swept trace.
    #[must_use]
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The replacement policy every configuration was simulated under
    /// ([`crate::DewOptions::policy`] of the sweep's options). Downstream
    /// consumers — e.g. design-space exploration merging FIFO and LRU
    /// sweeps — use this to label results without carrying the options
    /// alongside the outcome.
    #[must_use]
    pub const fn policy(&self) -> TreePolicy {
        self.policy
    }

    /// The tag-scan backend the sweep's kernels ran their batched scans on
    /// (`scalar` / `sse2` / `avx2`). Purely diagnostic: the startup
    /// selftest and the differential test suite prove every backend
    /// bit-identical, so this never explains a result — only how fast it
    /// arrived. `dew sweep` and `dew explore` print it.
    #[must_use]
    pub const fn kernel_backend(&self) -> KernelBackend {
        self.kernel_backend
    }

    /// How many times the sweep iterated the trace (equivalently, how many
    /// times it decoded block numbers). Both fused schedulers — FIFO
    /// through [`crate::MultiAssocTree`]'s per-associativity tag lists, LRU
    /// through [`crate::lru_tree::LruTreeSimulator`]'s stack property —
    /// perform exactly one traversal per block size regardless of the
    /// associativity range.
    #[must_use]
    pub const fn trace_traversals(&self) -> u64 {
        self.trace_traversals
    }

    /// Total records fed through a kernel, across all traversals — the
    /// truthful work tally. A plain sweep simulates
    /// `accesses × trace_traversals`; a warmup-overlap sharded sweep
    /// additionally replays up to `overlap` records per interior shard
    /// boundary per traversal, and that replay is counted here (it is work
    /// performed) while [`SweepOutcome::trace_traversals`] still reports
    /// one traversal per block size.
    #[must_use]
    pub const fn records_simulated(&self) -> u64 {
        self.records_simulated
    }

    /// Cold-start uncertainty of an approximate sweep
    /// ([`crate::sweep_trace_sharded`] in warmup-overlap mode,
    /// [`crate::sweep_trace_sampled`]); `None` for exact sweeps, including
    /// snapshot-handoff sharding.
    #[must_use]
    pub fn bounds(&self) -> Option<&ShardBounds> {
        self.bounds.as_ref()
    }

    /// Fused jobs a resilient sweep could not complete (empty for the
    /// non-resilient drivers and for clean resilient runs).
    #[must_use]
    pub fn failed_jobs(&self) -> &[JobFailure] {
        &self.failed
    }

    /// Transient-failure retries performed across all jobs of a resilient
    /// sweep (each successful retry recovered the job without data loss).
    #[must_use]
    pub const fn retries(&self) -> u64 {
        self.retries
    }

    /// Records the failed jobs did *not* simulate, summed over
    /// [`SweepOutcome::failed_jobs`] — the truthful size of the hole in a
    /// partial outcome. Zero for complete runs.
    #[must_use]
    pub const fn records_lost(&self) -> u64 {
        self.records_lost
    }

    /// Whether this outcome is missing results for some configurations
    /// (degraded mode swallowed at least one job failure).
    #[must_use]
    pub fn is_partial(&self) -> bool {
        !self.failed.is_empty()
    }

    /// The failure covering `block_bytes`-byte-block configurations, if
    /// that fused job failed. Failures are per fused job — one job per
    /// block size — so every `(sets, assoc)` at this block size shares the
    /// same error.
    #[must_use]
    pub fn config_error(&self, block_bytes: u32) -> Option<&JobFailure> {
        self.failed
            .iter()
            .find(|f| 1u32 << f.block_bits == block_bytes)
    }

    /// Number of configurations with results.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.misses.len()
    }

    /// Miss count for `(sets, assoc, block_bytes)`, if in the swept space.
    #[must_use]
    pub fn misses(&self, sets: u32, assoc: u32, block_bytes: u32) -> Option<u64> {
        self.misses.get(&(sets, assoc, block_bytes)).copied()
    }

    /// Miss rate for `(sets, assoc, block_bytes)`, if in the swept space.
    #[must_use]
    pub fn miss_rate(&self, sets: u32, assoc: u32, block_bytes: u32) -> Option<f64> {
        self.misses(sets, assoc, block_bytes).map(|m| {
            if self.accesses == 0 {
                0.0
            } else {
                m as f64 / self.accesses as f64
            }
        })
    }

    /// Iterates every configuration result, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ConfigResult> + '_ {
        self.misses
            .iter()
            .map(|(&(sets, assoc, block_bytes), &misses)| ConfigResult {
                sets,
                assoc,
                block_bytes,
                misses,
            })
    }

    /// Every configuration result, sorted by (block, assoc, sets) for stable
    /// reporting.
    #[must_use]
    pub fn sorted(&self) -> Vec<ConfigResult> {
        let mut v: Vec<ConfigResult> = self.iter().collect();
        v.sort_by_key(|c| (c.block_bytes, c.assoc, c.sets));
        v
    }

    /// The per-pass work counters, in pass order.
    #[must_use]
    pub fn passes(&self) -> &[(PassConfig, DewCounters)] {
        &self.passes
    }

    /// Sum of all passes' work counters.
    #[must_use]
    pub fn total_counters(&self) -> DewCounters {
        self.passes
            .iter()
            .fold(DewCounters::new(), |acc, (_, c)| acc + *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_result_capacity() {
        let c = ConfigResult {
            sets: 64,
            assoc: 4,
            block_bytes: 16,
            misses: 0,
        };
        assert_eq!(c.total_bytes(), 4096);
    }

    #[test]
    fn sweep_outcome_lookup_and_sort() {
        let mut m = HashMap::new();
        m.insert((1u32, 1u32, 4u32), 10u64);
        m.insert((2, 1, 4), 8);
        m.insert((1, 2, 4), 9);
        let o = SweepOutcome::new(100, m, Vec::new(), 2, TreePolicy::Fifo);
        assert_eq!(o.trace_traversals(), 2);
        assert_eq!(o.policy(), TreePolicy::Fifo);
        assert_eq!(o.misses(2, 1, 4), Some(8));
        assert_eq!(o.misses(4, 1, 4), None);
        assert_eq!(o.miss_rate(1, 1, 4), Some(0.1));
        assert_eq!(o.config_count(), 3);
        let sorted = o.sorted();
        assert_eq!(sorted.len(), 3);
        assert!(sorted.windows(2).all(|w| {
            (w[0].block_bytes, w[0].assoc, w[0].sets) <= (w[1].block_bytes, w[1].assoc, w[1].sets)
        }));
    }

    #[test]
    fn records_simulated_defaults_to_accesses_times_traversals() {
        let mut m = HashMap::new();
        m.insert((1u32, 1u32, 4u32), 1u64);
        let o = SweepOutcome::new(100, m, Vec::new(), 3, TreePolicy::Fifo);
        assert_eq!(o.records_simulated(), 300);
        assert!(o.bounds().is_none());
        let o = o.with_records_simulated(340);
        assert_eq!(o.records_simulated(), 340);
    }

    #[test]
    fn shard_bounds_lookup_and_flags() {
        let mut slack = HashMap::new();
        slack.insert((4u32, 2u32, 16u32), 7u64);
        slack.insert((8, 2, 16), 12);
        let b = ShardBounds::new(slack, true);
        assert_eq!(b.slack(4, 2, 16), Some(7));
        assert_eq!(b.slack(4, 4, 16), None);
        assert_eq!(b.max_slack(), 12);
        assert!(b.guaranteed());
        assert_eq!(ShardBounds::new(HashMap::new(), false).max_slack(), 0);
    }

    #[test]
    fn failure_accounting_flags_partial_outcomes() {
        let mut m = HashMap::new();
        m.insert((1u32, 1u32, 4u32), 10u64);
        let clean = SweepOutcome::new(100, m.clone(), Vec::new(), 1, TreePolicy::Fifo);
        assert!(!clean.is_partial());
        assert_eq!(clean.retries(), 0);
        assert_eq!(clean.records_lost(), 0);
        assert!(clean.failed_jobs().is_empty());

        let failure = JobFailure {
            block_bits: 3,
            records_done: 40,
            error: "block 8B (fifo): at record 40: boom".into(),
            kind: FailureKind::Source,
        };
        let partial = SweepOutcome::new(100, m, Vec::new(), 2, TreePolicy::Fifo).with_failures(
            vec![failure.clone()],
            5,
            60,
        );
        assert!(partial.is_partial());
        assert_eq!(partial.retries(), 5);
        assert_eq!(partial.records_lost(), 60);
        assert_eq!(partial.failed_jobs(), &[failure]);
        // Failures are keyed by the fused job's block size.
        assert_eq!(partial.config_error(8).expect("failed").records_done, 40);
        assert!(partial.config_error(4).is_none());
        assert_eq!(
            partial.config_error(8).expect("failed").kind,
            FailureKind::Source
        );
    }

    #[test]
    fn empty_outcome_miss_rate_is_zero() {
        let mut m = HashMap::new();
        m.insert((1u32, 1u32, 4u32), 0u64);
        let o = SweepOutcome::new(0, m, Vec::new(), 1, TreePolicy::Lru);
        assert_eq!(o.miss_rate(1, 1, 4), Some(0.0));
        assert_eq!(o.policy(), TreePolicy::Lru);
    }
}
