//! Resilience policy for long sweeps: retry/backoff parameters, injectable
//! sleeping (so tests never wait on a wall clock), and the combined
//! [`Resilience`] configuration the fault-tolerant drivers in
//! [`crate::sweep`] consume — checkpointing, resume, and the
//! fail-fast/degraded-mode switch.

use std::time::Duration;

use crate::cancel::CancelToken;
use crate::checkpoint::{CheckpointStore, SweepCheckpoint};

/// Bounded exponential backoff for transient trace-source failures.
///
/// Attempt `n` (1-based) sleeps `base_delay * 2^(n-1)`, capped at
/// `max_delay`; after `max_retries` consecutive failed attempts *without
/// progress* the job fails. The attempt counter resets whenever the job
/// advances past the position of the previous fault, so a long stream with
/// occasional transient faults is not bounded by `max_retries` overall —
/// only stalls are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Consecutive no-progress retries before the job gives up.
    pub max_retries: u32,
    /// Backoff of the first retry.
    pub base_delay: Duration,
    /// Upper clamp for the exponential backoff.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// Disables retrying: the first transient failure fails the job.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before 1-based `attempt`: `base * 2^(attempt-1)`,
    /// saturating, clamped to `max_delay`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.saturating_sub(1)).unwrap_or(0);
        let raw = if factor == 0 {
            self.max_delay
        } else {
            self.base_delay.saturating_mul(factor)
        };
        raw.min(self.max_delay)
    }
}

impl Default for RetryPolicy {
    /// Four retries, 10 ms initial backoff, 1 s cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
        }
    }
}

/// How a sweep waits out a retry backoff. Injectable so tests drive the
/// retry path without wall-clock sleeps.
pub trait Sleeper: Sync {
    /// Blocks the calling worker for (about) `d`.
    fn sleep(&self, d: Duration);
}

/// The production [`Sleeper`]: [`std::thread::sleep`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A no-op [`Sleeper`] for tests: backoff is requested but never waited.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSleep;

impl Sleeper for NoSleep {
    fn sleep(&self, _d: Duration) {}
}

/// Periodic checkpointing: where to persist and how often.
#[derive(Clone, Copy)]
pub struct CheckpointSpec<'a> {
    /// Save a checkpoint every `every` records of per-job progress.
    pub every: u64,
    /// Destination of the serialised [`SweepCheckpoint`] images.
    pub store: &'a dyn CheckpointStore,
}

impl std::fmt::Debug for CheckpointSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointSpec")
            .field("every", &self.every)
            .finish_non_exhaustive()
    }
}

/// The full resilience configuration of a fault-tolerant sweep.
///
/// The default is "resilient but quiet": retry transient source failures
/// with [`RetryPolicy::default`], keep going when individual jobs fail
/// (degraded mode), no checkpointing, real sleeping. Builder methods opt
/// into the rest.
pub struct Resilience<'a> {
    /// Retry/backoff behaviour for transient trace-source failures.
    pub retry: RetryPolicy,
    /// `true` aborts the whole sweep on the first job failure; `false`
    /// (default) returns partial results with honest failure accounting.
    pub fail_fast: bool,
    /// Periodic checkpointing, when enabled.
    pub checkpoint: Option<CheckpointSpec<'a>>,
    /// Resume from this previously captured checkpoint.
    pub resume: Option<&'a SweepCheckpoint>,
    /// Cooperative cancellation (explicit or deadline-driven), polled at
    /// chunk boundaries. A cancelled job flushes a final checkpoint before
    /// stopping, so the sweep stays resumable.
    pub cancel: Option<&'a CancelToken>,
    /// How retry backoff waits. Tests inject [`NoSleep`].
    pub sleeper: &'a dyn Sleeper,
}

impl Resilience<'static> {
    /// The default configuration (see the type docs).
    #[must_use]
    pub fn new() -> Self {
        Resilience {
            retry: RetryPolicy::default(),
            fail_fast: false,
            checkpoint: None,
            resume: None,
            cancel: None,
            sleeper: &ThreadSleeper,
        }
    }
}

impl Default for Resilience<'static> {
    fn default() -> Self {
        Resilience::new()
    }
}

impl<'a> Resilience<'a> {
    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the fail-fast/degraded switch.
    #[must_use]
    pub fn fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = on;
        self
    }

    /// Enables periodic checkpointing every `every` records into `store`.
    #[must_use]
    pub fn with_checkpoint<'b>(self, every: u64, store: &'b dyn CheckpointStore) -> Resilience<'b>
    where
        'a: 'b,
    {
        Resilience {
            checkpoint: Some(CheckpointSpec { every, store }),
            ..self
        }
    }

    /// Resumes from `ckpt` instead of a cold start.
    #[must_use]
    pub fn resume_from<'b>(self, ckpt: &'b SweepCheckpoint) -> Resilience<'b>
    where
        'a: 'b,
    {
        Resilience {
            resume: Some(ckpt),
            ..self
        }
    }

    /// Attaches a cancellation token. The resilient drivers poll it at
    /// chunk boundaries; once it fires, every in-flight job saves a final
    /// checkpoint (when checkpointing is on) and the sweep returns a
    /// degraded partial outcome whose failed jobs carry
    /// [`crate::FailureKind::Cancelled`].
    #[must_use]
    pub fn with_cancel<'b>(self, cancel: &'b CancelToken) -> Resilience<'b>
    where
        'a: 'b,
    {
        Resilience {
            cancel: Some(cancel),
            ..self
        }
    }

    /// Replaces the sleeper (tests: [`NoSleep`] or a recording fake).
    #[must_use]
    pub fn with_sleeper<'b>(self, sleeper: &'b dyn Sleeper) -> Resilience<'b>
    where
        'a: 'b,
    {
        Resilience { sleeper, ..self }
    }
}

impl std::fmt::Debug for Resilience<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resilience")
            .field("retry", &self.retry)
            .field("fail_fast", &self.fail_fast)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume.map(|c| c.fingerprint()))
            .field("cancel", &self.cancel.map(|t| t.cancelled()))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_clamps() {
        let retry = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(70),
        };
        assert_eq!(retry.delay(1), Duration::from_millis(10));
        assert_eq!(retry.delay(2), Duration::from_millis(20));
        assert_eq!(retry.delay(3), Duration::from_millis(40));
        assert_eq!(retry.delay(4), Duration::from_millis(70), "clamped");
        assert_eq!(retry.delay(40), Duration::from_millis(70), "shift overflow");
    }

    #[test]
    fn none_never_sleeps() {
        let retry = RetryPolicy::none();
        assert_eq!(retry.max_retries, 0);
        assert_eq!(retry.delay(1), Duration::ZERO);
    }

    #[test]
    fn builder_composes() {
        let store = crate::checkpoint::MemoryCheckpointStore::new();
        let res = Resilience::new()
            .with_retry(RetryPolicy::none())
            .fail_fast(true)
            .with_checkpoint(1_000, &store)
            .with_sleeper(&NoSleep);
        assert!(res.fail_fast);
        assert_eq!(res.retry, RetryPolicy::none());
        assert_eq!(res.checkpoint.expect("spec").every, 1_000);
        assert!(!format!("{res:?}").is_empty());
    }
}
