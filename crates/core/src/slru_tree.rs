//! Single-pass multi-configuration **segmented-LRU** (SLRU) simulation on
//! the fused arena, under the same one-traversal-per-block-size contract as
//! the FIFO, LRU and tree-PLRU kernels.
//!
//! # A policy is a lane layout plus an update rule
//!
//! SLRU splits each set into a protected segment (capacity `assoc / 2`) and
//! a probationary segment. Misses insert at the probationary MRU position; a
//! probationary hit promotes the block to the protected MRU, demoting the
//! protected LRU block to probationary MRU when the protected segment is
//! full; victims are always the probationary LRU block. Like LRU (and unlike
//! FIFO) a hit mutates set state, so no early termination of the walk is
//! sound; unlike LRU there is no stack property (a promotion reorders blocks
//! non-monotonically across associativities), so each associativity gets its
//! own lane: an ordered tag region `[protected MRU→LRU | probationary
//! MRU→LRU | invalid]` plus a protected-length scalar. What carries over:
//!
//! * the shared **MRA lane** (direct-mapped results and the per-level hit
//!   short-circuit — sound under any policy);
//! * an MRA-match fast path in the spirit of the wave pointers: the MRA
//!   block sits either at the protected MRU slot (then the re-hit is a
//!   no-op) or at the probationary MRU slot (then it promotes with one
//!   bounded rotate) — no tag search either way.
//!
//! Duplicate elision is **not** sound under SLRU — a repeated access
//! promotes a probationary block — so this kernel has no elision option and
//! [`crate::DewOptions::validate`] rejects the flag for the policy.
//!
//! Within one lane the update rule matches the reference semantics of
//! `dew_cachesim`'s set (`crates/cachesim/src/set.rs`), which models the
//! segments with a per-way protected flag and access stamps; here the
//! segment order is held explicitly so hits and inserts are bounded rotates,
//! exactly like the LRU kernel's recency regions.
//!
//! # Examples
//!
//! ```
//! use dew_core::slru_tree::SlruTreeSimulator;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Sets 1..=8, associativities 1, 2 and 4, 4-byte blocks.
//! let mut sim = SlruTreeSimulator::new(2, 0, 3, 4)?;
//! for i in 0..100u64 {
//!     sim.step((i % 40) * 4);
//! }
//! assert_eq!(sim.assoc_list(), &[1, 2, 4]);
//! assert!(sim.results().misses(8, 4).is_some());
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::INVALID_TAG;
use crate::results::{AllAssocResults, LevelResult, PassResults};
use crate::simd::{
    lane_scan, prefetch_read, KernelBackend, LaneScan, ScalarScan, TagLane, TagScan, PF_DIST,
};
use crate::space::{DewError, PassConfig};

/// Snapshot magic of the arena SLRU simulator.
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"DEWU";
/// Snapshot format version of the arena SLRU simulator.
const SNAP_VERSION: u8 = 1;

/// Work counters of the SLRU simulator (instrumented kernel only; the fast
/// kernel maintains just the request tally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlruTreeCounters {
    /// Requests simulated.
    pub accesses: u64,
    /// Tree nodes visited.
    pub node_evaluations: u64,
    /// Evaluations settled by the MRA comparison (a hit in every lane; the
    /// walk continues, but every lane updates by position, without a
    /// search).
    pub mra_hits: u64,
    /// Tag comparisons performed (the MRA comparison of each node evaluation
    /// plus the per-lane searches below it).
    pub tag_comparisons: u64,
}

impl fmt::Display for SlruTreeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} evaluations, {} MRA hits, {} comparisons",
            self.accesses, self.node_evaluations, self.mra_hits, self.tag_comparisons
        )
    }
}

/// The arena: flat lanes over all forest levels concatenated, as in the
/// other fused kernels.
#[derive(Debug, Clone)]
struct SlruArena {
    /// Dense per-node MRA tags (direct-mapped contents + hit short-circuit).
    mra: Vec<u64>,
    /// Ordered tag regions, cache-line aligned ([`TagLane`]): per `(node,
    /// lane)`, `[protected MRU→LRU | probationary MRU→LRU | sentinel…]`.
    tags: TagLane,
    /// Protected-segment length per `(node, lane)`; never exceeds half the
    /// lane width.
    prot_len: Vec<u32>,
    /// Node-index base per level plus a final total.
    node_off: Vec<usize>,
    /// `(1 << set_bits) - 1` per level.
    set_mask: Vec<u64>,
    /// Misses per `(level, lane)`, level-major.
    misses: Vec<u64>,
    /// Direct-mapped misses per level (from the shared MRA comparisons).
    dm_misses: Vec<u64>,
}

impl SlruArena {
    fn new(pass: &PassConfig, stride: usize, num_lanes: usize) -> Self {
        let mut node_off = Vec::with_capacity(pass.num_levels() as usize + 1);
        let mut set_mask = Vec::with_capacity(pass.num_levels() as usize);
        let mut total = 0usize;
        for set_bits in pass.min_set_bits()..=pass.max_set_bits() {
            node_off.push(total);
            set_mask.push((1u64 << set_bits) - 1);
            total += 1usize << set_bits;
        }
        node_off.push(total);
        let num_levels = pass.num_levels() as usize;
        SlruArena {
            mra: vec![INVALID_TAG; total],
            tags: TagLane::filled(total * stride, INVALID_TAG),
            prot_len: vec![0; total * num_lanes],
            node_off,
            set_mask,
            misses: vec![0; num_levels * num_lanes.max(1)],
            dm_misses: vec![0; num_levels],
        }
    }
}

/// Exact single-pass SLRU simulator for all set counts in a range and all
/// power-of-two associativities in a range. See the module docs.
#[derive(Debug, Clone)]
pub struct SlruTreeSimulator {
    /// Geometry; `assoc()` reports the widest simulated associativity.
    pass: PassConfig,
    /// Every reported associativity, ascending (includes 1 when the range
    /// starts there; associativity-1 results come from the MRA lane, and
    /// SLRU degenerates to plain LRU there).
    assoc_list: Vec<u32>,
    /// Simulated lane associativities (the reported list above 1).
    lanes: Vec<u32>,
    /// Per-lane tag offset inside a node's region.
    lane_off: Vec<usize>,
    /// Tag-region entries per node (sum of the lane widths).
    stride: usize,
    arena: SlruArena,
    counters: SlruTreeCounters,
    /// Search comparisons per lane; instrumented only.
    lane_comparisons: Vec<u64>,
    /// Whether the kernel maintains the work counters.
    instrument: bool,
    /// The tag-scan backend batched scans run on, fixed at construction
    /// ([`KernelBackend::active`]).
    backend: KernelBackend,
}

impl SlruTreeSimulator {
    /// Builds a simulator for set counts `2^min_set_bits..=2^max_set_bits`,
    /// block size `2^block_bits` bytes, and associativities
    /// `1, 2, 4, …, max_assoc`, using the fast (uninstrumented) kernel.
    ///
    /// # Errors
    ///
    /// As [`PassConfig::new`], plus [`DewError::BadAssoc`] for a
    /// non-power-of-two `max_assoc`.
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        SlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            false,
        )
    }

    /// As [`SlruTreeSimulator::new`], but with the work counters live.
    ///
    /// # Errors
    ///
    /// As [`SlruTreeSimulator::new`].
    pub fn instrumented(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        SlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            true,
        )
    }

    /// Full-control constructor: inclusive `log2` ranges for the set counts
    /// and the reported associativities, and a runtime kernel selection.
    /// This is the entry point the fused sweep uses for its per-block-size
    /// SLRU passes.
    ///
    /// # Errors
    ///
    /// As [`PassConfig::new`], plus [`DewError::EmptySetRange`] when the
    /// associativity range is inverted.
    pub fn with_instrumentation(
        block_bits: u32,
        set_bits: (u32, u32),
        assoc_bits: (u32, u32),
        instrument: bool,
    ) -> Result<Self, DewError> {
        if assoc_bits.0 > assoc_bits.1 {
            return Err(DewError::EmptySetRange {
                min_set_bits: assoc_bits.0,
                max_set_bits: assoc_bits.1,
            });
        }
        let pass = PassConfig::new(block_bits, set_bits.0, set_bits.1, 1 << assoc_bits.1)?;
        let assoc_list: Vec<u32> = (assoc_bits.0..=assoc_bits.1).map(|b| 1 << b).collect();
        let lanes: Vec<u32> = (assoc_bits.0.max(1)..=assoc_bits.1)
            .map(|b| 1 << b)
            .collect();
        let mut lane_off = Vec::with_capacity(lanes.len());
        let mut stride = 0usize;
        for &w in &lanes {
            lane_off.push(stride);
            stride += w as usize;
        }
        Ok(SlruTreeSimulator {
            arena: SlruArena::new(&pass, stride.max(1), lanes.len()),
            pass,
            assoc_list,
            lane_comparisons: if instrument {
                vec![0; lanes.len()]
            } else {
                Vec::new()
            },
            lanes,
            lane_off,
            stride,
            counters: SlruTreeCounters::default(),
            instrument,
            backend: KernelBackend::active(),
        })
    }

    /// The tag-scan backend batched scans run on (fixed at construction
    /// unless [`SlruTreeSimulator::force_scan_backend`] pins another).
    #[must_use]
    pub fn scan_backend(&self) -> KernelBackend {
        self.backend
    }

    /// Pins the scan backend (the differential harness drives the same
    /// simulator once per backend to prove them bit-identical).
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `backend` is not available on this
    /// build/machine.
    pub fn force_scan_backend(&mut self, backend: KernelBackend) -> Result<(), DewError> {
        if !backend.is_available() {
            return Err(DewError::UnsoundOptions(
                "requested scan backend is not available on this build/machine",
            ));
        }
        self.backend = backend;
        Ok(())
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The geometry of the forest (`assoc()` reports the widest lane).
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// `true` when this simulator maintains the work counters.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrument
    }

    /// The work counters.
    #[must_use]
    pub fn counters(&self) -> &SlruTreeCounters {
        &self.counters
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        self.step_block(addr >> self.pass.block_bits());
    }

    /// Simulates one request given as a pre-decoded block number.
    ///
    /// # Panics
    ///
    /// As [`SlruTreeSimulator::step`], if `block` equals the internal
    /// sentinel.
    pub fn step_block(&mut self, block: u64) {
        assert_ne!(
            block, INVALID_TAG,
            "block {block:#x} exceeds the supported range"
        );
        // Single steps always use the scalar scan: batch-level backend
        // dispatch is where the SIMD instantiations live (`crate::simd`
        // module docs), and the backends are bit-identical anyway.
        self.kernel(ScalarScan, block);
    }

    /// Simulates a batch of pre-decoded block numbers — the sweep's fused
    /// drive path.
    ///
    /// # Panics
    ///
    /// As [`SlruTreeSimulator::step`], if any block equals the sentinel.
    pub fn run_blocks(&mut self, blocks: &[u64]) {
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => {
                // SAFETY: `backend` is only `Avx2` after runtime detection
                // (`KernelBackend::is_available`).
                #[allow(unsafe_code)]
                unsafe {
                    self.run_blocks_avx2(blocks);
                }
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => self.drive(crate::simd::Sse2Scan, blocks),
            _ => self.drive(ScalarScan, blocks),
        }
    }

    /// The AVX2 compilation root of the batch loop (see `crate::simd`
    /// module docs for the dispatch rules).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn run_blocks_avx2(&mut self, blocks: &[u64]) {
        self.drive(crate::simd::Avx2Scan, blocks);
    }

    /// The batch loop: the kernel on every block, plus software prefetch of
    /// the deepest (largest, least cache-resident) level's MRA word and tag
    /// region [`PF_DIST`] requests ahead.
    #[inline(always)]
    fn drive<S: TagScan>(&mut self, scan: S, blocks: &[u64]) {
        let deepest = self.arena.set_mask.len() - 1;
        let d_off = self.arena.node_off[deepest];
        let d_mask = self.arena.set_mask[deepest];
        let stride = self.stride.max(1);
        for (i, &b) in blocks.iter().enumerate() {
            assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
            if let Some(&ahead) = blocks.get(i + PF_DIST) {
                let node = d_off + (ahead & d_mask) as usize;
                prefetch_read(&self.arena.mra, node);
                prefetch_read(&self.arena.tags, node * stride);
            }
            self.kernel(scan, b);
        }
    }

    /// The kernel. Per level: one MRA comparison settles the direct-mapped
    /// result. On a match the block sits at a known position in every lane —
    /// the protected MRU slot (re-hit is a no-op) or the probationary MRU
    /// slot (one rotate promotes it) — so no lane searches. On a mismatch
    /// each lane searches its valid prefix: a hit rotates the block to the
    /// protected or segment front (growing the protected segment on a
    /// probationary hit, demoting the protected LRU when it is full, both by
    /// the same rotate); a miss inserts at the probationary MRU slot,
    /// evicting the probationary LRU block when the lane is full.
    ///
    /// `S` is the tag-scan backend the wide compares run on ([`TagScan`]).
    fn kernel<S: TagScan>(&mut self, scan: S, block: u64) {
        self.counters.accesses += 1;
        let nk = self.lanes.len();
        let stride = self.stride.max(1);
        let a = &mut self.arena;
        for li in 0..a.set_mask.len() {
            let node = a.node_off[li] + (block & a.set_mask[li]) as usize;
            if self.instrument {
                self.counters.node_evaluations += 1;
                self.counters.tag_comparisons += 1;
            }
            let region_base = node * stride;
            if a.mra[node] == block {
                if self.instrument {
                    self.counters.mra_hits += 1;
                }
                for (k, (&w, &off)) in self.lanes.iter().zip(self.lane_off.iter()).enumerate() {
                    let w = w as usize;
                    let cap = w / 2;
                    let lane = &mut a.tags[region_base + off..region_base + off + w];
                    let prot = &mut a.prot_len[node * nk + k];
                    let p = *prot as usize;
                    // The MRA block is the protected MRU (previous access
                    // was a hit that promoted or refreshed it) or the
                    // probationary MRU at index `prot_len` (previous access
                    // inserted it); `prot_len == 0` makes the two slots
                    // coincide and the access is a probationary hit.
                    if p == 0 || lane[0] != block {
                        debug_assert_eq!(lane[p], block);
                        lane[..=p].rotate_right(1);
                        if p < cap {
                            *prot += 1;
                        }
                    }
                }
                continue;
            }
            a.dm_misses[li] += 1;
            a.mra[node] = block;
            for (k, (&w, &off)) in self.lanes.iter().zip(self.lane_off.iter()).enumerate() {
                let w = w as usize;
                let cap = w / 2;
                let lane = &mut a.tags[region_base + off..region_base + off + w];
                let prot = &mut a.prot_len[node * nk + k];
                let p = *prot as usize;
                // One wide scan finds the block or, failing that, the end of
                // the valid prefix (inserts keep valid tags contiguous). The
                // comparison tallies are derived arithmetically — a hit at
                // depth `i` would have inspected `i + 1` valid tags, a miss
                // the whole valid prefix — so the instrumented counters stay
                // bit-identical to the sequential scalar scan's.
                let (hit, valid_len) = match lane_scan(scan, lane, block, INVALID_TAG) {
                    LaneScan::Hit(i) => (Some(i), w),
                    LaneScan::Miss { valid_len } => (None, valid_len),
                };
                if self.instrument {
                    let spent = match hit {
                        Some(i) => i as u64 + 1,
                        None => valid_len as u64,
                    };
                    self.lane_comparisons[k] += spent;
                    self.counters.tag_comparisons += spent;
                }
                match hit {
                    Some(d) => {
                        // Protected hit (d < prot_len): refresh within the
                        // protected segment. Probationary hit: the same
                        // rotate promotes the block to protected MRU and,
                        // when the protected segment is full, wraps its LRU
                        // block to index `prot_len` — the probationary MRU —
                        // demoting it.
                        lane[..=d].rotate_right(1);
                        if d >= p && p < cap {
                            *prot += 1;
                        }
                    }
                    None => {
                        a.misses[li * nk.max(1) + k] += 1;
                        // Insert at the probationary MRU slot. Not full: the
                        // invalid way at `valid_len` wraps around and is
                        // overwritten. Full: the probationary LRU block at
                        // `w - 1` wraps around and is overwritten — the
                        // victim (the probationary segment is nonempty when
                        // the lane is full, since `prot_len <= w / 2 < w`).
                        let end = valid_len.min(w - 1);
                        lane[p..=end].rotate_right(1);
                        lane[p] = block;
                    }
                }
            }
        }
    }

    /// Snapshot of the per-configuration miss counts (associativity 1, when
    /// simulated, comes from the shared direct-mapped accounting).
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        let include_dm = self.assoc_list.first() == Some(&1);
        let nk = self.lanes.len();
        let stride = nk.max(1);
        let misses = (0..self.arena.dm_misses.len())
            .map(|li| {
                let mut row = Vec::with_capacity(self.assoc_list.len());
                if include_dm {
                    row.push(self.arena.dm_misses[li]);
                }
                row.extend_from_slice(&self.arena.misses[li * stride..li * stride + nk]);
                row
            })
            .collect();
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            misses,
        )
    }

    /// Fans this pass out into the [`PassResults`] a standalone
    /// `(block size, assoc)` pass would have produced, or `None` when
    /// `assoc` was not simulated.
    #[must_use]
    pub fn pass_results(&self, assoc: u32) -> Option<PassResults> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        let pass = PassConfig::new(
            self.pass.block_bits(),
            self.pass.min_set_bits(),
            self.pass.max_set_bits(),
            assoc,
        )
        .ok()?;
        let stride = self.lanes.len().max(1);
        let k = self.lanes.iter().position(|&a| a == assoc);
        let levels = self
            .arena
            .dm_misses
            .iter()
            .enumerate()
            .map(|(li, &dm)| {
                let misses = match k {
                    Some(k) => self.arena.misses[li * stride + k],
                    None => dm, // assoc 1: the MRA lane is the simulation
                };
                LevelResult::new(self.pass.min_set_bits() + li as u32, misses, dm)
            })
            .collect();
        Some(PassResults::new(pass, self.counters.accesses, levels))
    }

    /// The [`DewCounters`] view a standalone pass at `assoc` is entitled to
    /// report, mirroring the tree-PLRU fan-out: MRA hits settle a node
    /// without a search and map onto the `mra_stops` bucket, every other
    /// evaluation is a search in this lane, and per-lane search comparisons
    /// are tracked separately. Returns `None` when `assoc` was not
    /// simulated.
    #[must_use]
    pub fn pass_counters(&self, assoc: u32) -> Option<DewCounters> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        if !self.instrument {
            return Some(DewCounters {
                accesses: self.counters.accesses,
                ..DewCounters::new()
            });
        }
        let searches = self.counters.node_evaluations - self.counters.mra_hits;
        let search_comparisons = match self.lanes.iter().position(|&a| a == assoc) {
            Some(k) => self.lane_comparisons[k],
            // Associativity 1: the MRA mismatch *is* the decision.
            None => searches,
        };
        Some(DewCounters {
            accesses: self.counters.accesses,
            node_evaluations: self.counters.node_evaluations,
            mra_stops: self.counters.mra_hits,
            searches,
            search_comparisons,
            tag_comparisons: self.counters.node_evaluations + search_comparisons,
            ..DewCounters::new()
        })
    }

    /// Actual heap footprint of the arena's lanes in bytes (excludes
    /// counters and scratch).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let a = &self.arena;
        a.mra.len() * 8 + a.tags.len() * 8 + a.prot_len.len() * 4
    }

    /// Serialises the complete arena state to bytes under its own magic
    /// (`DEWU`). The sharded sweep's snapshot-handoff mode and the
    /// checkpoint sidecars round-trip these buffers.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&SNAP_MAGIC);
        out.push(SNAP_VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.assoc_list[0].trailing_zeros());
        put_u32(&mut out, self.pass.assoc().trailing_zeros());
        out.push(u8::from(self.instrument));
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_hits,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        for &v in &self.lane_comparisons {
            put_u64(&mut out, v);
        }
        let a = &self.arena;
        for &v in a
            .misses
            .iter()
            .chain(&a.dm_misses)
            .chain(&a.mra)
            .chain(&a.tags)
        {
            put_u64(&mut out, v);
        }
        for &v in &a.prot_len {
            put_u32(&mut out, v);
        }
        out
    }

    /// Restores a simulator from [`SlruTreeSimulator::to_snapshot`] output;
    /// continuing it is bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers; a valid buffer of one of the *other*
    /// policies' kernels reports [`crate::snapshot::SnapshotError::PolicyMismatch`].
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError};
        let mut cur = Cursor::new(bytes);
        let magic = cur.bytes(4)?;
        if magic != SNAP_MAGIC {
            for sibling in [
                crate::multi_assoc::SNAP_MAGIC,
                crate::lru_tree::SNAP_MAGIC,
                crate::plru_tree::SNAP_MAGIC,
            ] {
                if magic == sibling {
                    return Err(SnapshotError::PolicyMismatch {
                        expected: SNAP_MAGIC,
                        found: sibling,
                    });
                }
            }
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits) = (cur.u32()?, cur.u32()?, cur.u32()?);
        let (assoc_lo_bits, assoc_hi_bits) = (cur.u32()?, cur.u32()?);
        let instrument = cur.u8()? != 0;
        let mut sim = SlruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (assoc_lo_bits, assoc_hi_bits),
            instrument,
        )
        .map_err(|_| SnapshotError::Corrupt("invalid arena geometry"))?;
        let c = &mut sim.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.mra_hits = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        for v in &mut sim.lane_comparisons {
            *v = cur.u64()?;
        }
        let a = &mut sim.arena;
        for v in a
            .misses
            .iter_mut()
            .chain(&mut a.dm_misses)
            .chain(&mut a.mra)
            .chain(&mut a.tags)
        {
            *v = cur.u64()?;
        }
        let nk = sim.lanes.len();
        for (i, v) in a.prot_len.iter_mut().enumerate() {
            *v = cur.u32()?;
            if nk > 0 && *v > sim.lanes[i % nk] / 2 {
                return Err(SnapshotError::Corrupt("protected length out of range"));
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 80) * 4
                }
            })
            .collect()
    }

    fn oracle(sets: u32, assoc: u32, block: u32, addrs: &[u64]) -> u64 {
        let records: Vec<Record> = addrs.iter().map(|&a| Record::read(a)).collect();
        simulate_trace(
            CacheConfig::new(sets, assoc, block, Replacement::Slru).expect("valid"),
            &records,
        )
        .misses()
    }

    #[test]
    fn matches_reference_slru_for_all_configs() {
        let a = addrs(3000, 0x5EED_7001);
        for instrument in [false, true] {
            let mut sim = SlruTreeSimulator::with_instrumentation(2, (0, 5), (0, 3), instrument)
                .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let r = sim.results();
            for set_bits in 0..=5u32 {
                for assoc in [1u32, 2, 4, 8] {
                    let sets = 1 << set_bits;
                    assert_eq!(
                        r.misses(sets, assoc),
                        Some(oracle(sets, assoc, 4, &a)),
                        "sets={sets} assoc={assoc} instrument={instrument}"
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_accesses_promote_and_resist_scans() {
        // Two re-hit blocks survive a long one-shot scan: the protected
        // segment shields them, which plain LRU would not.
        let mut hot = vec![0u64, 64, 0, 64];
        for i in 0..64u64 {
            hot.push(4096 + i * 64); // one-shot scan, same set count rollover
        }
        hot.push(0);
        hot.push(64);
        let sets = 1u32;
        let assoc = 4u32;
        let slru = oracle(sets, assoc, 64, &hot);
        let records: Vec<Record> = hot.iter().map(|&a| Record::read(a)).collect();
        let lru = simulate_trace(
            CacheConfig::new(sets, assoc, 64, Replacement::Lru).expect("valid"),
            &records,
        )
        .misses();
        assert!(slru < lru, "slru={slru} lru={lru}");
        let mut sim = SlruTreeSimulator::new(6, 0, 0, 4).expect("valid");
        for &x in &hot {
            sim.step(x);
        }
        assert_eq!(sim.results().misses(1, 4), Some(slru));
    }

    #[test]
    fn pass_results_fan_out_matches_all_assoc_view() {
        let a = addrs(2500, 0x5EED_7003);
        for instrument in [false, true] {
            let mut sim = SlruTreeSimulator::with_instrumentation(3, (1, 5), (0, 3), instrument)
                .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let all = sim.results();
            for &assoc in sim.assoc_list() {
                let pr = sim.pass_results(assoc).expect("simulated");
                assert_eq!(pr.pass().assoc(), assoc);
                for set_bits in 1..=5u32 {
                    let sets = 1 << set_bits;
                    assert_eq!(pr.misses(sets, assoc), all.misses(sets, assoc));
                    assert_eq!(pr.misses(sets, 1), all.misses(sets, 1));
                }
                let c = sim.pass_counters(assoc).expect("simulated");
                assert!(c.is_consistent(), "assoc={assoc}: {c}");
                assert_eq!(c.accesses, a.len() as u64);
            }
            assert!(sim.pass_results(16).is_none());
            assert!(sim.pass_counters(16).is_none());
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let a = addrs(2000, 0x5EED_7004);
        for instrument in [false, true] {
            let mut sim = SlruTreeSimulator::with_instrumentation(2, (0, 4), (1, 3), instrument)
                .expect("valid");
            for &x in &a[..1000] {
                sim.step(x);
            }
            let mut restored =
                SlruTreeSimulator::from_snapshot(&sim.to_snapshot()).expect("round trip");
            for &x in &a[1000..] {
                sim.step(x);
                restored.step(x);
            }
            assert_eq!(sim.results(), restored.results());
            assert_eq!(sim.counters(), restored.counters());
            assert_eq!(sim.to_snapshot(), restored.to_snapshot());
        }
    }

    #[test]
    fn foreign_magic_is_a_policy_mismatch() {
        use crate::snapshot::SnapshotError;
        let plru = crate::plru_tree::PlruTreeSimulator::new(
            2,
            0,
            2,
            2,
            crate::plru_tree::PlruTreeOptions::default(),
        )
        .expect("valid");
        match SlruTreeSimulator::from_snapshot(&plru.to_snapshot()) {
            Err(SnapshotError::PolicyMismatch { expected, found }) => {
                assert_eq!(expected, SNAP_MAGIC);
                assert_eq!(found, crate::plru_tree::SNAP_MAGIC);
            }
            other => panic!("expected PolicyMismatch, got {other:?}"),
        }
        assert!(matches!(
            SlruTreeSimulator::from_snapshot(b"JUNKrest"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_block_panics_in_batches() {
        let mut sim = SlruTreeSimulator::new(0, 0, 1, 2).expect("ok");
        sim.run_blocks(&[0, 1, u64::MAX]);
    }
}
