//! Per-node storage of the simulation forest.
//!
//! The paper's layout (Section 5): each tag-list entry holds a tag and a wave
//! pointer; each tree node additionally holds the MRA tag, the MRE tag and
//! the MRE entry's wave pointer. Per node that is `96 + 64·A` bits in the
//! paper's 32-bit implementation; this crate widens tags to 64 bits (see
//! `DESIGN.md`, substitutions).
//!
//! The whole forest is stored as one flat arena (all levels concatenated): a
//! single `Vec<NodeMeta>` for the scalar fields plus dense per-field lanes
//! for the tags and wave pointers, addressed through precomputed per-level
//! node offsets, so node `i`'s tag list is the slice
//! `tags[i*assoc .. (i+1)*assoc]` with `i` a forest-global node index.

/// Sentinel for "no tag": cold MRA/MRE entries and invalid ways.
///
/// Block numbers are bounded by the `max_set_bits + block_bits <= 58`
/// validation in [`crate::PassConfig::new`] plus a runtime assert in
/// `step`, so real tags can never equal the sentinel.
pub(crate) const INVALID_TAG: u64 = u64::MAX;

/// Sentinel for an "empty" wave pointer (paper Algorithm 2, line 7).
pub(crate) const EMPTY_WAVE: u32 = u32::MAX;

/// The scalar per-node state, *except* the MRA tag: the MRA comparison runs
/// on every node evaluation (and is all a Property-2 stop touches), so the
/// forest keeps MRA tags in their own dense `u64` lane and this struct holds
/// only the fields the miss/search paths need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct NodeMeta {
    /// Most Recently Evicted tag (Property 4), or [`INVALID_TAG`].
    pub mre: u64,
    /// Wave pointer preserved alongside the MRE tag (Algorithm 2, line 8).
    pub mre_wave: u32,
    /// FIFO round-robin pointer: the way holding the least recently inserted
    /// block (equivalently, during cold fill, the next empty way).
    pub fifo_ptr: u32,
    /// Number of valid ways. Ways fill in physical order, so the valid
    /// entries are always the prefix `ways[..valid]`.
    pub valid: u32,
}

impl NodeMeta {
    pub(crate) const EMPTY: NodeMeta = NodeMeta {
        mre: INVALID_TAG,
        mre_wave: EMPTY_WAVE,
        fifo_ptr: 0,
        valid: 0,
    };
}

/// Advances a FIFO round-robin pointer with a conditional wrap: `%` on a
/// runtime associativity would be a hardware divide in the per-miss path.
#[inline]
pub(crate) fn fifo_advance(ptr: u32, assoc: usize) -> u32 {
    let next = ptr + 1;
    if next as usize == assoc {
        0
    } else {
        next
    }
}

/// Index of the least recently used way given the set's last-access lane
/// (ties resolve to the lowest index, matching a stable minimum).
#[inline]
pub(crate) fn lru_victim(last_access: &[u64]) -> usize {
    let mut victim = 0;
    let mut oldest = last_access[0];
    for (i, &t) in last_access.iter().enumerate().skip(1) {
        if t < oldest {
            oldest = t;
            victim = i;
        }
    }
    victim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_constants_are_cold() {
        let m = NodeMeta::EMPTY;
        assert_eq!(m.mre, INVALID_TAG);
        assert_eq!(m.mre_wave, EMPTY_WAVE);
        assert_eq!(m.valid, 0);
        assert_eq!(m.fifo_ptr, 0);
    }

    #[test]
    fn storage_is_compact() {
        // The flat layout relies on this staying small.
        assert!(std::mem::size_of::<NodeMeta>() <= 24);
    }

    #[test]
    fn fifo_advance_wraps_at_assoc() {
        assert_eq!(fifo_advance(0, 4), 1);
        assert_eq!(fifo_advance(3, 4), 0);
        assert_eq!(fifo_advance(0, 1), 0);
    }

    #[test]
    fn lru_victim_prefers_oldest_then_lowest_index() {
        assert_eq!(lru_victim(&[5, 2, 9, 2]), 1, "ties take the first");
        assert_eq!(lru_victim(&[1]), 0);
        assert_eq!(lru_victim(&[7, 7, 7]), 0);
    }
}
