//! **DEW** — exact single-pass multi-configuration level-1 cache simulation
//! for the FIFO replacement policy.
//!
//! Reproduction of Haque, Peddersen, Janapsatya & Parameswaran, *"DEW: A Fast
//! Level 1 Cache Simulation Approach for Embedded Processors with FIFO
//! Replacement Policy"*, DATE 2010.
//!
//! One pass of a [`DewTree`] over a memory trace produces exact hit/miss
//! counts for **every power-of-two set count** in a range at one
//! associativity — and, for free, the direct-mapped results — by organising
//! the caches' sets into a binomial forest and exploiting three properties of
//! FIFO caches:
//!
//! * **MRA early termination** — a request matching a set's most recently
//!   accessed tag hits there and at every larger set count (Property 2);
//! * **wave pointers** — FIFO never moves a resident block, so the way it
//!   occupied in the child set last time is the only way it can occupy now;
//!   one comparison decides hit or miss (Property 3);
//! * **MRE entries** — the most recently evicted tag is certainly absent, so
//!   a match decides a miss without searching (Property 4).
//!
//! [`SweepRequest`] covers a whole `(S, A, B)` space ([`ConfigSpace`],
//! e.g. the paper's 525-configuration Table 1 space) with **one fused
//! trace traversal per block size, under every registered policy**. A
//! replacement policy is a pluggable fused-arena kernel — a lane layout
//! plus a lookup rule plus an update rule behind the
//! [`kernel::PolicyKernel`] trait:
//!
//! * **FIFO** — [`MultiAssocTree`]: every associativity's FIFO tag lists
//!   share one walk, with CIPARSim-style intersection links pruning the
//!   wider lists' searches, so the paper's 28 per-pair passes become 7
//!   traversals;
//! * **LRU** — [`lru_tree::LruTreeSimulator`]: the stack property makes a
//!   single move-to-front lane exact for every associativity at once (the
//!   Janapsatya / CRCB comparator family the paper positions DEW against);
//! * **tree-PLRU** — [`plru_tree::PlruTreeSimulator`]: per-lane direction
//!   bits; like FIFO, PLRU never moves a resident block, so the shared MRA
//!   lane re-touches a cached way without a search;
//! * **SLRU** — [`slru_tree::SlruTreeSimulator`]: a segmented
//!   protected/probationary recency lane that resists scan pollution.
//!
//! A [`SweepOutcome`] records the exact miss table, the per-pass work
//! counters, the policy it was swept under and the honest
//! [`SweepOutcome::trace_traversals`] count; the `dew-explore` crate
//! builds design-space exploration (energy scoring, Pareto frontiers) on
//! top of it. The repository's `docs/GUIDE.md` walks the full pipeline.
//!
//! Execution plans are orthogonal builder axes on [`SweepRequest`]: long
//! traces need not be resident ([`SweepRequest::run_streamed`] decodes a
//! re-openable source in bounded chunks), can be sharded into intervals
//! reconciled exactly (snapshot handoff — bit-identical to the unsharded
//! sweep) or approximately (warmup overlap, with [`ShardBounds`] slack),
//! or sampled from periodic clusters with the same per-cluster bound. The
//! free `sweep_trace*` functions remain as deprecated forwarders.
//!
//! Long runs also need not be fragile: [`SweepRequest::resilient`] wraps
//! the same kernels with checkpoint/resume (a [`SweepCheckpoint`] persists
//! every job's kernel snapshot and decode position, and resuming is
//! bit-identical), retry with bounded exponential backoff for transient
//! source failures ([`RetryPolicy`]), per-job panic isolation, and
//! graceful degradation — a partial [`SweepOutcome`] with honest
//! [`SweepOutcome::failed_jobs`] / [`SweepOutcome::retries`] /
//! [`SweepOutcome::records_lost`] accounting instead of an all-or-nothing
//! abort. See [`Resilience`]. A sweep can also be stopped cooperatively —
//! an explicit request, a SIGINT, or a wall-clock deadline — through a
//! [`CancelToken`]: cancelled jobs flush a final checkpoint before
//! stopping, so interrupted work stays resumable
//! ([`Resilience::with_cancel`]).
//!
//! # Quickstart
//!
//! ```
//! use dew_core::{DewOptions, DewTree, PassConfig};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Simulate set counts 1..=256 at associativity 4 (plus direct-mapped),
//! // 16-byte blocks, over a toy trace. `DewTree::new` builds the fastest
//! // kernel; `instrumented` additionally maintains the work counters
//! // printed below.
//! let mut tree = DewTree::instrumented(PassConfig::new(4, 0, 8, 4)?, DewOptions::default())?;
//! for i in 0..10_000u64 {
//!     tree.step_record(Record::read((i * 24) % 65_536));
//! }
//! let results = tree.results();
//! for level in results.levels() {
//!     println!("{:>5} sets: {:>6} misses", level.sets(), level.misses());
//! }
//! println!("work: {}", tree.counters());
//! # Ok(())
//! # }
//! ```

// The crate is unsafe-free except for the `simd` feature's `core::arch`
// intrinsics, which live in `simd.rs` and the kernels' `#[target_feature]`
// batch drivers behind scoped `#[allow(unsafe_code)]` with SAFETY comments.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

mod cancel;
mod checkpoint;
mod counters;
pub mod kernel;
pub mod lru_tree;
mod multi_assoc;
mod node;
mod options;
pub mod plru_tree;
mod request;
mod resilience;
mod results;
mod simd;
pub mod slru_tree;
pub mod snapshot;
mod space;
mod sweep;
mod timeline;
mod tree;

pub use cancel::{CancelReason, CancelToken};
pub use checkpoint::{
    sweep_fingerprint, CheckpointStore, FileCheckpointStore, JobCheckpoint, MemoryCheckpointStore,
    SweepCheckpoint, CKPT_MAGIC, CKPT_VERSION,
};
pub use counters::DewCounters;
pub use kernel::{FusedKernel, PolicyKernel};
pub use multi_assoc::MultiAssocTree;
pub use options::{DewOptions, TreePolicy};
pub use request::SweepRequest;
pub use resilience::{CheckpointSpec, NoSleep, Resilience, RetryPolicy, Sleeper, ThreadSleeper};
pub use results::{
    AllAssocResults, ConfigResult, FailureKind, JobFailure, LevelResult, PassResults, ShardBounds,
    SweepOutcome,
};
pub use simd::KernelBackend;
pub use space::{ConfigSpace, DewError, PassConfig};
#[allow(deprecated)]
pub use sweep::{
    sweep_trace, sweep_trace_instrumented, sweep_trace_resilient, sweep_trace_sampled,
    sweep_trace_sharded, sweep_trace_sharded_resilient, sweep_trace_streamed,
    sweep_trace_streamed_resilient, ShardMode, ShardSpec,
};
pub use timeline::{MissTimeline, WindowSample};
pub use tree::DewTree;
