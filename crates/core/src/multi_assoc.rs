//! **Extension**: all associativities in one FIFO pass.
//!
//! The paper runs one DEW pass per `(block size, associativity)` pair
//! because FIFO has no stack property: unlike LRU, one tag list cannot
//! answer for several associativities. But nothing stops a single pass from
//! carrying **independent FIFO tag lists for every associativity** in each
//! tree node, sharing everything that *is* associativity-independent — the
//! walk, the MRA comparison (and its early termination, which is sound for
//! every associativity at once), and the direct-mapped results. One
//! [`MultiAssocTree`] pass therefore covers `levels × assoc_list`
//! configurations, turning the paper's 28-pass Table 1 sweep into 7 passes,
//! at the cost of wider nodes.
//!
//! Per associativity the per-node machinery is exactly [`crate::DewTree`]'s:
//! wave pointers (tracked per list) and MRE entries short-circuit
//! determinations; the same Algorithm 1/2 handlers apply.
//!
//! # Examples
//!
//! ```
//! use dew_core::{DewOptions, MultiAssocTree};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Set counts 1..=256, associativities 1/2/4/8, one pass.
//! let mut tree = MultiAssocTree::new(2, 0, 8, 8, DewOptions::default())?;
//! for i in 0..5_000u64 {
//!     tree.step_record(Record::read((i % 900) * 4));
//! }
//! let results = tree.results();
//! assert!(results.misses(64, 8).expect("simulated") <= results.accesses());
//! # Ok(())
//! # }
//! ```

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::{NodeMeta, WayEntry, EMPTY_WAVE, INVALID_TAG};
use crate::options::{DewOptions, TreePolicy};
use crate::results::AllAssocResults;
use crate::space::{DewError, PassConfig};

/// Per-level storage: shared MRA/DM state plus one independent FIFO list
/// family per associativity above 1.
#[derive(Debug, Clone)]
struct MultiLevel {
    /// Shared per-set MRA tags (the direct-mapped cache contents).
    mra: Vec<u64>,
    /// Per associativity (index parallels `assoc_list[1..]`): node metadata
    /// and flat way storage, exactly as in `DewTree`.
    lists: Vec<AssocLists>,
    dm_misses: u64,
    /// Misses per associativity, indexed like `assoc_list[1..]`.
    misses: Vec<u64>,
}

#[derive(Debug, Clone)]
struct AssocLists {
    assoc: usize,
    meta: Vec<NodeMeta>,
    ways: Vec<WayEntry>,
}

/// A single-pass FIFO simulator for every power-of-two associativity up to a
/// maximum, at every set count in a range. See the module docs.
#[derive(Debug, Clone)]
pub struct MultiAssocTree {
    pass: PassConfig,
    opts: DewOptions,
    assoc_list: Vec<u32>,
    levels: Vec<MultiLevel>,
    /// Per-level set-index masks (`(1 << set_bits) - 1`), precomputed so the
    /// walk indexes with one mask and no branch.
    set_mask: Vec<u64>,
    counters: DewCounters,
    prev_block: u64,
    /// Per-list parent matching-entry way, reused across steps to avoid a
    /// per-request allocation.
    parent_way: Vec<Option<usize>>,
}

impl MultiAssocTree {
    /// Builds the forest for set counts `2^min_set_bits..=2^max_set_bits`,
    /// block size `2^block_bits`, associativities `1, 2, …, max_assoc`.
    ///
    /// # Errors
    ///
    /// Geometry errors as [`PassConfig::new`];
    /// [`DewError::UnsoundOptions`] for LRU options (this extension is
    /// FIFO-only: LRU already gets all associativities from one list via the
    /// stack property — use [`crate::lru_tree::LruTreeSimulator`]).
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: DewOptions,
    ) -> Result<Self, DewError> {
        opts.validate()?;
        if opts.policy == TreePolicy::Lru {
            return Err(DewError::UnsoundOptions(
                "multi-assoc lists are FIFO-only; LRU gets all associativities from \
                 the stack property (lru_tree)",
            ));
        }
        let pass = PassConfig::new(block_bits, min_set_bits, max_set_bits, max_assoc)?;
        let assoc_list: Vec<u32> = (0..=max_assoc.trailing_zeros()).map(|b| 1 << b).collect();
        let levels = (min_set_bits..=max_set_bits)
            .map(|sb| {
                let n = 1usize << sb;
                MultiLevel {
                    mra: vec![INVALID_TAG; n],
                    lists: assoc_list[1..]
                        .iter()
                        .map(|&a| AssocLists {
                            assoc: a as usize,
                            meta: vec![NodeMeta::EMPTY; n],
                            ways: vec![WayEntry::EMPTY; n * a as usize],
                        })
                        .collect(),
                    dm_misses: 0,
                    misses: vec![0; assoc_list.len() - 1],
                }
            })
            .collect();
        let num_lists = assoc_list.len() - 1;
        let set_mask = (min_set_bits..=max_set_bits)
            .map(|sb| (1u64 << sb) - 1)
            .collect();
        Ok(MultiAssocTree {
            pass,
            opts,
            assoc_list,
            levels,
            set_mask,
            counters: DewCounters::new(),
            prev_block: INVALID_TAG,
            parent_way: vec![None; num_lists],
        })
    }

    /// The simulated associativities, ascending (always starting at 1).
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The forest geometry (`assoc()` reports the maximum).
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// Aggregate work counters. Per-node MRA work is counted once while
    /// wave/MRE/search work is summed over the associativity lists, so the
    /// [`DewCounters::is_consistent`] identity of a single-associativity
    /// [`crate::DewTree`] does **not** apply here: one node evaluation feeds
    /// several lists.
    #[must_use]
    pub fn counters(&self) -> &DewCounters {
        &self.counters
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        let block = addr >> self.pass.block_bits();
        assert_ne!(
            block, INVALID_TAG,
            "address {addr:#x} exceeds the supported range"
        );
        self.counters.accesses += 1;
        if self.opts.dup_elision && block == self.prev_block {
            self.counters.duplicate_skips += 1;
            return;
        }
        self.prev_block = block;
        let num_lists = self.assoc_list.len() - 1;
        // Parent matching-entry way (global index) per associativity list.
        let mut parent_way = std::mem::take(&mut self.parent_way);
        parent_way.fill(None);

        for li in 0..self.levels.len() {
            let set_idx = (block & self.set_mask[li]) as usize;
            self.counters.node_evaluations += 1;
            self.counters.tag_comparisons += 1; // the one shared MRA compare
            let (lower, rest) = self.levels.split_at_mut(li);
            let level = &mut rest[0];

            let mra_match = level.mra[set_idx] == block;
            if mra_match {
                if self.opts.mra_stop {
                    // Sound for every associativity at once: an MRA match
                    // proves nothing in this set (or any descendant) changed
                    // since the block was resident — in all the lists.
                    self.counters.mra_stops += 1;
                    self.parent_way = parent_way;
                    return;
                }
            } else {
                level.dm_misses += 1;
            }

            // `ai` indexes three parallel structures (this level's lists,
            // the parent-way cache and the lower level's lists); an iterator
            // chain over one of them would hide that coupling.
            #[allow(clippy::needless_range_loop)]
            for ai in 0..num_lists {
                let list = &mut level.lists[ai];
                let assoc = list.assoc;
                let mut meta = list.meta[set_idx];
                let ways = &mut list.ways[set_idx * assoc..(set_idx + 1) * assoc];

                let mut determined: Option<Option<usize>> = None;
                if self.opts.wave {
                    if let Some(pw) = parent_way[ai] {
                        let wave = lower[li - 1].lists[ai].ways[pw].wave;
                        if wave != EMPTY_WAVE {
                            self.counters.tag_comparisons += 1;
                            let w = wave as usize;
                            if ways[w].tag == block {
                                self.counters.wave_hits += 1;
                                determined = Some(Some(w));
                            } else {
                                self.counters.wave_misses += 1;
                                determined = Some(None);
                            }
                        }
                    }
                }
                if determined.is_none() && self.opts.mre {
                    self.counters.tag_comparisons += 1;
                    if meta.mre == block {
                        self.counters.mre_misses += 1;
                        determined = Some(None);
                    }
                }
                let found = match determined {
                    Some(f) => f,
                    None => {
                        self.counters.searches += 1;
                        let valid = meta.valid as usize;
                        let mut found = None;
                        for (i, entry) in ways[..valid].iter().enumerate() {
                            self.counters.search_comparisons += 1;
                            self.counters.tag_comparisons += 1;
                            if entry.tag == block {
                                found = Some(i);
                                break;
                            }
                        }
                        found
                    }
                };
                debug_assert!(
                    !(mra_match && found.is_none()),
                    "MRA match must hit in list"
                );

                let n = match found {
                    Some(n) => n, // Algorithm 1 (MRA handled at level scope)
                    None => {
                        // Algorithm 2.
                        level.misses[ai] += 1;
                        let n = meta.fifo_ptr as usize;
                        if self.opts.mre && meta.mre == block {
                            std::mem::swap(&mut ways[n].tag, &mut meta.mre);
                            std::mem::swap(&mut ways[n].wave, &mut meta.mre_wave);
                        } else {
                            let evicted = ways[n];
                            ways[n] = WayEntry {
                                tag: block,
                                wave: EMPTY_WAVE,
                            };
                            if evicted.tag == INVALID_TAG {
                                meta.valid += 1;
                            } else if self.opts.mre {
                                meta.mre = evicted.tag;
                                meta.mre_wave = evicted.wave;
                            }
                        }
                        meta.fifo_ptr = crate::node::fifo_advance(meta.fifo_ptr, assoc);
                        n
                    }
                };
                list.meta[set_idx] = meta;
                if self.opts.wave {
                    if let Some(pw) = parent_way[ai] {
                        lower[li - 1].lists[ai].ways[pw].wave = n as u32;
                    }
                }
                parent_way[ai] = Some(set_idx * assoc + n);
            }
            level.mra[set_idx] = block;
        }
        self.parent_way = parent_way;
    }

    /// Snapshot of the per-configuration miss counts (associativity 1 comes
    /// from the shared direct-mapped accounting).
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        let misses = self
            .levels
            .iter()
            .map(|l| {
                let mut row = Vec::with_capacity(self.assoc_list.len());
                row.push(l.dm_misses);
                row.extend_from_slice(&l.misses);
                row
            })
            .collect();
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DewTree;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 90) * 4
                }
            })
            .collect()
    }

    #[test]
    fn matches_reference_for_every_assoc_and_set_count() {
        let a = addrs(3000, 0xA5A5);
        let mut tree = MultiAssocTree::new(2, 0, 5, 8, DewOptions::default()).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        let r = tree.results();
        let records: Vec<Record> = a.iter().map(|&x| Record::read(x)).collect();
        for set_bits in 0..=5u32 {
            for assoc in [1u32, 2, 4, 8] {
                let sets = 1 << set_bits;
                let config = CacheConfig::new(sets, assoc, 4, Replacement::Fifo).expect("valid");
                let expected = simulate_trace(config, &records).misses();
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(expected),
                    "sets={sets} assoc={assoc}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_separate_dew_trees_and_saves_mra_work() {
        let a = addrs(4000, 0x77);
        let mut multi = MultiAssocTree::new(2, 0, 8, 16, DewOptions::default()).expect("valid");
        for &x in &a {
            multi.step(x);
        }
        let mr = multi.results();

        let mut separate_comparisons = 0;
        for assoc in [2u32, 4, 8, 16] {
            let pass = PassConfig::new(2, 0, 8, assoc).expect("valid");
            let mut tree = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
            for &x in &a {
                tree.step(x);
            }
            separate_comparisons += tree.counters().tag_comparisons;
            let r = tree.results();
            for set_bits in 0..=8u32 {
                let sets = 1 << set_bits;
                assert_eq!(
                    mr.misses(sets, assoc),
                    r.misses(sets, assoc),
                    "assoc={assoc}"
                );
                assert_eq!(
                    mr.misses(sets, 1),
                    r.misses(sets, 1),
                    "DM via assoc={assoc}"
                );
            }
        }
        assert!(
            multi.counters().tag_comparisons < separate_comparisons,
            "sharing the walk and MRA must cut total comparisons: {} vs {}",
            multi.counters().tag_comparisons,
            separate_comparisons
        );
    }

    #[test]
    fn options_do_not_change_results() {
        let a = addrs(2000, 0x99);
        let mut reference = None;
        for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
            let mut tree = MultiAssocTree::new(2, 0, 4, 4, opts).expect("valid");
            for &x in &a {
                tree.step(x);
            }
            let r = tree.results();
            match &reference {
                None => reference = Some(r),
                Some(expected) => assert_eq!(&r, expected, "{opts}"),
            }
        }
    }

    #[test]
    fn lru_options_are_rejected() {
        assert!(matches!(
            MultiAssocTree::new(2, 0, 4, 4, DewOptions::lru()),
            Err(DewError::UnsoundOptions(_))
        ));
    }

    #[test]
    fn assoc_one_only_still_works() {
        let a = addrs(1000, 0x11);
        let mut tree = MultiAssocTree::new(2, 0, 4, 1, DewOptions::default()).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        let r = tree.results();
        let records: Vec<Record> = a.iter().map(|&x| Record::read(x)).collect();
        for set_bits in 0..=4u32 {
            let sets = 1 << set_bits;
            let config = CacheConfig::new(sets, 1, 4, Replacement::Fifo).expect("valid");
            let expected = simulate_trace(config, &records).misses();
            assert_eq!(r.misses(sets, 1), Some(expected));
        }
    }
}
