//! **Extension**: all associativities of one block size in one FIFO pass —
//! the *fused* kernel behind [`crate::sweep_trace`]'s one-traversal-per-block-size
//! scheduling.
//!
//! The paper runs one DEW pass per `(block size, associativity)` pair
//! because FIFO has no stack property: unlike LRU, one tag list cannot
//! answer for several associativities. But nothing stops a single pass from
//! carrying **independent FIFO tag lists for every associativity** in each
//! tree node, sharing everything that *is* associativity-independent — the
//! walk, the MRA comparison (and its early termination, which is sound for
//! every associativity at once), the decoded block stream, and the
//! direct-mapped results. One [`MultiAssocTree`] pass therefore covers
//! `levels × assoc_list` configurations, turning the paper's 28-pass Table 1
//! sweep into 7 trace traversals, at the cost of wider nodes.
//!
//! # Storage
//!
//! Like [`crate::DewTree`] since the arena rebuild, the whole forest lives in
//! flat lanes: one dense MRA lane (shared by every associativity), and one
//! contiguous way-tag lane where node `i` holds the tag lists of *all*
//! associativities back to back (`tags[i*stride ..][..stride]`, list `k` at
//! its precomputed offset). A node evaluation therefore touches one
//! contiguous region regardless of how many associativities ride along.
//!
//! # The two kernels
//!
//! The step kernel is compiled twice, mirroring `DewTree`:
//!
//! * the **fast** kernel ([`MultiAssocTree::new`]) keeps no per-node
//!   counters and no wave/MRE/link state at all; each list's residency is
//!   decided by a branchless scan of its slice of the contiguous tag lane
//!   (invalid ways hold a sentinel), and FIFO hits mutate nothing;
//! * the **instrumented** kernel ([`MultiAssocTree::instrumented`])
//!   maintains the paper's full determination ladder per list — wave
//!   pointer, then the *intersection link* below, then MRE, then a
//!   stop-at-match search — with every [`DewCounters`] bucket live, both in
//!   aggregate and per associativity (so a fused pass can report the
//!   counters each per-associativity pass would have been entitled to).
//!
//! # The intersection link (CIPARSim-style pruning)
//!
//! CIPARSim (Haque et al., ICCAD 2011; see `PAPERS.md`) observed that FIFO
//! caches of the same block size and set count but different associativity
//! hold largely intersecting contents. This module exploits that
//! observation *exactly*, with a pointer that works like the paper's wave
//! pointers but across associativities instead of across set counts: each
//! way entry of list `k` carries the way its tag occupied in list `k+1` of
//! the same node when the tag was last handled there. When a request is
//! confirmed a **hit** in list `k`, one comparison at the linked way decides
//! hit *or* miss for list `k+1`, short-circuiting its search.
//!
//! Soundness is the wave-pointer argument transplanted: FIFO never moves a
//! resident block between ways, and a block's way in list `k+1` can only
//! change through an eviction followed by a re-insertion — and every
//! insertion into any list of a node happens while *handling that block at
//! that node*, which refreshes the link. So a consulted link is stale only
//! if the block left list `k+1` entirely, in which case the linked way now
//! holds a different tag and the comparison correctly reports a miss. The
//! consult is gated on list `k` *hitting*: after a fresh insert the entry's
//! link still describes the evicted victim and proves nothing about the
//! requested block (FIFO has no inclusion across associativities — Belady's
//! anomaly — which is exactly why the link carries a verifying comparison
//! instead of being trusted blindly).
//!
//! # Examples
//!
//! ```
//! use dew_core::{DewOptions, MultiAssocTree};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Set counts 1..=256, associativities 1/2/4/8, one pass.
//! let mut tree = MultiAssocTree::new(2, 0, 8, 8, DewOptions::default())?;
//! for i in 0..5_000u64 {
//!     tree.step_record(Record::read((i % 900) * 4));
//! }
//! let results = tree.results();
//! assert!(results.misses(64, 8).expect("simulated") <= results.accesses());
//! # Ok(())
//! # }
//! ```

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::{EMPTY_WAVE, INVALID_TAG};
use crate::options::{DewOptions, TreePolicy};
use crate::results::{AllAssocResults, LevelResult, PassResults};
use crate::simd::{
    first_match, prefetch_read, KernelBackend, ScalarScan, TagLane, TagScan, PF_DIST,
};
use crate::space::{DewError, PassConfig};

/// Sentinel for "no matching entry" (root level, previous-list miss, …).
const NO_ENTRY: usize = usize::MAX;

/// Pads a node's way-lane stride up to a whole number of 8-tag (64-byte)
/// groups, so consecutive node regions start on cache-line boundaries when
/// the lane base is line-aligned (see [`TagLane`]) and the wide scans read
/// whole lines. Strides under one line stay exact — several small nodes per
/// line beats alignment there. Padding lanes hold the invalid-tag sentinel
/// forever; they are scanned (harmlessly — requests never equal the
/// sentinel) but never written, and snapshots serialise only the logical
/// stride, so the byte format is unchanged.
const fn padded_stride(stride: usize) -> usize {
    if stride >= 8 {
        stride.next_multiple_of(8)
    } else {
        stride
    }
}

/// Snapshot magic of the fused multi-associativity forest (the single-pass
/// [`crate::DewTree`] format `DEWS` describes a different layout).
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"DEWM";
/// Snapshot format version of the fused forest.
const SNAP_VERSION: u8 = 1;

/// Per-associativity ladder tallies of the instrumented kernel, kept
/// separately from the aggregate [`DewCounters`] so a fused pass can be
/// fanned out into per-associativity counter reports.
#[derive(Debug, Clone, Copy, Default)]
struct ListCounters {
    wave_hits: u64,
    wave_misses: u64,
    mre_checks: u64,
    mre_misses: u64,
    intersection_hits: u64,
    intersection_misses: u64,
    searches: u64,
    search_comparisons: u64,
}

/// The fused forest: flat lanes over `total_nodes` nodes, each node carrying
/// every simulated associativity's tag list contiguously.
#[derive(Debug, Clone)]
struct FusedForest {
    /// Shared per-node MRA tags (also the direct-mapped cache contents).
    mra: Vec<u64>,
    /// Contiguous multi-width way-tag lane, cache-line aligned: node `i`'s
    /// region is `tags[i*pstride ..][..pstride]` (`pstride` the
    /// [`padded_stride`]), list `k` at `list_off[k]..+width[k]`.
    tags: TagLane,
    /// FIFO round-robin pointer per `(node, list)`:
    /// `fifo[i*num_lists + k]`.
    fifo: Vec<u32>,
    /// Valid-way count per `(node, list)`; instrumented only (the fast
    /// kernel's sentinel scan never needs it).
    valid: Vec<u32>,
    /// MRE tag per `(node, list)`; instrumented only.
    mre: Vec<u64>,
    /// Wave pointer preserved alongside the MRE tag; instrumented only.
    mre_wave: Vec<u32>,
    /// Wave-pointer lane, parallel to `tags` (padded stride included, so
    /// the two share indices); instrumented only.
    waves: Vec<u32>,
    /// Intersection-link lane, parallel to `tags`: the way this entry's tag
    /// occupied in the *next wider* list of the same node when last handled.
    /// Instrumented only.
    xlink: Vec<u32>,
    /// Node-index base per level plus a final total, as in `DewTree`.
    node_off: Vec<usize>,
    /// `(1 << set_bits) - 1` per level.
    set_mask: Vec<u64>,
    /// Misses per `(level, list)`, level-major.
    misses: Vec<u64>,
    /// Direct-mapped misses per level (from the shared MRA comparisons).
    dm_misses: Vec<u64>,
}

impl FusedForest {
    fn new(pass: &PassConfig, widths: &[usize], instrument: bool) -> Self {
        let mut node_off = Vec::with_capacity(pass.num_levels() as usize + 1);
        let mut set_mask = Vec::with_capacity(pass.num_levels() as usize);
        let mut total = 0usize;
        for set_bits in pass.min_set_bits()..=pass.max_set_bits() {
            node_off.push(total);
            set_mask.push((1u64 << set_bits) - 1);
            total += 1usize << set_bits;
        }
        node_off.push(total);
        let stride: usize = widths.iter().sum();
        let pstride = padded_stride(stride);
        let num_lists = widths.len();
        let num_levels = pass.num_levels() as usize;
        FusedForest {
            mra: vec![INVALID_TAG; total],
            tags: TagLane::filled(total * pstride, INVALID_TAG),
            fifo: vec![0; total * num_lists],
            valid: if instrument {
                vec![0; total * num_lists]
            } else {
                Vec::new()
            },
            mre: if instrument {
                vec![INVALID_TAG; total * num_lists]
            } else {
                Vec::new()
            },
            mre_wave: if instrument {
                vec![EMPTY_WAVE; total * num_lists]
            } else {
                Vec::new()
            },
            waves: if instrument {
                vec![EMPTY_WAVE; total * pstride]
            } else {
                Vec::new()
            },
            xlink: if instrument {
                vec![EMPTY_WAVE; total * pstride]
            } else {
                Vec::new()
            },
            node_off,
            set_mask,
            // `max(1)`: a DM-only tree (no lists) still iterates its levels
            // through `chunks_exact_mut`, which needs a nonzero stride.
            misses: vec![0; num_levels * num_lists.max(1)],
            dm_misses: vec![0; num_levels],
        }
    }
}

/// A single-pass FIFO simulator for a range of power-of-two associativities
/// at every set count in a range. See the module docs.
///
/// # Examples
///
/// One traversal answers every `(sets, assoc)` pair at one block size:
///
/// ```
/// use dew_core::{DewOptions, MultiAssocTree};
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// // Sets 1..=16, associativities 1, 2 and 4, 8-byte blocks.
/// let mut tree = MultiAssocTree::new(3, 0, 4, 4, DewOptions::default())?;
/// for i in 0..5_000u64 {
///     tree.step((i * 40) % 4096);
/// }
/// let results = tree.results();
/// assert_eq!(tree.assoc_list(), &[1, 2, 4]);
/// assert!(results.misses(16, 4).expect("simulated") <= 5_000);
/// assert!(results.misses(16, 1).is_some(), "DM rides along");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiAssocTree {
    /// Geometry; `assoc()` reports the largest simulated associativity.
    pass: PassConfig,
    opts: DewOptions,
    /// Every simulated associativity, ascending (includes 1 when the range
    /// starts there; associativity-1 results come from the MRA lane).
    assoc_list: Vec<u32>,
    /// Tag-list widths of the materialised lists (the associativities above
    /// 1), ascending powers of two.
    widths: Vec<usize>,
    /// Offset of each list inside a node's region of the way lane.
    list_off: Vec<usize>,
    /// Logical way-lane entries per node (`widths` summed).
    stride: usize,
    /// Allocated way-lane entries per node ([`padded_stride`] of `stride`).
    pstride: usize,
    /// Which tag-scan backend the batch drivers run
    /// ([`KernelBackend::active`] at construction; see
    /// [`MultiAssocTree::force_scan_backend`]).
    backend: KernelBackend,
    forest: FusedForest,
    /// Aggregate work counters (real work performed once).
    counters: DewCounters,
    /// Per-list ladder tallies, indexed like `widths`.
    list_counters: Vec<ListCounters>,
    /// Block of the previous request, for the CRCB-style elision extension.
    prev_block: u64,
    /// Which kernel instantiation `step` dispatches to.
    instrument: bool,
    /// `true` when `opts` matches the paper's default configuration.
    specialized: bool,
    /// Instrumented-walk scratch: per list, the global way-lane index of the
    /// parent node's matching entry (`NO_ENTRY` at the root).
    parent: Vec<usize>,
}

impl MultiAssocTree {
    /// Builds the fused forest for set counts
    /// `2^min_set_bits..=2^max_set_bits`, block size `2^block_bits`,
    /// associativities `1, 2, …, max_assoc`, using the fast
    /// (uninstrumented) kernel. Use [`MultiAssocTree::instrumented`] when
    /// the [`DewCounters`] breakdown matters.
    ///
    /// # Errors
    ///
    /// Geometry errors as [`PassConfig::new`];
    /// [`DewError::UnsoundOptions`] for LRU options (this extension is
    /// FIFO-only: LRU already gets all associativities from one list via the
    /// stack property — use [`crate::lru_tree::LruTreeSimulator`]).
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: DewOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        MultiAssocTree::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            false,
        )
    }

    /// As [`MultiAssocTree::new`], but with the instrumented kernel: the
    /// full per-list determination ladder (wave pointers, intersection
    /// links, MRE entries) with every counter live. Miss counts are
    /// bit-identical to the fast kernel's — a property-tested invariant.
    ///
    /// # Errors
    ///
    /// As [`MultiAssocTree::new`].
    pub fn instrumented(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: DewOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        MultiAssocTree::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            true,
        )
    }

    /// Full-control constructor: inclusive `log2` ranges for the set counts
    /// and the associativities (so a sweep whose space starts above
    /// associativity 1 does not pay for lists it will not report), and a
    /// runtime kernel selection. This is the entry point
    /// [`crate::sweep_trace`] uses for its fused per-block-size passes.
    ///
    /// # Errors
    ///
    /// As [`MultiAssocTree::new`], plus [`DewError::EmptySetRange`] when the
    /// associativity range is inverted.
    pub fn with_instrumentation(
        block_bits: u32,
        set_bits: (u32, u32),
        assoc_bits: (u32, u32),
        opts: DewOptions,
        instrument: bool,
    ) -> Result<Self, DewError> {
        opts.validate()?;
        if opts.policy != TreePolicy::Fifo {
            return Err(DewError::UnsoundOptions(
                "multi-assoc lists are FIFO-only; every other policy runs its own \
                 fused arena kernel (lru_tree, plru_tree, slru_tree)",
            ));
        }
        if assoc_bits.0 > assoc_bits.1 {
            return Err(DewError::EmptySetRange {
                min_set_bits: assoc_bits.0,
                max_set_bits: assoc_bits.1,
            });
        }
        let pass = PassConfig::new(block_bits, set_bits.0, set_bits.1, 1 << assoc_bits.1)?;
        let assoc_list: Vec<u32> = (assoc_bits.0..=assoc_bits.1).map(|b| 1 << b).collect();
        let widths: Vec<usize> = (assoc_bits.0.max(1)..=assoc_bits.1)
            .map(|b| 1usize << b)
            .collect();
        let mut list_off = Vec::with_capacity(widths.len());
        let mut stride = 0usize;
        for &w in &widths {
            list_off.push(stride);
            stride += w;
        }
        let specialized = opts.mra_stop
            && opts.wave
            && opts.mre
            && !opts.dup_elision
            && opts.policy == TreePolicy::Fifo;
        let num_lists = widths.len();
        Ok(MultiAssocTree {
            forest: FusedForest::new(&pass, &widths, instrument),
            pass,
            opts,
            assoc_list,
            widths,
            list_off,
            stride,
            pstride: padded_stride(stride),
            backend: KernelBackend::active(),
            counters: DewCounters::new(),
            list_counters: vec![ListCounters::default(); num_lists],
            prev_block: INVALID_TAG,
            instrument,
            specialized,
            parent: vec![NO_ENTRY; num_lists],
        })
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The forest geometry (`assoc()` reports the maximum).
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// `true` when this tree maintains the per-node work counters.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrument
    }

    /// Aggregate work counters: real work performed, with per-node MRA work
    /// counted once while ladder work is summed over the associativity
    /// lists. The [`DewCounters::is_consistent`] identity of a
    /// single-associativity [`crate::DewTree`] does **not** apply to this
    /// aggregate (one node evaluation feeds several lists); the fanned-out
    /// [`MultiAssocTree::pass_counters`] views restore it.
    #[must_use]
    pub fn counters(&self) -> &DewCounters {
        &self.counters
    }

    /// The tag-scan backend the batch drivers run
    /// ([`KernelBackend::active`] at construction time).
    #[must_use]
    pub fn scan_backend(&self) -> KernelBackend {
        self.backend
    }

    /// Pins the batch drivers to `backend`, regardless of what
    /// [`KernelBackend::active`] detected. This is the differential-testing
    /// hook: results, counters and snapshots are bit-identical under every
    /// backend (property-tested), so forcing [`KernelBackend::Scalar`] on
    /// one of two twin kernels turns any trace into an oracle check.
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `backend` is not available on this
    /// build and machine (see [`KernelBackend::is_available`]).
    pub fn force_scan_backend(&mut self, backend: KernelBackend) -> Result<(), DewError> {
        if !backend.is_available() {
            return Err(DewError::UnsoundOptions(
                "requested scan backend is not available on this build/machine",
            ));
        }
        self.backend = backend;
        Ok(())
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        self.step_block(addr >> self.pass.block_bits());
    }

    /// Simulates one request given as a pre-decoded block number
    /// (`addr >> block_bits` for this pass's block size).
    ///
    /// # Panics
    ///
    /// As [`MultiAssocTree::step`], if `block` equals the internal sentinel.
    pub fn step_block(&mut self, block: u64) {
        assert_ne!(
            block, INVALID_TAG,
            "block {block:#x} exceeds the supported range"
        );
        match (self.instrument, self.specialized) {
            (false, true) => self.step_block_fast::<true>(block),
            (false, false) => self.step_block_fast::<false>(block),
            (true, true) => self.kernel_instrumented::<true, 0, 0, _>(ScalarScan, block),
            (true, false) => self.kernel_instrumented::<false, 0, 0, _>(ScalarScan, block),
        }
    }

    /// Simulates a batch of pre-decoded block numbers (see
    /// `dew_trace::decode_blocks` / `dew_trace::BlockChunks`). This is the
    /// fastest way to drive a fused pass: the sweep decodes the trace once
    /// per block size and every associativity consumes the same lane.
    ///
    /// # Panics
    ///
    /// As [`MultiAssocTree::step`], if any block equals the internal
    /// sentinel.
    pub fn run_blocks(&mut self, blocks: &[u64]) {
        match (self.instrument, self.specialized) {
            (false, true) => self.run_blocks_fast::<true>(blocks),
            (false, false) => self.run_blocks_fast::<false>(blocks),
            (true, true) => self.run_blocks_instrumented::<true>(blocks),
            (true, false) => self.run_blocks_instrumented::<false>(blocks),
        }
    }

    /// Fast-kernel dispatch on the list shape. Consecutive power-of-two
    /// widths mean the whole shape is `(first width, list count)`; the
    /// common fused shapes (first width 2 with up to four lists — the
    /// paper's sweep ranges — plus the single-list jobs) get their own
    /// instantiation so every scan width is a compile-time constant and the
    /// per-list loop unrolls into straight-line vectorisable compares.
    /// Anything else falls back to the runtime-shape loop (`FIRST = 0`).
    ///
    /// The single-record path always uses the scalar oracle (bit-identical
    /// to every backend); the wide backends pay off — and are dispatched —
    /// in the batch drivers below.
    fn step_block_fast<const DEFAULT_PATH: bool>(&mut self, block: u64) {
        macro_rules! shape {
            ($b:expr, $($first:literal x $n:literal),+) => {
                match (self.widths.first().copied().unwrap_or(0), self.widths.len()) {
                    $(($first, $n) => self.kernel_fast::<DEFAULT_PATH, $first, $n, _>(ScalarScan, $b),)+
                    _ => self.kernel_fast::<DEFAULT_PATH, 0, 0, _>(ScalarScan, $b),
                }
            };
        }
        shape!(block, 2 x 1, 2 x 2, 2 x 3, 2 x 4, 4 x 1, 8 x 1, 16 x 1)
    }

    /// Batch-level backend dispatch: one selection per `run_blocks` call,
    /// so the per-scan compare/movemask stays a straight inlined sequence.
    /// The AVX2 arm routes through a `#[target_feature]` wrapper — rustc
    /// refuses to inline feature-gated code into plain callers, so the
    /// wrapper is where the whole batch loop gets compiled *as* AVX2 code.
    fn run_blocks_fast<const DEFAULT_PATH: bool>(&mut self, blocks: &[u64]) {
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => {
                // SAFETY: `backend` is only `Avx2` after runtime detection
                // (`KernelBackend::is_available` gates the constructor and
                // `force_scan_backend`).
                #[allow(unsafe_code)]
                unsafe {
                    self.run_blocks_fast_avx2::<DEFAULT_PATH>(blocks);
                }
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => {
                self.run_blocks_fast_impl::<DEFAULT_PATH, _>(crate::simd::Sse2Scan, blocks);
            }
            _ => self.run_blocks_fast_impl::<DEFAULT_PATH, _>(ScalarScan, blocks),
        }
    }

    /// The AVX2 compilation root of the fast batch loop (see
    /// [`MultiAssocTree::run_blocks_fast`]).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn run_blocks_fast_avx2<const DEFAULT_PATH: bool>(&mut self, blocks: &[u64]) {
        self.run_blocks_fast_impl::<DEFAULT_PATH, _>(crate::simd::Avx2Scan, blocks);
    }

    #[inline(always)]
    fn run_blocks_fast_impl<const DEFAULT_PATH: bool, S: TagScan>(
        &mut self,
        scan: S,
        blocks: &[u64],
    ) {
        macro_rules! shapes {
            ($($first:literal x $n:literal),+) => {
                match (self.widths.first().copied().unwrap_or(0), self.widths.len()) {
                    $(($first, $n) => self.drive_fast::<DEFAULT_PATH, $first, $n, S>(scan, blocks),)+
                    _ => self.drive_fast::<DEFAULT_PATH, 0, 0, S>(scan, blocks),
                }
            };
        }
        shapes!(2 x 1, 2 x 2, 2 x 3, 2 x 4, 4 x 1, 8 x 1, 16 x 1)
    }

    /// The fast batch loop: software prefetch of the deepest (largest,
    /// least cache-resident) level's MRA word and tag region [`PF_DIST`]
    /// requests ahead, then the per-request kernel.
    #[inline(always)]
    fn drive_fast<const DEFAULT_PATH: bool, const FIRST: usize, const NLISTS: usize, S: TagScan>(
        &mut self,
        scan: S,
        blocks: &[u64],
    ) {
        let deepest = self.forest.set_mask.len() - 1;
        let d_off = self.forest.node_off[deepest];
        let d_mask = self.forest.set_mask[deepest];
        let pstride = self.pstride;
        for (i, &b) in blocks.iter().enumerate() {
            assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
            if let Some(&ahead) = blocks.get(i + PF_DIST) {
                let node = d_off + (ahead & d_mask) as usize;
                prefetch_read(&self.forest.mra, node);
                prefetch_read(&self.forest.tags, node * pstride);
            }
            self.kernel_fast::<DEFAULT_PATH, FIRST, NLISTS, S>(scan, b);
        }
    }

    /// Batch-level backend dispatch of the instrumented kernel; the same
    /// shape as [`MultiAssocTree::run_blocks_fast`].
    fn run_blocks_instrumented<const DEFAULT_PATH: bool>(&mut self, blocks: &[u64]) {
        match self.backend {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Avx2 => {
                // SAFETY: `backend` is only `Avx2` after runtime detection.
                #[allow(unsafe_code)]
                unsafe {
                    self.run_blocks_instrumented_avx2::<DEFAULT_PATH>(blocks);
                }
            }
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            KernelBackend::Sse2 => {
                self.drive_instrumented::<DEFAULT_PATH, _>(crate::simd::Sse2Scan, blocks);
            }
            _ => self.drive_instrumented::<DEFAULT_PATH, _>(ScalarScan, blocks),
        }
    }

    /// The AVX2 compilation root of the instrumented batch loop.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn run_blocks_instrumented_avx2<const DEFAULT_PATH: bool>(&mut self, blocks: &[u64]) {
        self.drive_instrumented::<DEFAULT_PATH, _>(crate::simd::Avx2Scan, blocks);
    }

    #[inline(always)]
    fn drive_instrumented<const DEFAULT_PATH: bool, S: TagScan>(
        &mut self,
        scan: S,
        blocks: &[u64],
    ) {
        macro_rules! shapes {
            ($($first:literal x $n:literal),+) => {
                match (self.widths.first().copied().unwrap_or(0), self.widths.len()) {
                    $(($first, $n) =>
                        self.drive_instrumented_shaped::<DEFAULT_PATH, $first, $n, S>(scan, blocks),)+
                    _ => self.drive_instrumented_shaped::<DEFAULT_PATH, 0, 0, S>(scan, blocks),
                }
            };
        }
        shapes!(2 x 1, 2 x 2, 2 x 3, 2 x 4, 4 x 1, 8 x 1, 16 x 1)
    }

    #[inline(always)]
    fn drive_instrumented_shaped<
        const DEFAULT_PATH: bool,
        const FIRST: usize,
        const NLISTS: usize,
        S: TagScan,
    >(
        &mut self,
        scan: S,
        blocks: &[u64],
    ) {
        let deepest = self.forest.set_mask.len() - 1;
        let d_off = self.forest.node_off[deepest];
        let d_mask = self.forest.set_mask[deepest];
        let pstride = self.pstride;
        for (i, &b) in blocks.iter().enumerate() {
            assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
            if let Some(&ahead) = blocks.get(i + PF_DIST) {
                // As in the fast loop: the deepest level's MRA word and tag
                // region. (Prefetching the ladder lanes too was measured and
                // does not pay — most evaluations land on small, cached
                // levels, and the extra prefetches only burn load slots.)
                let node = d_off + (ahead & d_mask) as usize;
                prefetch_read(&self.forest.mra, node);
                prefetch_read(&self.forest.tags, node * pstride);
            }
            self.kernel_instrumented::<DEFAULT_PATH, FIRST, NLISTS, S>(scan, b);
        }
    }

    /// Shared per-request prologue of both kernels: request accounting and
    /// the CRCB-style duplicate elision. Returns `true` when the request was
    /// elided whole.
    #[inline(always)]
    fn prologue<const DEFAULT_PATH: bool>(&mut self, block: u64) -> bool {
        debug_assert!(!DEFAULT_PATH || self.specialized, "dispatch mismatch");
        self.counters.accesses += 1;
        if !DEFAULT_PATH && self.opts.dup_elision {
            if block == self.prev_block {
                self.counters.duplicate_skips += 1;
                return true;
            }
            self.prev_block = block;
        }
        false
    }

    /// The fast fused kernel: no counters, no wave/MRE/link lanes. Each
    /// list's residency is a branchless scan of its slice of the node's
    /// contiguous tag region; FIFO hits mutate nothing, so an MRA match
    /// (hit in every list) skips the lists entirely even when the early
    /// stop is disabled.
    ///
    /// `FIRST`/`NLISTS` encode the list shape when positive (consecutive
    /// power-of-two widths starting at `FIRST`, so every width, offset and
    /// the stride are compile-time constants) and are both `0` for the
    /// runtime fallback. `S` is the tag-scan backend the whole-region
    /// compare runs on ([`TagScan`]).
    fn kernel_fast<
        const DEFAULT_PATH: bool,
        const FIRST: usize,
        const NLISTS: usize,
        S: TagScan,
    >(
        &mut self,
        scan: S,
        block: u64,
    ) {
        if self.prologue::<DEFAULT_PATH>(block) {
            return;
        }
        debug_assert!(NLISTS == 0 || NLISTS == self.widths.len());
        debug_assert!(FIRST == 0 || Some(&FIRST) == self.widths.first());
        let num_lists = if NLISTS == 0 {
            self.widths.len()
        } else {
            NLISTS
        };
        // Consecutive power-of-two widths: list `k` is `FIRST << k` wide at
        // offset `FIRST·(2^k − 1)`, and the stride is `FIRST·(2^NLISTS − 1)`.
        let pstride = if FIRST == 0 {
            self.pstride
        } else {
            padded_stride(FIRST * ((1 << NLISTS) - 1))
        };
        debug_assert_eq!(pstride, self.pstride);
        let mra_stop = DEFAULT_PATH || self.opts.mra_stop;
        let f = &mut self.forest;
        let levels = f.set_mask.iter().zip(f.node_off.iter()).zip(
            f.misses
                .chunks_exact_mut(num_lists.max(1))
                .zip(f.dm_misses.iter_mut()),
        );
        for ((&mask, &off), (level_misses, level_dm_misses)) in levels {
            let node = off + (block & mask) as usize;
            if f.mra[node] == block {
                if mra_stop {
                    // Property 2, sound for every associativity at once.
                    return;
                }
                // Hit in every list; FIFO hits change nothing.
                continue;
            }
            *level_dm_misses += 1;
            f.mra[node] = block;
            let region = &mut f.tags[node * pstride..(node + 1) * pstride];
            if FIRST == 0 {
                // Runtime shape: independent wide scans per list (widths may
                // exceed one 64-lane mask window).
                #[allow(clippy::needless_range_loop)] // k indexes parallel lanes
                for k in 0..num_lists {
                    let (w, o) = (self.widths[k], self.list_off[k]);
                    let lane = &mut region[o..o + w];
                    if first_match(scan, lane, block).is_none() {
                        level_misses[k] += 1;
                        let fp = &mut f.fifo[node * num_lists + k];
                        lane[*fp as usize] = block;
                        *fp = crate::node::fifo_advance(*fp, w);
                    }
                }
            } else {
                // Const shape (pstride ≤ 32): one wide compare/movemask of
                // the node's whole contiguous region — every list at once —
                // into a position bitmask; invalid ways (including the
                // padding tail) hold the sentinel and a resident block
                // occupies exactly one way per list, so a list hits iff its
                // window of the mask is nonzero.
                let hit_mask = scan.match_mask(region, block);
                #[allow(clippy::needless_range_loop)] // k indexes parallel lanes
                for k in 0..num_lists {
                    let (w, o) = (FIRST << k, FIRST * ((1 << k) - 1));
                    if hit_mask & (((1u64 << w) - 1) << o) == 0 {
                        level_misses[k] += 1;
                        let fp = &mut f.fifo[node * num_lists + k];
                        region[o + *fp as usize] = block;
                        *fp = crate::node::fifo_advance(*fp, w);
                    }
                }
            }
        }
    }

    /// The instrumented fused kernel: the full determination ladder per
    /// list — wave pointer, then intersection link, then MRE, then a
    /// stop-at-match search — with the aggregate *and* per-list counters
    /// maintained. Miss counts are bit-identical to the fast kernel's.
    ///
    /// The ladder rides the same wide compare as the fast kernel: under a
    /// const shape (`FIRST`/`NLISTS` as in [`MultiAssocTree::kernel_fast`])
    /// one position-exact scan of the node's whole region answers residency
    /// for every list up front — a block occupies at most one way per list,
    /// so "the wave's way holds the block" is "the scan's bit for that way
    /// is set" — and the ladder stages then only decide which stage gets
    /// the credit and what the sequential ladder would have spent. Every
    /// counter stays bit-identical to the stage-by-stage compare sequence
    /// it replaces. The runtime shape (`FIRST = 0`, widths that may exceed
    /// one mask window) scans per list instead.
    fn kernel_instrumented<
        const DEFAULT_PATH: bool,
        const FIRST: usize,
        const NLISTS: usize,
        S: TagScan,
    >(
        &mut self,
        scan: S,
        block: u64,
    ) {
        if self.prologue::<DEFAULT_PATH>(block) {
            return;
        }
        debug_assert!(NLISTS == 0 || NLISTS == self.widths.len());
        debug_assert!(FIRST == 0 || Some(&FIRST) == self.widths.first());
        let num_lists = if NLISTS == 0 {
            self.widths.len()
        } else {
            NLISTS
        };
        let pstride = if FIRST == 0 {
            self.pstride
        } else {
            padded_stride(FIRST * ((1 << NLISTS) - 1))
        };
        debug_assert_eq!(pstride, self.pstride);
        let mra_stop = DEFAULT_PATH || self.opts.mra_stop;
        let use_wave = DEFAULT_PATH || self.opts.wave;
        let use_mre = DEFAULT_PATH || self.opts.mre;
        for p in &mut self.parent {
            *p = NO_ENTRY;
        }
        // Aggregate counters accumulate in locals and flush once at the
        // single exit below. Bumping `self.counters` fields inline instead
        // hits the same per-field address on every handled list, and the
        // resulting store-to-load-forwarding RMW chains were measured to
        // cost ~10% of the instrumented kernel's runtime. (A fully
        // branchless ladder of masked adds was also tried and measured
        // *slower*: it must load every ladder lane unconditionally, while
        // the staged ladder below loads only what the settled stage needs
        // -- the wave pointer settles ~90% of list handles on real traces.)
        let mut a_node_evals = 0u64;
        let mut a_tag_cmp = 0u64;
        let mut a_mra_stops = 0u64;
        let mut a_wave_hits = 0u64;
        let mut a_wave_misses = 0u64;
        let mut a_x_hits = 0u64;
        let mut a_x_misses = 0u64;
        let mut a_mre_misses = 0u64;
        let mut a_searches = 0u64;
        let mut a_search_cmp = 0u64;
        let f = &mut self.forest;
        'walk: for li in 0..f.set_mask.len() {
            let node = f.node_off[li] + (block & f.set_mask[li]) as usize;
            a_node_evals += 1;
            a_tag_cmp += 1; // the one shared MRA comparison
            let mra_match = f.mra[node] == block;
            if mra_match {
                if mra_stop {
                    // Property 2: hit here and at every larger set count,
                    // in every list at once.
                    a_mra_stops += 1;
                    break 'walk;
                }
            } else {
                f.dm_misses[li] += 1;
            }
            f.mra[node] = block;
            let base = node * pstride;
            // Const shape: one wide compare of the node's whole region
            // answers residency for every list of this node at once -- the
            // ladder stages below then only decide which stage gets the
            // credit, each with its paper-exact comparison count.
            let node_mask = if FIRST == 0 {
                0
            } else {
                scan.match_mask(&f.tags[base..base + pstride], block)
            };
            // The block's way entry in the previous (narrower) list of this
            // node, and whether that list *hit* (the consult gate of the
            // intersection link; see the module docs).
            let mut prev_entry = NO_ENTRY;
            let mut prev_hit = false;
            for k in 0..num_lists {
                let (w, o) = if FIRST == 0 {
                    (self.widths[k], self.list_off[k])
                } else {
                    (FIRST << k, FIRST * ((1 << k) - 1))
                };
                let start = base + o;
                let ml = node * num_lists + k;

                // Residency, settled once by the wide compare (lanes past
                // the valid prefix hold the sentinel and never match).
                let resident = if FIRST == 0 {
                    first_match(scan, &f.tags[start..start + w], block)
                } else {
                    let window = (node_mask >> o) & ((1u64 << w) - 1);
                    if window == 0 {
                        None
                    } else {
                        Some(window.trailing_zeros() as usize)
                    }
                };

                // Determination ladder -- counter accounting only from
                // here. Every stage's *outcome* is implied by residency
                // (Properties 3/4 and the link argument: a consulted
                // pointer that misses, or a matching MRE, proves absence),
                // so the stages test `resident` instead of re-comparing
                // tags; the debug asserts pin the implication.
                let mut determined = false;
                if use_wave && self.parent[k] != NO_ENTRY {
                    let wave = f.waves[self.parent[k]];
                    if wave != EMPTY_WAVE {
                        // Property 3: one comparison decides.
                        a_tag_cmp += 1;
                        debug_assert!((wave as usize) < w, "wave pointer within tag list");
                        if resident.is_some() {
                            debug_assert_eq!(
                                resident,
                                Some(wave as usize),
                                "a resident block is where its wave pointer says"
                            );
                            a_wave_hits += 1;
                            self.list_counters[k].wave_hits += 1;
                        } else {
                            a_wave_misses += 1;
                            self.list_counters[k].wave_misses += 1;
                        }
                        determined = true;
                    }
                }
                if !determined && prev_hit {
                    let x = f.xlink[prev_entry];
                    if x != EMPTY_WAVE {
                        // Intersection link: the narrower list hit, so the
                        // link was refreshed at this block's last handling
                        // and one comparison decides (module docs).
                        a_tag_cmp += 1;
                        debug_assert!((x as usize) < w, "intersection link within tag list");
                        if resident.is_some() {
                            debug_assert_eq!(
                                resident,
                                Some(x as usize),
                                "a resident block is where its link says"
                            );
                            a_x_hits += 1;
                            self.list_counters[k].intersection_hits += 1;
                        } else {
                            a_x_misses += 1;
                            self.list_counters[k].intersection_misses += 1;
                        }
                        determined = true;
                    }
                }
                if !determined && use_mre {
                    // Property 4: the most recently evicted block is
                    // certainly absent.
                    a_tag_cmp += 1;
                    self.list_counters[k].mre_checks += 1;
                    if f.mre[ml] == block {
                        debug_assert!(resident.is_none(), "an MRE match implies absence");
                        a_mre_misses += 1;
                        self.list_counters[k].mre_misses += 1;
                        determined = true;
                    }
                }
                if !determined {
                    a_searches += 1;
                    // The sequential search stops at the match, because the
                    // paper's comparison counts do: a hit at depth `i`
                    // costs `i + 1` comparisons, a miss costs `valid`.
                    let spent = match resident {
                        Some(i) => (i + 1) as u64,
                        None => f.valid[ml] as u64,
                    };
                    a_search_cmp += spent;
                    a_tag_cmp += spent;
                    let lc = &mut self.list_counters[k];
                    lc.searches += 1;
                    lc.search_comparisons += spent;
                }
                debug_assert!(
                    !(mra_match && resident.is_none()),
                    "an MRA match implies residency; miss determination is wrong"
                );

                let n = match resident {
                    Some(n) => n, // Algorithm 1: FIFO hits change nothing.
                    None => {
                        // Algorithm 2: Handle_miss.
                        f.misses[li * num_lists + k] += 1;
                        let n = f.fifo[ml] as usize;
                        if use_mre && f.mre[ml] == block {
                            // Exchange the victim way with the MRE entry,
                            // restoring the block's preserved wave pointer.
                            debug_assert_eq!(
                                f.valid[ml] as usize, w,
                                "MRE only holds a tag after an eviction (full list)"
                            );
                            std::mem::swap(&mut f.tags[start + n], &mut f.mre[ml]);
                            std::mem::swap(&mut f.waves[start + n], &mut f.mre_wave[ml]);
                        } else {
                            let evicted_tag = std::mem::replace(&mut f.tags[start + n], block);
                            let evicted_wave =
                                std::mem::replace(&mut f.waves[start + n], EMPTY_WAVE);
                            if evicted_tag == INVALID_TAG {
                                f.valid[ml] += 1;
                            } else if use_mre {
                                f.mre[ml] = evicted_tag;
                                f.mre_wave[ml] = evicted_wave;
                            }
                        }
                        f.fifo[ml] = crate::node::fifo_advance(f.fifo[ml], w);
                        n
                    }
                };
                // Refresh the parent's matching entry's wave pointer
                // (Algorithm 1 line 3 / Algorithm 2 line 10) ...
                if use_wave && self.parent[k] != NO_ENTRY {
                    f.waves[self.parent[k]] = n as u32;
                }
                self.parent[k] = start + n;
                // ... and the previous list's intersection link. The refresh
                // is unconditional (hit or insert): the block is resident in
                // both lists after handling, which is what keeps a later
                // consult exact.
                if prev_entry != NO_ENTRY {
                    f.xlink[prev_entry] = n as u32;
                }
                prev_entry = start + n;
                prev_hit = resident.is_some();
            }
        }
        let c = &mut self.counters;
        c.node_evaluations += a_node_evals;
        c.tag_comparisons += a_tag_cmp;
        c.mra_stops += a_mra_stops;
        c.wave_hits += a_wave_hits;
        c.wave_misses += a_wave_misses;
        c.intersection_hits += a_x_hits;
        c.intersection_misses += a_x_misses;
        c.mre_misses += a_mre_misses;
        c.searches += a_searches;
        c.search_comparisons += a_search_cmp;
    }

    /// Snapshot of the per-configuration miss counts (associativity 1, when
    /// simulated, comes from the shared direct-mapped accounting).
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        let include_dm = self.assoc_list.first() == Some(&1);
        let num_lists = self.widths.len();
        let misses = (0..self.forest.dm_misses.len())
            .map(|li| {
                let mut row = Vec::with_capacity(self.assoc_list.len());
                if include_dm {
                    row.push(self.forest.dm_misses[li]);
                }
                row.extend_from_slice(&self.forest.misses[li * num_lists..(li + 1) * num_lists]);
                row
            })
            .collect();
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            misses,
        )
    }

    /// Fans this fused pass out into the [`PassResults`] a standalone
    /// `(block size, assoc)` DEW pass would have produced, or `None` when
    /// `assoc` was not simulated. This is how [`crate::sweep_trace`] keeps
    /// its per-pass result shape while traversing the trace once per block
    /// size.
    #[must_use]
    pub fn pass_results(&self, assoc: u32) -> Option<PassResults> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        let pass = PassConfig::new(
            self.pass.block_bits(),
            self.pass.min_set_bits(),
            self.pass.max_set_bits(),
            assoc,
        )
        .ok()?;
        let num_lists = self.widths.len();
        let k = self.widths.iter().position(|&w| w == assoc as usize);
        let levels = self
            .forest
            .dm_misses
            .iter()
            .enumerate()
            .map(|(li, &dm)| {
                let misses = match k {
                    Some(k) => self.forest.misses[li * num_lists + k],
                    None => dm, // assoc 1: the MRA lane is the simulation
                };
                LevelResult::new(self.pass.min_set_bits() + li as u32, misses, dm)
            })
            .collect();
        Some(PassResults::new(pass, self.counters.accesses, levels))
    }

    /// The [`DewCounters`] view a standalone pass at `assoc` is entitled to
    /// report, derived from the fused walk: walk-level quantities
    /// (evaluations, MRA stops, the per-evaluation MRA comparison) are
    /// shared verbatim, ladder quantities come from that associativity's
    /// list. The [`DewCounters::is_consistent`] identity holds for every
    /// fanned-out view. Returns `None` when `assoc` was not simulated.
    #[must_use]
    pub fn pass_counters(&self, assoc: u32) -> Option<DewCounters> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        let shared = DewCounters {
            accesses: self.counters.accesses,
            duplicate_skips: self.counters.duplicate_skips,
            node_evaluations: self.counters.node_evaluations,
            mra_stops: self.counters.mra_stops,
            ..DewCounters::new()
        };
        let mut c = match self.widths.iter().position(|&w| w == assoc as usize) {
            Some(k) => {
                let lc = &self.list_counters[k];
                DewCounters {
                    wave_hits: lc.wave_hits,
                    wave_misses: lc.wave_misses,
                    mre_misses: lc.mre_misses,
                    intersection_hits: lc.intersection_hits,
                    intersection_misses: lc.intersection_misses,
                    searches: lc.searches,
                    search_comparisons: lc.search_comparisons,
                    tag_comparisons: self.counters.node_evaluations
                        + lc.wave_hits
                        + lc.wave_misses
                        + lc.mre_checks
                        + lc.intersection_hits
                        + lc.intersection_misses
                        + lc.search_comparisons,
                    ..shared
                }
            }
            None => {
                // Associativity 1: the shared MRA comparison *is* the
                // simulation; report each non-stopped evaluation as a
                // one-comparison search of the single way.
                let searches = self.counters.node_evaluations - self.counters.mra_stops;
                DewCounters {
                    searches,
                    search_comparisons: searches,
                    tag_comparisons: self.counters.node_evaluations + searches,
                    ..shared
                }
            }
        };
        if !self.instrument {
            // The fast kernel maintains only the request-level counters,
            // exactly like `DewTree::new`.
            c = DewCounters {
                accesses: self.counters.accesses,
                duplicate_skips: self.counters.duplicate_skips,
                ..DewCounters::new()
            };
        }
        Some(c)
    }

    /// Actual heap footprint of the forest's lanes in bytes (excludes
    /// counters and scratch).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let f = &self.forest;
        f.mra.len() * 8
            + f.tags.len() * 8
            + f.fifo.len() * 4
            + f.valid.len() * 4
            + f.mre.len() * 8
            + f.mre_wave.len() * 4
            + f.waves.len() * 4
            + f.xlink.len() * 4
    }

    /// Serialises the complete fused-pass state (geometry, options,
    /// counters, every lane) to bytes, in the spirit of
    /// [`crate::DewTree::to_snapshot`] but under its own magic (`DEWM`)
    /// since the fused forest has no per-pass equivalent layout. The
    /// sharded sweep's exact snapshot-handoff mode rebuilds a fresh kernel
    /// from these bytes at every shard boundary.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&SNAP_MAGIC);
        out.push(SNAP_VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.assoc_list[0].trailing_zeros());
        put_u32(&mut out, self.pass.assoc().trailing_zeros());
        let flags = u8::from(self.opts.mra_stop)
            | u8::from(self.opts.wave) << 1
            | u8::from(self.opts.mre) << 2
            | u8::from(self.opts.dup_elision) << 3
            | u8::from(self.instrument) << 4;
        out.push(flags);
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.mra_stops,
            c.wave_hits,
            c.wave_misses,
            c.mre_misses,
            c.intersection_hits,
            c.intersection_misses,
            c.searches,
            c.duplicate_skips,
            c.search_comparisons,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        for lc in &self.list_counters {
            for v in [
                lc.wave_hits,
                lc.wave_misses,
                lc.mre_checks,
                lc.mre_misses,
                lc.intersection_hits,
                lc.intersection_misses,
                lc.searches,
                lc.search_comparisons,
            ] {
                put_u64(&mut out, v);
            }
        }
        put_u64(&mut out, self.prev_block);
        let f = &self.forest;
        for &v in f.misses.iter().chain(&f.dm_misses).chain(&f.mra) {
            put_u64(&mut out, v);
        }
        // The way lanes are allocated at the padded stride but serialised at
        // the logical one — the padding tail is an immutable all-sentinel
        // alignment artefact, and leaving it out keeps the byte format
        // identical to the unpadded layout.
        let total_nodes = *f.node_off.last().expect("at least one level");
        for node in 0..total_nodes {
            let base = node * self.pstride;
            for &v in &f.tags[base..base + self.stride] {
                put_u64(&mut out, v);
            }
        }
        for &v in &f.fifo {
            put_u32(&mut out, v);
        }
        if self.instrument {
            for &v in &f.valid {
                put_u32(&mut out, v);
            }
            for &v in &f.mre {
                put_u64(&mut out, v);
            }
            for &v in &f.mre_wave {
                put_u32(&mut out, v);
            }
            for lane in [&f.waves, &f.xlink] {
                for node in 0..total_nodes {
                    let base = node * self.pstride;
                    for &v in &lane[base..base + self.stride] {
                        put_u32(&mut out, v);
                    }
                }
            }
        }
        out
    }

    /// Restores a fused pass from [`MultiAssocTree::to_snapshot`] output.
    /// The snapshot is self-describing; continuing the restored tree
    /// produces bit-identical results to the uninterrupted run (a
    /// property-tested invariant the sharded sweep relies on).
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError};
        let mut cur = Cursor::new(bytes);
        let magic = cur.bytes(4)?;
        if magic != SNAP_MAGIC {
            // A structurally valid buffer for a sibling policy kernel is a
            // policy mixup, not random corruption — report it as such.
            for sibling in [
                crate::lru_tree::SNAP_MAGIC,
                crate::plru_tree::SNAP_MAGIC,
                crate::slru_tree::SNAP_MAGIC,
            ] {
                if magic == sibling {
                    return Err(SnapshotError::PolicyMismatch {
                        expected: SNAP_MAGIC,
                        found: sibling,
                    });
                }
            }
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits) = (cur.u32()?, cur.u32()?, cur.u32()?);
        let (assoc_lo_bits, assoc_hi_bits) = (cur.u32()?, cur.u32()?);
        let flags = cur.u8()?;
        let opts = DewOptions {
            mra_stop: flags & 1 != 0,
            wave: flags & 2 != 0,
            mre: flags & 4 != 0,
            dup_elision: flags & 8 != 0,
            policy: TreePolicy::Fifo,
        };
        let instrument = flags & 16 != 0;
        let mut tree = MultiAssocTree::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (assoc_lo_bits, assoc_hi_bits),
            opts,
            instrument,
        )
        .map_err(|_| SnapshotError::Corrupt("invalid fused-pass geometry"))?;
        let c = &mut tree.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.mra_stops = cur.u64()?;
        c.wave_hits = cur.u64()?;
        c.wave_misses = cur.u64()?;
        c.mre_misses = cur.u64()?;
        c.intersection_hits = cur.u64()?;
        c.intersection_misses = cur.u64()?;
        c.searches = cur.u64()?;
        c.duplicate_skips = cur.u64()?;
        c.search_comparisons = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        for lc in &mut tree.list_counters {
            lc.wave_hits = cur.u64()?;
            lc.wave_misses = cur.u64()?;
            lc.mre_checks = cur.u64()?;
            lc.mre_misses = cur.u64()?;
            lc.intersection_hits = cur.u64()?;
            lc.intersection_misses = cur.u64()?;
            lc.searches = cur.u64()?;
            lc.search_comparisons = cur.u64()?;
        }
        tree.prev_block = cur.u64()?;
        let num_lists = tree.widths.len();
        let (stride, pstride) = (tree.stride, tree.pstride);
        let f = &mut tree.forest;
        for v in f
            .misses
            .iter_mut()
            .chain(&mut f.dm_misses)
            .chain(&mut f.mra)
        {
            *v = cur.u64()?;
        }
        // Snapshots carry the logical stride per node; the padding tail
        // keeps its construction-time sentinels (see `to_snapshot`).
        let total_nodes = *f.node_off.last().expect("at least one level");
        for node in 0..total_nodes {
            let base = node * pstride;
            for v in &mut f.tags[base..base + stride] {
                *v = cur.u64()?;
            }
        }
        for (i, v) in f.fifo.iter_mut().enumerate() {
            *v = cur.u32()?;
            if num_lists > 0 && *v as usize >= tree.widths[i % num_lists] {
                return Err(SnapshotError::Corrupt("fifo pointer out of range"));
            }
        }
        if instrument {
            for (i, v) in f.valid.iter_mut().enumerate() {
                *v = cur.u32()?;
                if num_lists > 0 && *v as usize > tree.widths[i % num_lists] {
                    return Err(SnapshotError::Corrupt("valid count out of range"));
                }
            }
            for v in &mut f.mre {
                *v = cur.u64()?;
            }
            for v in &mut f.mre_wave {
                *v = cur.u32()?;
            }
            for lane in [&mut f.waves, &mut f.xlink] {
                for node in 0..total_nodes {
                    let base = node * pstride;
                    for v in &mut lane[base..base + stride] {
                        *v = cur.u32()?;
                    }
                }
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DewTree;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 90) * 4
                }
            })
            .collect()
    }

    #[test]
    fn matches_reference_for_every_assoc_and_set_count() {
        let a = addrs(3000, 0xA5A5);
        for instrument in [false, true] {
            let mut tree = MultiAssocTree::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                DewOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                tree.step(x);
            }
            let r = tree.results();
            let records: Vec<Record> = a.iter().map(|&x| Record::read(x)).collect();
            for set_bits in 0..=5u32 {
                for assoc in [1u32, 2, 4, 8] {
                    let sets = 1 << set_bits;
                    let config =
                        CacheConfig::new(sets, assoc, 4, Replacement::Fifo).expect("valid");
                    let expected = simulate_trace(config, &records).misses();
                    assert_eq!(
                        r.misses(sets, assoc),
                        Some(expected),
                        "sets={sets} assoc={assoc} instrument={instrument}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_and_instrumented_kernels_are_bit_identical() {
        let a = addrs(5000, 0xF00D);
        for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
            let mut fast = MultiAssocTree::new(2, 0, 6, 8, opts).expect("valid");
            let mut slow = MultiAssocTree::instrumented(2, 0, 6, 8, opts).expect("valid");
            for &x in &a {
                fast.step(x);
                slow.step(x);
            }
            assert_eq!(fast.results(), slow.results(), "{opts}");
            assert_eq!(fast.counters().accesses, slow.counters().accesses, "{opts}");
        }
    }

    #[test]
    fn run_blocks_matches_per_record_stepping() {
        let a = addrs(3000, 0xB10C);
        let blocks: Vec<u64> = a.iter().map(|&x| x >> 2).collect();
        for instrument in [false, true] {
            let mut stepped = MultiAssocTree::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                DewOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                stepped.step(x);
            }
            let mut batched = MultiAssocTree::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                DewOptions::default(),
                instrument,
            )
            .expect("valid");
            batched.run_blocks(&blocks);
            assert_eq!(stepped.results(), batched.results());
            assert_eq!(stepped.counters(), batched.counters());
        }
    }

    #[test]
    fn agrees_with_separate_dew_trees_and_saves_comparisons() {
        let a = addrs(4000, 0x77);
        let mut multi =
            MultiAssocTree::instrumented(2, 0, 8, 16, DewOptions::default()).expect("valid");
        for &x in &a {
            multi.step(x);
        }
        let mr = multi.results();

        let mut separate_comparisons = 0;
        for assoc in [2u32, 4, 8, 16] {
            let pass = PassConfig::new(2, 0, 8, assoc).expect("valid");
            let mut tree = DewTree::instrumented(pass, DewOptions::default()).expect("sound");
            for &x in &a {
                tree.step(x);
            }
            separate_comparisons += tree.counters().tag_comparisons;
            let r = tree.results();
            for set_bits in 0..=8u32 {
                let sets = 1 << set_bits;
                assert_eq!(
                    mr.misses(sets, assoc),
                    r.misses(sets, assoc),
                    "assoc={assoc}"
                );
                assert_eq!(
                    mr.misses(sets, 1),
                    r.misses(sets, 1),
                    "DM via assoc={assoc}"
                );
            }
        }
        assert!(
            multi.counters().tag_comparisons < separate_comparisons,
            "sharing the walk, MRA and intersection links must cut total comparisons: {} vs {}",
            multi.counters().tag_comparisons,
            separate_comparisons
        );
    }

    #[test]
    fn intersection_links_fire_and_fanned_counters_are_consistent() {
        // The link sits *after* the paper's wave pointer in the ladder, so
        // with waves disabled it becomes the primary short-circuit: a loopy
        // working set gives the narrower lists plenty of hits to feed the
        // links of the wider ones.
        let a: Vec<u64> = (0..6000u64).map(|i| ((i * 13) % 200) * 4).collect();
        let opts = DewOptions {
            wave: false,
            ..DewOptions::default()
        };
        let mut tree = MultiAssocTree::instrumented(2, 0, 6, 8, opts).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        assert!(
            tree.counters().intersection_total() > 0,
            "intersection links must settle some evaluations: {}",
            tree.counters()
        );
        for &assoc in tree.assoc_list() {
            let c = tree.pass_counters(assoc).expect("simulated");
            assert!(c.is_consistent(), "assoc={assoc}: {c}");
            assert_eq!(c.accesses, a.len() as u64);
            assert_eq!(c.node_evaluations, tree.counters().node_evaluations);
        }
        assert!(tree.pass_counters(32).is_none());
    }

    #[test]
    fn intersection_links_fire_at_the_root_under_default_options() {
        // With waves on, the link's exclusive territory is the root level
        // (which has no parent entry to hold a wave pointer): loop over a
        // working set that fits the wider root lists but not the narrowest.
        let a: Vec<u64> = (0..4000u64).map(|i| (i % 3) * 4).collect();
        let mut tree =
            MultiAssocTree::instrumented(2, 0, 4, 8, DewOptions::default()).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        assert!(
            tree.counters().intersection_hits > 0,
            "the 4-way root hits must short-circuit the 8-way search: {}",
            tree.counters()
        );
        for &assoc in tree.assoc_list() {
            let c = tree.pass_counters(assoc).expect("simulated");
            assert!(c.is_consistent(), "assoc={assoc}: {c}");
        }
    }

    #[test]
    fn pass_results_fan_out_matches_all_assoc_view() {
        let a = addrs(2500, 0xFA11);
        let mut tree = MultiAssocTree::new(3, 1, 6, 8, DewOptions::default()).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        let all = tree.results();
        for &assoc in tree.assoc_list() {
            let pr = tree.pass_results(assoc).expect("simulated");
            assert_eq!(pr.pass().assoc(), assoc);
            for set_bits in 1..=6u32 {
                let sets = 1 << set_bits;
                assert_eq!(
                    pr.misses(sets, assoc),
                    all.misses(sets, assoc),
                    "sets={sets} assoc={assoc}"
                );
            }
        }
        assert!(tree.pass_results(16).is_none());
    }

    #[test]
    fn assoc_range_above_one_skips_narrow_lists() {
        let a = addrs(2000, 0x404);
        let mut ranged =
            MultiAssocTree::with_instrumentation(2, (0, 4), (2, 3), DewOptions::default(), false)
                .expect("valid");
        let mut full = MultiAssocTree::new(2, 0, 4, 8, DewOptions::default()).expect("valid");
        for &x in &a {
            ranged.step(x);
            full.step(x);
        }
        assert_eq!(ranged.assoc_list(), &[4, 8]);
        let (rr, fr) = (ranged.results(), full.results());
        for set_bits in 0..=4u32 {
            let sets = 1 << set_bits;
            for assoc in [4u32, 8] {
                assert_eq!(rr.misses(sets, assoc), fr.misses(sets, assoc));
            }
            assert_eq!(rr.misses(sets, 1), None, "assoc 1 not in the range");
            assert_eq!(rr.misses(sets, 2), None, "assoc 2 not in the range");
        }
    }

    #[test]
    fn wide_runtime_shapes_use_the_fallback_scan() {
        // Widths 2..=32 (stride 62) exceed the position bitmask of the
        // const-shape kernel, exercising the runtime fallback.
        let a = addrs(2500, 0x3C3C);
        let mut tree = MultiAssocTree::new(2, 0, 3, 32, DewOptions::default()).expect("valid");
        for &x in &a {
            tree.step(x);
        }
        let r = tree.results();
        let records: Vec<Record> = a.iter().map(|&x| Record::read(x)).collect();
        for set_bits in 0..=3u32 {
            for assoc in [2u32, 16, 32] {
                let sets = 1 << set_bits;
                let config = CacheConfig::new(sets, assoc, 4, Replacement::Fifo).expect("valid");
                let expected = simulate_trace(config, &records).misses();
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(expected),
                    "sets={sets} assoc={assoc}"
                );
            }
        }
    }

    #[test]
    fn options_do_not_change_results() {
        let a = addrs(2000, 0x99);
        let mut reference = None;
        for opts in DewOptions::ablation_grid(TreePolicy::Fifo) {
            let mut tree = MultiAssocTree::instrumented(2, 0, 4, 4, opts).expect("valid");
            for &x in &a {
                tree.step(x);
            }
            let r = tree.results();
            match &reference {
                None => reference = Some(r),
                Some(expected) => assert_eq!(&r, expected, "{opts}"),
            }
        }
    }

    #[test]
    fn duplicate_elision_preserves_results() {
        let a: Vec<u64> = (0..3000u64).map(|i| i % 700).collect();
        let plain = {
            let mut t = MultiAssocTree::new(4, 0, 5, 8, DewOptions::default()).expect("valid");
            for &x in &a {
                t.step(x);
            }
            t.results()
        };
        let opts = DewOptions {
            dup_elision: true,
            ..DewOptions::default()
        };
        let mut t = MultiAssocTree::instrumented(4, 0, 5, 8, opts).expect("valid");
        for &x in &a {
            t.step(x);
        }
        assert_eq!(t.results(), plain, "elision must not change results");
        assert!(t.counters().duplicate_skips > 1000);
    }

    #[test]
    fn lru_options_are_rejected() {
        assert!(matches!(
            MultiAssocTree::new(2, 0, 4, 4, DewOptions::lru()),
            Err(DewError::UnsoundOptions(_))
        ));
    }

    #[test]
    fn bad_assoc_ranges_are_rejected() {
        assert!(matches!(
            MultiAssocTree::new(2, 0, 4, 3, DewOptions::default()),
            Err(DewError::BadAssoc(3))
        ));
        assert!(matches!(
            MultiAssocTree::new(2, 0, 4, 0, DewOptions::default()),
            Err(DewError::BadAssoc(0))
        ));
        assert!(MultiAssocTree::with_instrumentation(
            2,
            (0, 4),
            (3, 1),
            DewOptions::default(),
            false
        )
        .is_err());
    }

    #[test]
    fn assoc_one_only_still_works() {
        let a = addrs(1000, 0x11);
        for instrument in [false, true] {
            let mut tree = MultiAssocTree::with_instrumentation(
                2,
                (0, 4),
                (0, 0),
                DewOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                tree.step(x);
            }
            let r = tree.results();
            let records: Vec<Record> = a.iter().map(|&x| Record::read(x)).collect();
            for set_bits in 0..=4u32 {
                let sets = 1 << set_bits;
                let config = CacheConfig::new(sets, 1, 4, Replacement::Fifo).expect("valid");
                let expected = simulate_trace(config, &records).misses();
                assert_eq!(r.misses(sets, 1), Some(expected));
            }
            let c = tree.pass_counters(1).expect("simulated");
            assert!(c.is_consistent());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_block_panics_in_batches() {
        let mut t = MultiAssocTree::new(0, 0, 1, 2, DewOptions::default()).expect("valid");
        t.run_blocks(&[0, 1, u64::MAX]);
    }
}
