//! Single-pass multi-configuration **LRU** simulation over the same binomial
//! forest — the comparator family DEW is positioned against.
//!
//! The paper's related work (Section 2) builds on two classic LRU facts that
//! FIFO lacks:
//!
//! 1. **Stack property** (Mattson/Gecsei): keeping each set as a
//!    recency-ordered list, a request that hits at depth `d` hits every
//!    associativity `a > d` — one list yields exact results for *all*
//!    associativities simultaneously.
//! 2. **Set-refinement inclusion** (Hill & Smith; the basis of Janapsatya's
//!    method): a hit in the cache with `S` sets is guaranteed to be a hit
//!    with `2S` sets, because the competitors of a block in the finer cache
//!    are a subset of its competitors in the coarser one. Consequently a
//!    block's hit depth is non-increasing down the tree, and once it hits at
//!    depth 0 (it is the set's MRU block) it is at depth 0 everywhere below:
//!    the walk can stop with *no* state updates — the LRU analogue of DEW's
//!    Property 2.
//!
//! [`LruTreeSimulator`] implements this family in the spirit of Janapsatya's
//! method with the CRCB-style consecutive-duplicate elision of Tojo et al.
//! (both toggleable via [`LruTreeOptions`]): MRU-first searches exploit
//! temporal locality, and per-node move-to-front lists produce exact miss
//! counts for every power-of-two associativity up to the list depth, at every
//! set count, in one pass.
//!
//! # Examples
//!
//! ```
//! use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Set counts 1..=8, associativities 1, 2 and 4, 4-byte blocks.
//! let mut sim = LruTreeSimulator::new(2, 0, 3, 4, LruTreeOptions::default())?;
//! for i in 0..100u64 {
//!     sim.step_record(Record::read((i % 10) * 4));
//! }
//! let misses_dm = sim.results().misses(8, 1).expect("simulated");
//! let misses_4w = sim.results().misses(8, 4).expect("simulated");
//! assert!(misses_4w <= misses_dm, "the LRU stack property");
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dew_trace::Record;

use crate::node::INVALID_TAG;
use crate::results::AllAssocResults;
use crate::space::{DewError, PassConfig};

/// Behaviour toggles of the LRU comparator (both default to on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LruTreeOptions {
    /// Stop the walk when the request hits at depth 0 (it is the MRU block
    /// of the set): by set-refinement inclusion it is MRU at every larger
    /// set count, so no accounting or list update is needed below.
    pub depth_zero_stop: bool,
    /// CRCB-style elision: a request to the same block as the immediately
    /// preceding request hits at depth 0 everywhere and is skipped outright.
    pub duplicate_elision: bool,
}

impl Default for LruTreeOptions {
    fn default() -> Self {
        LruTreeOptions {
            depth_zero_stop: true,
            duplicate_elision: true,
        }
    }
}

/// Work counters of the LRU comparator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruTreeCounters {
    /// Requests simulated (skipped duplicates included).
    pub accesses: u64,
    /// Tree nodes visited.
    pub node_evaluations: u64,
    /// Walks ended early by a depth-0 hit.
    pub depth_zero_stops: u64,
    /// Requests elided as consecutive duplicates.
    pub duplicate_skips: u64,
    /// Tag comparisons performed (MRU-first sequential search).
    pub tag_comparisons: u64,
}

impl fmt::Display for LruTreeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} evaluations, {} depth-0 stops, {} duplicate skips, {} comparisons",
            self.accesses,
            self.node_evaluations,
            self.depth_zero_stops,
            self.duplicate_skips,
            self.tag_comparisons
        )
    }
}

#[derive(Debug, Clone)]
struct LruLevel {
    /// `num_sets × max_assoc` tags, each set's slice in MRU-first order.
    tags: Vec<u64>,
    /// Valid prefix length per set.
    valid: Vec<u32>,
    /// Miss counters indexed like the associativity list (1, 2, 4, …).
    misses: Vec<u64>,
}

/// Exact single-pass LRU simulator for all set counts in a range and all
/// power-of-two associativities up to a maximum. See the module docs.
#[derive(Debug, Clone)]
pub struct LruTreeSimulator {
    pass: PassConfig,
    opts: LruTreeOptions,
    assoc_list: Vec<u32>,
    levels: Vec<LruLevel>,
    counters: LruTreeCounters,
    prev_block: u64,
}

impl LruTreeSimulator {
    /// Builds a simulator for set counts `2^min_set_bits..=2^max_set_bits`,
    /// block size `2^block_bits` bytes, and associativities
    /// `1, 2, 4, …, max_assoc`.
    ///
    /// # Errors
    ///
    /// The same geometry validation as [`PassConfig::new`].
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: LruTreeOptions,
    ) -> Result<Self, DewError> {
        let pass = PassConfig::new(block_bits, min_set_bits, max_set_bits, max_assoc)?;
        let assoc_list: Vec<u32> = (0..=max_assoc.trailing_zeros()).map(|b| 1 << b).collect();
        let levels = (min_set_bits..=max_set_bits)
            .map(|sb| {
                let n = 1usize << sb;
                LruLevel {
                    tags: vec![INVALID_TAG; n * max_assoc as usize],
                    valid: vec![0; n],
                    misses: vec![0; assoc_list.len()],
                }
            })
            .collect();
        Ok(LruTreeSimulator {
            pass,
            opts,
            assoc_list,
            levels,
            counters: LruTreeCounters::default(),
            prev_block: INVALID_TAG,
        })
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The geometry of the forest.
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// The work counters.
    #[must_use]
    pub fn counters(&self) -> &LruTreeCounters {
        &self.counters
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        let block = addr >> self.pass.block_bits();
        assert_ne!(
            block, INVALID_TAG,
            "address {addr:#x} exceeds the supported range"
        );
        self.counters.accesses += 1;
        if self.opts.duplicate_elision && block == self.prev_block {
            // The block is the MRU entry of every set on its path: a hit at
            // depth 0 for every configuration, and move-to-front is a no-op.
            self.counters.duplicate_skips += 1;
            return;
        }
        self.prev_block = block;
        let max_assoc = self.pass.assoc() as usize;

        for li in 0..self.levels.len() {
            let set_bits = self.pass.min_set_bits() + li as u32;
            let set_idx = if set_bits == 0 {
                0
            } else {
                (block & ((1u64 << set_bits) - 1)) as usize
            };
            self.counters.node_evaluations += 1;
            let level = &mut self.levels[li];
            let base = set_idx * max_assoc;
            let valid = level.valid[set_idx] as usize;
            let list = &mut level.tags[base..base + max_assoc];

            // MRU-first search: Janapsatya's temporal-locality order.
            let mut depth = None;
            for (d, &t) in list[..valid].iter().enumerate() {
                self.counters.tag_comparisons += 1;
                if t == block {
                    depth = Some(d);
                    break;
                }
            }

            match depth {
                Some(0) => {
                    // Depth 0: a hit for every associativity; by inclusion it
                    // is depth 0 at every larger set count too.
                    if self.opts.depth_zero_stop {
                        self.counters.depth_zero_stops += 1;
                        return;
                    }
                }
                Some(d) => {
                    // Stack property: miss for every associativity <= d.
                    for (ai, &a) in self.assoc_list.iter().enumerate() {
                        if (a as usize) <= d {
                            level.misses[ai] += 1;
                        }
                    }
                    // Move to front preserves exact LRU order for all assocs.
                    list[..=d].rotate_right(1);
                }
                None => {
                    for m in &mut level.misses {
                        *m += 1;
                    }
                    // Insert at the MRU position; the LRU tag of a full list
                    // falls off the end (evicted from the widest cache; the
                    // narrower caches' contents are the list prefixes).
                    let occupied = valid.min(max_assoc);
                    if occupied < max_assoc {
                        level.valid[set_idx] = (occupied + 1) as u32;
                    }
                    list[..(occupied + 1).min(max_assoc)].rotate_right(1);
                    list[0] = block;
                }
            }
        }
    }

    /// Snapshot of the per-configuration miss counts.
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            self.levels.iter().map(|l| l.misses.clone()).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 80) * 4
                }
            })
            .collect()
    }

    fn oracle(sets: u32, assoc: u32, block: u32, addrs: &[u64]) -> u64 {
        let records: Vec<Record> = addrs.iter().map(|&a| Record::read(a)).collect();
        simulate_trace(
            CacheConfig::new(sets, assoc, block, Replacement::Lru).expect("valid"),
            &records,
        )
        .misses()
    }

    #[test]
    fn matches_reference_lru_for_all_configs() {
        let a = addrs(3000, 0x5EED_1111);
        let mut sim = LruTreeSimulator::new(2, 0, 5, 8, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for set_bits in 0..=5u32 {
            for assoc in [1u32, 2, 4, 8] {
                let sets = 1 << set_bits;
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(oracle(sets, assoc, 4, &a)),
                    "sets={sets} assoc={assoc}"
                );
            }
        }
    }

    #[test]
    fn options_do_not_change_results() {
        let a = addrs(2000, 0x5EED_2222);
        let variants = [
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: true,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: true,
            },
            LruTreeOptions::default(),
        ];
        let runs: Vec<AllAssocResults> = variants
            .iter()
            .map(|&o| {
                let mut sim = LruTreeSimulator::new(2, 0, 4, 4, o).expect("valid");
                for &x in &a {
                    sim.step(x);
                }
                sim.results()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    }

    #[test]
    fn optimisations_cut_work() {
        // A loopy trace with many consecutive duplicates.
        let mut a = Vec::new();
        for i in 0..400u64 {
            let x = (i % 5) * 4;
            a.push(x);
            a.push(x); // immediate duplicate
        }
        let run = |o: LruTreeOptions| {
            let mut sim = LruTreeSimulator::new(2, 0, 6, 4, o).expect("valid");
            for &x in &a {
                sim.step(x);
            }
            *sim.counters()
        };
        let off = run(LruTreeOptions {
            depth_zero_stop: false,
            duplicate_elision: false,
        });
        let on = run(LruTreeOptions::default());
        assert!(on.node_evaluations < off.node_evaluations);
        assert!(on.tag_comparisons < off.tag_comparisons);
        assert!(on.duplicate_skips > 0);
    }

    #[test]
    fn stack_property_holds_in_results() {
        let a = addrs(2500, 0x5EED_3333);
        let mut sim = LruTreeSimulator::new(2, 0, 5, 16, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for set_bits in 0..=5u32 {
            let sets = 1 << set_bits;
            let mut prev = u64::MAX;
            for assoc in [1u32, 2, 4, 8, 16] {
                let m = r.misses(sets, assoc).expect("simulated");
                assert!(m <= prev, "LRU misses non-increasing in associativity");
                prev = m;
            }
        }
    }

    #[test]
    fn inclusion_property_holds_in_results() {
        let a = addrs(2500, 0x5EED_4444);
        let mut sim = LruTreeSimulator::new(2, 0, 6, 4, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for assoc in [1u32, 2, 4] {
            let mut prev = u64::MAX;
            for set_bits in 0..=6u32 {
                let m = r.misses(1 << set_bits, assoc).expect("simulated");
                assert!(
                    m <= prev,
                    "LRU misses non-increasing in set count (inclusion)"
                );
                prev = m;
            }
        }
    }

    #[test]
    fn unknown_configs_return_none() {
        let sim = LruTreeSimulator::new(2, 1, 3, 4, LruTreeOptions::default()).expect("valid");
        let r = sim.results();
        assert_eq!(r.misses(1, 4), None, "below min set count");
        assert_eq!(r.misses(8, 3), None, "unsimulated associativity");
        assert_eq!(r.misses(6, 2), None, "non power-of-two sets");
    }
}
