//! Single-pass multi-configuration **LRU** simulation over the same binomial
//! forest — the comparator family DEW is positioned against — on the same
//! flat-arena storage and two-kernel compilation scheme as [`crate::DewTree`]
//! and [`crate::MultiAssocTree`].
//!
//! The paper's related work (Section 2) builds on two classic LRU facts that
//! FIFO lacks:
//!
//! 1. **Stack property** (Mattson/Gecsei): keeping each set as a
//!    recency-ordered list, a request that hits at depth `d` hits every
//!    associativity `a > d` — one list yields exact results for *all*
//!    associativities simultaneously.
//! 2. **Set-refinement inclusion** (Hill & Smith; the basis of Janapsatya's
//!    method): a hit in the cache with `S` sets is guaranteed to be a hit
//!    with `2S` sets, because the competitors of a block in the finer cache
//!    are a subset of its competitors in the coarser one. Consequently a
//!    block's hit depth is non-increasing down the tree, and once it hits at
//!    depth 0 (it is the set's MRU block) it is at depth 0 everywhere below:
//!    the walk can stop with *no* state updates — the LRU analogue of DEW's
//!    Property 2.
//!
//! [`LruTreeSimulator`] implements this family in the spirit of Janapsatya's
//! method with the CRCB-style consecutive-duplicate elision of Tojo et al.
//! (both toggleable via [`LruTreeOptions`]): MRU-first searches exploit
//! temporal locality, and per-node move-to-front lists produce exact miss
//! counts for every power-of-two associativity up to the list depth, at every
//! set count, in one pass.
//!
//! # Storage
//!
//! The whole forest lives in flat lanes: one dense **MRA lane** holding every
//! node's depth-0 (MRU) tag — which is simultaneously the direct-mapped cache
//! contents and the operand of the stack-property early exit — and one
//! contiguous **recency lane** where node `i`'s move-to-front list occupies
//! `tags[i*width ..][..width]` in MRU-first order, sized to the widest
//! requested associativity. Cold ways hold a sentinel at the tail of the
//! list, so a miss update is one `rotate_right(1)` of the whole region
//! followed by a front store — no valid-count bookkeeping on the hot path.
//!
//! # The two kernels
//!
//! Mirroring [`crate::DewTree`], the step kernel is compiled twice:
//!
//! * the **fast** kernel ([`LruTreeSimulator::new`]) keeps no work counters;
//!   residency depth is a branchless scan of the node's whole recency region
//!   into a position bitmask, const-specialized over the common widths
//!   (1/2/4/8/16), and the per-associativity miss tallies are computed
//!   without branches from the depth;
//! * the **instrumented** kernel ([`LruTreeSimulator::instrumented`])
//!   performs the classic MRU-first stop-at-match search over the valid
//!   prefix with every [`LruTreeCounters`] bucket live, plus a per-depth hit
//!   histogram ([`LruTreeSimulator::depth_hits`]).
//!
//! Both kernels produce bit-identical miss counts — a property-tested
//! invariant, exactly like the FIFO kernels'.
//!
//! [`crate::sweep_trace`] drives this type for LRU spaces: all passes of one
//! block size fuse into a single streamed traversal, fanned back out through
//! [`LruTreeSimulator::pass_results`] / [`LruTreeSimulator::pass_counters`].
//!
//! # Examples
//!
//! ```
//! use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
//! use dew_trace::Record;
//!
//! # fn main() -> Result<(), dew_core::DewError> {
//! // Set counts 1..=8, associativities 1, 2 and 4, 4-byte blocks.
//! let mut sim = LruTreeSimulator::new(2, 0, 3, 4, LruTreeOptions::default())?;
//! for i in 0..100u64 {
//!     sim.step_record(Record::read((i % 10) * 4));
//! }
//! let misses_dm = sim.results().misses(8, 1).expect("simulated");
//! let misses_4w = sim.results().misses(8, 4).expect("simulated");
//! assert!(misses_4w <= misses_dm, "the LRU stack property");
//! # Ok(())
//! # }
//! ```

use std::fmt;

use dew_trace::Record;

use crate::counters::DewCounters;
use crate::node::INVALID_TAG;
use crate::results::{AllAssocResults, LevelResult, PassResults};
use crate::simd::{
    first_match, prefetch_read, KernelBackend, ScalarScan, TagLane, TagScan, PF_DIST,
};
use crate::space::{DewError, PassConfig};

/// Snapshot magic of the arena LRU simulator (the single-pass
/// [`crate::DewTree`] format `DEWS` describes a different layout).
pub(crate) const SNAP_MAGIC: [u8; 4] = *b"DEWL";
/// Snapshot format version of the arena LRU simulator.
const SNAP_VERSION: u8 = 1;

/// Behaviour toggles of the LRU comparator (both default to on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LruTreeOptions {
    /// Stop the walk when the request hits at depth 0 (it is the MRU block
    /// of the set): by set-refinement inclusion it is MRU at every larger
    /// set count, so no accounting or list update is needed below.
    pub depth_zero_stop: bool,
    /// CRCB-style elision: a request to the same block as the immediately
    /// preceding request hits at depth 0 everywhere and is skipped outright.
    pub duplicate_elision: bool,
}

impl Default for LruTreeOptions {
    fn default() -> Self {
        LruTreeOptions {
            depth_zero_stop: true,
            duplicate_elision: true,
        }
    }
}

/// Work counters of the LRU comparator (instrumented kernel only; the fast
/// kernel maintains just the request-level `accesses`/`duplicate_skips`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruTreeCounters {
    /// Requests simulated (skipped duplicates included).
    pub accesses: u64,
    /// Tree nodes visited.
    pub node_evaluations: u64,
    /// Walks ended early by a depth-0 hit.
    pub depth_zero_stops: u64,
    /// Requests elided as consecutive duplicates.
    pub duplicate_skips: u64,
    /// Tag comparisons performed (the depth-0 MRA comparison of each node
    /// evaluation plus the MRU-first sequential search below it).
    pub tag_comparisons: u64,
}

impl fmt::Display for LruTreeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} evaluations, {} depth-0 stops, {} duplicate skips, {} comparisons",
            self.accesses,
            self.node_evaluations,
            self.depth_zero_stops,
            self.duplicate_skips,
            self.tag_comparisons
        )
    }
}

/// The arena: flat lanes over all forest levels concatenated.
#[derive(Debug, Clone)]
struct LruArena {
    /// Dense per-node MRU tags (depth 0 of every recency list): the
    /// direct-mapped cache contents and the stack-property early-exit
    /// operand.
    mra: Vec<u64>,
    /// Contiguous recency lane, cache-line aligned ([`TagLane`]): node
    /// `i`'s move-to-front list is `tags[i*width ..][..width]`, MRU-first,
    /// sentinel-padded at the tail.
    tags: TagLane,
    /// Valid prefix length per node; instrumented only (the fast kernel's
    /// sentinel scan never needs it).
    valid: Vec<u32>,
    /// Node-index base per level plus a final total, as in `DewTree`.
    node_off: Vec<usize>,
    /// `(1 << set_bits) - 1` per level.
    set_mask: Vec<u64>,
    /// Misses per `(level, threshold)`, level-major (thresholds are the
    /// reported associativities above 1).
    misses: Vec<u64>,
    /// Direct-mapped misses per level (from the shared MRA comparisons).
    dm_misses: Vec<u64>,
}

impl LruArena {
    fn new(pass: &PassConfig, width: usize, num_thresholds: usize, instrument: bool) -> Self {
        let mut node_off = Vec::with_capacity(pass.num_levels() as usize + 1);
        let mut set_mask = Vec::with_capacity(pass.num_levels() as usize);
        let mut total = 0usize;
        for set_bits in pass.min_set_bits()..=pass.max_set_bits() {
            node_off.push(total);
            set_mask.push((1u64 << set_bits) - 1);
            total += 1usize << set_bits;
        }
        node_off.push(total);
        let num_levels = pass.num_levels() as usize;
        LruArena {
            mra: vec![INVALID_TAG; total],
            tags: TagLane::filled(total * width, INVALID_TAG),
            valid: if instrument {
                vec![0; total]
            } else {
                Vec::new()
            },
            node_off,
            set_mask,
            // `max(1)`: an assoc-1-only forest (no thresholds) still
            // iterates its levels through `chunks_exact_mut`, which needs a
            // nonzero stride.
            misses: vec![0; num_levels * num_thresholds.max(1)],
            dm_misses: vec![0; num_levels],
        }
    }
}

/// Exact single-pass LRU simulator for all set counts in a range and all
/// power-of-two associativities in a range. See the module docs.
///
/// # Examples
///
/// The stack property makes one move-to-front lane exact for every
/// associativity at once:
///
/// ```
/// use dew_core::lru_tree::{LruTreeOptions, LruTreeSimulator};
///
/// # fn main() -> Result<(), dew_core::DewError> {
/// // Sets 1..=16, associativities 1, 2 and 4, 8-byte blocks.
/// let mut sim = LruTreeSimulator::new(3, 0, 4, 4, LruTreeOptions::default())?;
/// for i in 0..5_000u64 {
///     sim.step((i * 40) % 4096);
/// }
/// let results = sim.results();
/// assert_eq!(sim.assoc_list(), &[1, 2, 4]);
/// // LRU inclusion: more ways never miss more at the same set count.
/// let (m1, m2) = (results.misses(16, 1).unwrap(), results.misses(16, 2).unwrap());
/// assert!(m2 <= m1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LruTreeSimulator {
    /// Geometry; `assoc()` reports the widest simulated associativity.
    pass: PassConfig,
    opts: LruTreeOptions,
    /// Every reported associativity, ascending (includes 1 when the range
    /// starts there; associativity-1 results come from the MRA lane).
    assoc_list: Vec<u32>,
    /// Reported associativities above 1: a hit at depth `d` misses exactly
    /// the thresholds `<= d` (the stack property).
    thresholds: Vec<u32>,
    /// Recency-lane entries per node (the widest associativity).
    width: usize,
    arena: LruArena,
    counters: LruTreeCounters,
    /// Hits per recency depth (`0..width`); instrumented only.
    depth_hits: Vec<u64>,
    /// Block of the previous request, for the CRCB-style elision.
    prev_block: u64,
    /// Which kernel instantiation `step` dispatches to.
    instrument: bool,
    /// The tag-scan backend batched fast scans run on, fixed at
    /// construction from [`KernelBackend::active`].
    backend: KernelBackend,
}

impl LruTreeSimulator {
    /// Builds a simulator for set counts `2^min_set_bits..=2^max_set_bits`,
    /// block size `2^block_bits` bytes, and associativities
    /// `1, 2, 4, …, max_assoc`, using the fast (uninstrumented) kernel. Use
    /// [`LruTreeSimulator::instrumented`] when the work counters matter.
    ///
    /// # Errors
    ///
    /// The same geometry validation as [`PassConfig::new`].
    pub fn new(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: LruTreeOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        LruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            false,
        )
    }

    /// As [`LruTreeSimulator::new`], but with the instrumented kernel: the
    /// classic MRU-first counted search with every [`LruTreeCounters`]
    /// bucket and the per-depth hit histogram live. Miss counts are
    /// bit-identical to the fast kernel's — a property-tested invariant.
    ///
    /// # Errors
    ///
    /// As [`LruTreeSimulator::new`].
    pub fn instrumented(
        block_bits: u32,
        min_set_bits: u32,
        max_set_bits: u32,
        max_assoc: u32,
        opts: LruTreeOptions,
    ) -> Result<Self, DewError> {
        if max_assoc == 0 || !max_assoc.is_power_of_two() {
            return Err(DewError::BadAssoc(max_assoc));
        }
        LruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (0, max_assoc.trailing_zeros()),
            opts,
            true,
        )
    }

    /// Full-control constructor: inclusive `log2` ranges for the set counts
    /// and the reported associativities (so a sweep whose space starts above
    /// associativity 1 does not report lists it was not asked for — the
    /// recency lane is always sized to the widest), and a runtime kernel
    /// selection. This is the entry point [`crate::sweep_trace`] uses for
    /// its fused per-block-size LRU passes.
    ///
    /// # Errors
    ///
    /// As [`PassConfig::new`], plus [`DewError::EmptySetRange`] when the
    /// associativity range is inverted.
    pub fn with_instrumentation(
        block_bits: u32,
        set_bits: (u32, u32),
        assoc_bits: (u32, u32),
        opts: LruTreeOptions,
        instrument: bool,
    ) -> Result<Self, DewError> {
        if assoc_bits.0 > assoc_bits.1 {
            return Err(DewError::EmptySetRange {
                min_set_bits: assoc_bits.0,
                max_set_bits: assoc_bits.1,
            });
        }
        let pass = PassConfig::new(block_bits, set_bits.0, set_bits.1, 1 << assoc_bits.1)?;
        let assoc_list: Vec<u32> = (assoc_bits.0..=assoc_bits.1).map(|b| 1 << b).collect();
        let thresholds: Vec<u32> = (assoc_bits.0.max(1)..=assoc_bits.1)
            .map(|b| 1 << b)
            .collect();
        let width = 1usize << assoc_bits.1;
        Ok(LruTreeSimulator {
            arena: LruArena::new(&pass, width, thresholds.len(), instrument),
            pass,
            opts,
            assoc_list,
            thresholds,
            width,
            counters: LruTreeCounters::default(),
            depth_hits: if instrument {
                vec![0; width]
            } else {
                Vec::new()
            },
            prev_block: INVALID_TAG,
            instrument,
            backend: KernelBackend::active(),
        })
    }

    /// The simulated associativities, ascending.
    #[must_use]
    pub fn assoc_list(&self) -> &[u32] {
        &self.assoc_list
    }

    /// The geometry of the forest (`assoc()` reports the widest list).
    #[must_use]
    pub fn pass(&self) -> &PassConfig {
        &self.pass
    }

    /// `true` when this simulator maintains the work counters.
    #[must_use]
    pub fn is_instrumented(&self) -> bool {
        self.instrument
    }

    /// The tag-scan backend batched fast scans run on (fixed at
    /// construction from [`KernelBackend::active`]).
    #[must_use]
    pub fn scan_backend(&self) -> KernelBackend {
        self.backend
    }

    /// Pins the scan backend (the differential harness drives the same
    /// simulator once per backend to prove them bit-identical).
    ///
    /// # Errors
    ///
    /// [`DewError::UnsoundOptions`] when `backend` is not available on this
    /// build/machine.
    pub fn force_scan_backend(&mut self, backend: KernelBackend) -> Result<(), DewError> {
        if !backend.is_available() {
            return Err(DewError::UnsoundOptions(
                "requested scan backend is not available on this build/machine",
            ));
        }
        self.backend = backend;
        Ok(())
    }

    /// The work counters.
    #[must_use]
    pub fn counters(&self) -> &LruTreeCounters {
        &self.counters
    }

    /// Hits per recency depth (`depth_hits()[d]` counts hits whose stack
    /// distance was exactly `d`), maintained by the instrumented kernel;
    /// empty for fast simulators. Depth-0 hits elided as consecutive
    /// duplicates are tallied in
    /// [`LruTreeCounters::duplicate_skips`] instead, and a fired depth-0
    /// stop ends the walk, so deeper levels' depth-0 hits are — like every
    /// other saved evaluation — not re-counted.
    #[must_use]
    pub fn depth_hits(&self) -> &[u64] {
        &self.depth_hits
    }

    /// Simulates one record (only the address matters).
    pub fn step_record(&mut self, record: Record) {
        self.step(record.addr);
    }

    /// Simulates every record of an iterator.
    pub fn run<I>(&mut self, records: I)
    where
        I: IntoIterator<Item = Record>,
    {
        for r in records {
            self.step(r.addr);
        }
    }

    /// Simulates one request by byte address.
    ///
    /// # Panics
    ///
    /// As [`crate::DewTree::step`]: the block number must not collide with
    /// the internal sentinel.
    pub fn step(&mut self, addr: u64) {
        self.step_block(addr >> self.pass.block_bits());
    }

    /// Simulates one request given as a pre-decoded block number
    /// (`addr >> block_bits` for this pass's block size).
    ///
    /// # Panics
    ///
    /// As [`LruTreeSimulator::step`], if `block` equals the internal
    /// sentinel.
    pub fn step_block(&mut self, block: u64) {
        assert_ne!(
            block, INVALID_TAG,
            "block {block:#x} exceeds the supported range"
        );
        if self.instrument {
            self.kernel_instrumented(block);
        } else {
            self.dispatch_fast(block);
        }
    }

    /// Simulates a batch of pre-decoded block numbers (see
    /// `dew_trace::decode_blocks` / `dew_trace::BlockChunks`). This is the
    /// fastest way to drive a fused LRU pass: the sweep decodes the trace
    /// once per block size and every associativity consumes the same lane.
    ///
    /// # Panics
    ///
    /// As [`LruTreeSimulator::step`], if any block equals the internal
    /// sentinel.
    pub fn run_blocks(&mut self, blocks: &[u64]) {
        if self.instrument {
            for &b in blocks {
                assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
                self.kernel_instrumented(b);
            }
        } else {
            match self.backend {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                KernelBackend::Avx2 => {
                    // SAFETY: `backend` is only `Avx2` after runtime
                    // detection (`KernelBackend::is_available`).
                    #[allow(unsafe_code)]
                    unsafe {
                        self.run_blocks_fast_avx2(blocks);
                    }
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                KernelBackend::Sse2 => self.drive_fast(crate::simd::Sse2Scan, blocks),
                _ => self.drive_fast(ScalarScan, blocks),
            }
        }
    }

    /// The AVX2 compilation root of the fast batch loop (see
    /// `crate::simd` module docs for the dispatch rules).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn run_blocks_fast_avx2(&mut self, blocks: &[u64]) {
        self.drive_fast(crate::simd::Avx2Scan, blocks);
    }

    /// The fast batch loop: width dispatch, plus software prefetch of the
    /// deepest (largest, least cache-resident) level's MRA word and recency
    /// region [`PF_DIST`] requests ahead.
    #[inline(always)]
    fn drive_fast<S: TagScan>(&mut self, scan: S, blocks: &[u64]) {
        let deepest = self.arena.set_mask.len() - 1;
        let d_off = self.arena.node_off[deepest];
        let d_mask = self.arena.set_mask[deepest];
        let width = self.width;
        macro_rules! drive {
            ($w:literal) => {{
                for (i, &b) in blocks.iter().enumerate() {
                    assert_ne!(b, INVALID_TAG, "block {b:#x} exceeds the supported range");
                    if let Some(&ahead) = blocks.get(i + PF_DIST) {
                        let node = d_off + (ahead & d_mask) as usize;
                        prefetch_read(&self.arena.mra, node);
                        prefetch_read(&self.arena.tags, node * width);
                    }
                    self.kernel_fast::<$w, S>(scan, b);
                }
            }};
        }
        match self.width {
            1 => drive!(1),
            2 => drive!(2),
            4 => drive!(4),
            8 => drive!(8),
            16 => drive!(16),
            _ => drive!(0),
        }
    }

    /// Fast-kernel dispatch on the recency-lane width: the common widths
    /// (the paper's sweep ranges) get their own instantiation so the scan
    /// width is a compile-time constant and the position-bitmask loop
    /// unrolls into straight-line vectorisable compares. Anything wider
    /// falls back to the runtime-width scan (`W = 0`).
    fn dispatch_fast(&mut self, block: u64) {
        // Single steps always use the scalar scan: batch-level backend
        // dispatch is where the SIMD instantiations live (`crate::simd`
        // module docs), and the backends are bit-identical anyway.
        match self.width {
            1 => self.kernel_fast::<1, _>(ScalarScan, block),
            2 => self.kernel_fast::<2, _>(ScalarScan, block),
            4 => self.kernel_fast::<4, _>(ScalarScan, block),
            8 => self.kernel_fast::<8, _>(ScalarScan, block),
            16 => self.kernel_fast::<16, _>(ScalarScan, block),
            _ => self.kernel_fast::<0, _>(ScalarScan, block),
        }
    }

    /// Shared per-request prologue of both kernels: request accounting and
    /// the CRCB-style duplicate elision. Returns `true` when the request
    /// was elided whole.
    #[inline(always)]
    fn prologue(&mut self, block: u64) -> bool {
        self.counters.accesses += 1;
        if self.opts.duplicate_elision {
            if block == self.prev_block {
                // The block is the MRU entry of every set on its path: a hit
                // at depth 0 for every configuration, and move-to-front is a
                // no-op.
                self.counters.duplicate_skips += 1;
                return true;
            }
            self.prev_block = block;
        }
        false
    }

    /// The fast kernel: no counter traffic. Per level, one dense MRA
    /// comparison settles depth 0 (and the direct-mapped result); otherwise
    /// a branchless scan of the node's whole recency region yields the hit
    /// depth as a position bitmask, the per-threshold miss tallies fall out
    /// of the depth without branches, and the move-to-front update is a
    /// single prefix rotation (a whole-region rotation plus front store on
    /// a miss — the sentinel or true LRU victim wraps around and is
    /// overwritten).
    ///
    /// `W` is the compile-time lane width, or `0` for the runtime fallback;
    /// `S` is the tag-scan backend the wide compare runs on ([`TagScan`]).
    fn kernel_fast<const W: usize, S: TagScan>(&mut self, scan: S, block: u64) {
        if self.prologue(block) {
            return;
        }
        let width = if W == 0 { self.width } else { W };
        debug_assert_eq!(width, self.width);
        let stop = self.opts.depth_zero_stop;
        let nk = self.thresholds.len();
        let a = &mut self.arena;
        let levels = a.set_mask.iter().zip(a.node_off.iter()).zip(
            a.misses
                .chunks_exact_mut(nk.max(1))
                .zip(a.dm_misses.iter_mut()),
        );
        for ((&mask, &off), (level_misses, level_dm_misses)) in levels {
            let node = off + (block & mask) as usize;
            if a.mra[node] == block {
                if stop {
                    // Set-refinement inclusion: MRU here means MRU at every
                    // larger set count — no accounting or update below.
                    return;
                }
                continue;
            }
            *level_dm_misses += 1;
            a.mra[node] = block;
            let region = &mut a.tags[node * width..(node + 1) * width];
            // A resident block occupies exactly one way, so the bitmask has
            // at most one bit; depth `width` encodes a miss.
            let depth = if W == 0 {
                first_match(scan, region, block).unwrap_or(width)
            } else {
                let hit_mask = scan.match_mask(region, block);
                if hit_mask == 0 {
                    width
                } else {
                    hit_mask.trailing_zeros() as usize
                }
            };
            // Stack property: a hit at depth d misses every associativity
            // <= d; a miss (depth == width) misses them all.
            for (k, &thr) in self.thresholds.iter().enumerate() {
                level_misses[k] += u64::from(depth >= thr as usize);
            }
            // Move to front. On a hit the rotation carries the matching way
            // to the front (the store is then a no-op); on a miss the
            // whole-region rotation wraps the tail entry — a sentinel while
            // cold, the true LRU victim when full — to the front, where the
            // store replaces it.
            region[..=depth.min(width - 1)].rotate_right(1);
            region[0] = block;
        }
    }

    /// The instrumented kernel: the classic MRU-first stop-at-match search
    /// over the valid prefix, with every counter and the per-depth hit
    /// histogram live. Miss counts are bit-identical to the fast kernel's.
    fn kernel_instrumented(&mut self, block: u64) {
        if self.prologue(block) {
            return;
        }
        let width = self.width;
        let stop = self.opts.depth_zero_stop;
        let nk = self.thresholds.len();
        let stride = nk.max(1);
        let a = &mut self.arena;
        for li in 0..a.set_mask.len() {
            let node = a.node_off[li] + (block & a.set_mask[li]) as usize;
            self.counters.node_evaluations += 1;
            // Depth 0 is the dense MRA lane: one comparison, shared with the
            // direct-mapped simulation.
            self.counters.tag_comparisons += 1;
            if a.mra[node] == block {
                self.depth_hits[0] += 1;
                if stop {
                    self.counters.depth_zero_stops += 1;
                    return;
                }
                continue;
            }
            a.dm_misses[li] += 1;
            a.mra[node] = block;
            let valid = a.valid[node] as usize;
            let region = &mut a.tags[node * width..(node + 1) * width];
            // MRU-first search below depth 0 (Janapsatya's temporal-locality
            // order), stopping at the match; depth 0 was settled above.
            let mut found = None;
            for (d, &tag) in region.iter().enumerate().take(valid).skip(1) {
                self.counters.tag_comparisons += 1;
                if tag == block {
                    found = Some(d);
                    break;
                }
            }
            match found {
                Some(d) => {
                    self.depth_hits[d] += 1;
                    for (k, &thr) in self.thresholds.iter().enumerate() {
                        a.misses[li * stride + k] += u64::from(d >= thr as usize);
                    }
                    region[..=d].rotate_right(1);
                }
                None => {
                    for k in 0..nk {
                        a.misses[li * stride + k] += 1;
                    }
                    region[..=valid.min(width - 1)].rotate_right(1);
                    region[0] = block;
                    a.valid[node] = (valid + 1).min(width) as u32;
                }
            }
        }
    }

    /// Snapshot of the per-configuration miss counts (associativity 1, when
    /// simulated, comes from the shared direct-mapped accounting).
    #[must_use]
    pub fn results(&self) -> AllAssocResults {
        let include_dm = self.assoc_list.first() == Some(&1);
        let nk = self.thresholds.len();
        let stride = nk.max(1);
        let misses = (0..self.arena.dm_misses.len())
            .map(|li| {
                let mut row = Vec::with_capacity(self.assoc_list.len());
                if include_dm {
                    row.push(self.arena.dm_misses[li]);
                }
                row.extend_from_slice(&self.arena.misses[li * stride..li * stride + nk]);
                row
            })
            .collect();
        AllAssocResults::new(
            self.pass,
            self.counters.accesses,
            self.assoc_list.clone(),
            misses,
        )
    }

    /// Fans this pass out into the [`PassResults`] a standalone
    /// `(block size, assoc)` pass would have produced, or `None` when
    /// `assoc` was not simulated. This is how [`crate::sweep_trace`] keeps
    /// its per-pass result shape while traversing the trace once per block
    /// size under LRU, exactly as the FIFO scheduler does through
    /// [`crate::MultiAssocTree::pass_results`].
    #[must_use]
    pub fn pass_results(&self, assoc: u32) -> Option<PassResults> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        let pass = PassConfig::new(
            self.pass.block_bits(),
            self.pass.min_set_bits(),
            self.pass.max_set_bits(),
            assoc,
        )
        .ok()?;
        let stride = self.thresholds.len().max(1);
        let k = self.thresholds.iter().position(|&t| t == assoc);
        let levels = self
            .arena
            .dm_misses
            .iter()
            .enumerate()
            .map(|(li, &dm)| {
                let misses = match k {
                    Some(k) => self.arena.misses[li * stride + k],
                    None => dm, // assoc 1: the MRA lane is the simulation
                };
                LevelResult::new(self.pass.min_set_bits() + li as u32, misses, dm)
            })
            .collect();
        Some(PassResults::new(pass, self.counters.accesses, levels))
    }

    /// The [`DewCounters`] view a standalone pass at `assoc` is entitled to
    /// report, derived from the shared walk: one recency list serves every
    /// associativity, so — unlike the FIFO fan-out — *all* quantities are
    /// shared verbatim. The depth-0 stop maps onto the `mra_stops` bucket
    /// (it is the LRU analogue of Property 2) and every other evaluation is
    /// a search, so the [`DewCounters::is_consistent`] identity holds for
    /// every fanned-out view. Returns `None` when `assoc` was not
    /// simulated.
    #[must_use]
    pub fn pass_counters(&self, assoc: u32) -> Option<DewCounters> {
        if !self.assoc_list.contains(&assoc) {
            return None;
        }
        if !self.instrument {
            // The fast kernel maintains only the request-level counters,
            // exactly like `DewTree::new`.
            return Some(DewCounters {
                accesses: self.counters.accesses,
                duplicate_skips: self.counters.duplicate_skips,
                ..DewCounters::new()
            });
        }
        let searches = self.counters.node_evaluations - self.counters.depth_zero_stops;
        let search_comparisons = self.counters.tag_comparisons - self.counters.node_evaluations;
        Some(DewCounters {
            accesses: self.counters.accesses,
            duplicate_skips: self.counters.duplicate_skips,
            node_evaluations: self.counters.node_evaluations,
            mra_stops: self.counters.depth_zero_stops,
            searches,
            search_comparisons,
            tag_comparisons: self.counters.tag_comparisons,
            ..DewCounters::new()
        })
    }

    /// Actual heap footprint of the arena's lanes in bytes (excludes
    /// counters and scratch).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let a = &self.arena;
        a.mra.len() * 8 + a.tags.len() * 8 + a.valid.len() * 4
    }

    /// Serialises the complete arena state (geometry, options, counters,
    /// every recency lane) to bytes under its own magic (`DEWL`), mirroring
    /// [`crate::DewTree::to_snapshot`]. The sharded sweep's exact
    /// snapshot-handoff mode rebuilds a fresh simulator from these bytes at
    /// every shard boundary.
    #[must_use]
    pub fn to_snapshot(&self) -> Vec<u8> {
        use crate::snapshot::{put_u32, put_u64};
        let mut out = Vec::with_capacity(64 + self.footprint_bytes() * 2);
        out.extend_from_slice(&SNAP_MAGIC);
        out.push(SNAP_VERSION);
        put_u32(&mut out, self.pass.block_bits());
        put_u32(&mut out, self.pass.min_set_bits());
        put_u32(&mut out, self.pass.max_set_bits());
        put_u32(&mut out, self.assoc_list[0].trailing_zeros());
        put_u32(&mut out, self.pass.assoc().trailing_zeros());
        let flags = u8::from(self.opts.depth_zero_stop)
            | u8::from(self.opts.duplicate_elision) << 1
            | u8::from(self.instrument) << 2;
        out.push(flags);
        let c = &self.counters;
        for v in [
            c.accesses,
            c.node_evaluations,
            c.depth_zero_stops,
            c.duplicate_skips,
            c.tag_comparisons,
        ] {
            put_u64(&mut out, v);
        }
        for &v in &self.depth_hits {
            put_u64(&mut out, v);
        }
        put_u64(&mut out, self.prev_block);
        let a = &self.arena;
        for &v in a
            .misses
            .iter()
            .chain(&a.dm_misses)
            .chain(&a.mra)
            .chain(&a.tags)
        {
            put_u64(&mut out, v);
        }
        for &v in &a.valid {
            put_u32(&mut out, v);
        }
        out
    }

    /// Restores a simulator from [`LruTreeSimulator::to_snapshot`] output.
    /// The snapshot is self-describing; continuing the restored simulator
    /// produces bit-identical results to the uninterrupted run (a
    /// property-tested invariant the sharded sweep relies on).
    ///
    /// # Errors
    ///
    /// [`crate::snapshot::SnapshotError`] for foreign, truncated or
    /// internally inconsistent buffers.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{Cursor, SnapshotError};
        let mut cur = Cursor::new(bytes);
        let magic = cur.bytes(4)?;
        if magic != SNAP_MAGIC {
            // A structurally valid buffer for a sibling policy kernel is a
            // policy mixup, not random corruption — report it as such.
            for sibling in [
                crate::multi_assoc::SNAP_MAGIC,
                crate::plru_tree::SNAP_MAGIC,
                crate::slru_tree::SNAP_MAGIC,
            ] {
                if magic == sibling {
                    return Err(SnapshotError::PolicyMismatch {
                        expected: SNAP_MAGIC,
                        found: sibling,
                    });
                }
            }
            return Err(SnapshotError::BadMagic);
        }
        let version = cur.u8()?;
        if version != SNAP_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let (block_bits, min_set_bits, max_set_bits) = (cur.u32()?, cur.u32()?, cur.u32()?);
        let (assoc_lo_bits, assoc_hi_bits) = (cur.u32()?, cur.u32()?);
        let flags = cur.u8()?;
        let opts = LruTreeOptions {
            depth_zero_stop: flags & 1 != 0,
            duplicate_elision: flags & 2 != 0,
        };
        let instrument = flags & 4 != 0;
        let mut sim = LruTreeSimulator::with_instrumentation(
            block_bits,
            (min_set_bits, max_set_bits),
            (assoc_lo_bits, assoc_hi_bits),
            opts,
            instrument,
        )
        .map_err(|_| SnapshotError::Corrupt("invalid arena geometry"))?;
        let c = &mut sim.counters;
        c.accesses = cur.u64()?;
        c.node_evaluations = cur.u64()?;
        c.depth_zero_stops = cur.u64()?;
        c.duplicate_skips = cur.u64()?;
        c.tag_comparisons = cur.u64()?;
        for v in &mut sim.depth_hits {
            *v = cur.u64()?;
        }
        sim.prev_block = cur.u64()?;
        let width = sim.width;
        let a = &mut sim.arena;
        for v in a
            .misses
            .iter_mut()
            .chain(&mut a.dm_misses)
            .chain(&mut a.mra)
        {
            *v = cur.u64()?;
        }
        for v in &mut a.tags {
            *v = cur.u64()?;
        }
        for v in &mut a.valid {
            *v = cur.u32()?;
            if *v as usize > width {
                return Err(SnapshotError::Corrupt("valid prefix out of range"));
            }
        }
        if cur.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes(cur.remaining()));
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dew_cachesim::{simulate_trace, CacheConfig, Replacement};

    fn addrs(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if i % 6 == 0 {
                    x % (1 << 12)
                } else {
                    (x % 80) * 4
                }
            })
            .collect()
    }

    fn oracle(sets: u32, assoc: u32, block: u32, addrs: &[u64]) -> u64 {
        let records: Vec<Record> = addrs.iter().map(|&a| Record::read(a)).collect();
        simulate_trace(
            CacheConfig::new(sets, assoc, block, Replacement::Lru).expect("valid"),
            &records,
        )
        .misses()
    }

    #[test]
    fn matches_reference_lru_for_all_configs() {
        let a = addrs(3000, 0x5EED_1111);
        for instrument in [false, true] {
            let mut sim = LruTreeSimulator::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                LruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let r = sim.results();
            for set_bits in 0..=5u32 {
                for assoc in [1u32, 2, 4, 8] {
                    let sets = 1 << set_bits;
                    assert_eq!(
                        r.misses(sets, assoc),
                        Some(oracle(sets, assoc, 4, &a)),
                        "sets={sets} assoc={assoc} instrument={instrument}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_and_instrumented_kernels_are_bit_identical() {
        let a = addrs(4000, 0x5EED_F00D);
        let variants = [
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: true,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: true,
            },
            LruTreeOptions::default(),
        ];
        for o in variants {
            let mut fast = LruTreeSimulator::new(2, 0, 6, 8, o).expect("valid");
            let mut slow = LruTreeSimulator::instrumented(2, 0, 6, 8, o).expect("valid");
            for &x in &a {
                fast.step(x);
                slow.step(x);
            }
            assert_eq!(fast.results(), slow.results(), "{o:?}");
            assert_eq!(fast.counters().accesses, slow.counters().accesses);
            assert!(fast.depth_hits().is_empty());
            assert_eq!(slow.depth_hits().len(), 8);
        }
    }

    #[test]
    fn run_blocks_matches_per_record_stepping() {
        let a = addrs(3000, 0x5EED_B10C);
        let blocks: Vec<u64> = a.iter().map(|&x| x >> 2).collect();
        for instrument in [false, true] {
            let mut stepped = LruTreeSimulator::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                LruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                stepped.step(x);
            }
            let mut batched = LruTreeSimulator::with_instrumentation(
                2,
                (0, 5),
                (0, 3),
                LruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            batched.run_blocks(&blocks);
            assert_eq!(stepped.results(), batched.results());
            assert_eq!(stepped.counters(), batched.counters());
        }
    }

    #[test]
    fn options_do_not_change_results() {
        let a = addrs(2000, 0x5EED_2222);
        let variants = [
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: true,
                duplicate_elision: false,
            },
            LruTreeOptions {
                depth_zero_stop: false,
                duplicate_elision: true,
            },
            LruTreeOptions::default(),
        ];
        let runs: Vec<AllAssocResults> = variants
            .iter()
            .map(|&o| {
                let mut sim = LruTreeSimulator::new(2, 0, 4, 4, o).expect("valid");
                for &x in &a {
                    sim.step(x);
                }
                sim.results()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    }

    #[test]
    fn optimisations_cut_work() {
        // A loopy trace with many consecutive duplicates.
        let mut a = Vec::new();
        for i in 0..400u64 {
            let x = (i % 5) * 4;
            a.push(x);
            a.push(x); // immediate duplicate
        }
        let run = |o: LruTreeOptions| {
            let mut sim = LruTreeSimulator::instrumented(2, 0, 6, 4, o).expect("valid");
            for &x in &a {
                sim.step(x);
            }
            *sim.counters()
        };
        let off = run(LruTreeOptions {
            depth_zero_stop: false,
            duplicate_elision: false,
        });
        let on = run(LruTreeOptions::default());
        assert!(on.node_evaluations < off.node_evaluations);
        assert!(on.tag_comparisons < off.tag_comparisons);
        assert!(on.duplicate_skips > 0);
    }

    #[test]
    fn depth_hits_histogram_tracks_stack_distances() {
        // A cyclic 3-block loop in one set: after warmup every hit has
        // stack distance 2 (the loop distance).
        let a: Vec<u64> = (0..300u64).map(|i| (i % 3) * 4).collect();
        let opts = LruTreeOptions {
            depth_zero_stop: false,
            duplicate_elision: false,
        };
        let mut sim = LruTreeSimulator::instrumented(2, 0, 0, 4, opts).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let h = sim.depth_hits();
        assert_eq!(h.len(), 4);
        assert_eq!(h[0], 0, "the loop never re-touches its MRU block");
        assert_eq!(h[1], 0);
        assert_eq!(h[2], 297, "every post-warmup access hits at depth 2");
        assert_eq!(h[3], 0);
        let total_hits: u64 = h.iter().sum();
        let misses = sim.results().misses(1, 4).expect("simulated");
        assert_eq!(total_hits + misses, a.len() as u64);
    }

    #[test]
    fn stack_property_holds_in_results() {
        let a = addrs(2500, 0x5EED_3333);
        let mut sim = LruTreeSimulator::new(2, 0, 5, 16, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for set_bits in 0..=5u32 {
            let sets = 1 << set_bits;
            let mut prev = u64::MAX;
            for assoc in [1u32, 2, 4, 8, 16] {
                let m = r.misses(sets, assoc).expect("simulated");
                assert!(m <= prev, "LRU misses non-increasing in associativity");
                prev = m;
            }
        }
    }

    #[test]
    fn inclusion_property_holds_in_results() {
        let a = addrs(2500, 0x5EED_4444);
        let mut sim = LruTreeSimulator::new(2, 0, 6, 4, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for assoc in [1u32, 2, 4] {
            let mut prev = u64::MAX;
            for set_bits in 0..=6u32 {
                let m = r.misses(1 << set_bits, assoc).expect("simulated");
                assert!(
                    m <= prev,
                    "LRU misses non-increasing in set count (inclusion)"
                );
                prev = m;
            }
        }
    }

    #[test]
    fn wide_runtime_lanes_use_the_fallback_scan() {
        // Width 32 exceeds the const-dispatch table, exercising the
        // runtime-width kernel.
        let a = addrs(2000, 0x5EED_3C3C);
        let mut sim = LruTreeSimulator::new(2, 0, 3, 32, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            sim.step(x);
        }
        let r = sim.results();
        for set_bits in 0..=3u32 {
            for assoc in [1u32, 4, 32] {
                let sets = 1 << set_bits;
                assert_eq!(
                    r.misses(sets, assoc),
                    Some(oracle(sets, assoc, 4, &a)),
                    "sets={sets} assoc={assoc}"
                );
            }
        }
    }

    #[test]
    fn assoc_range_above_one_skips_narrow_reports() {
        let a = addrs(2000, 0x5EED_0404);
        let mut ranged = LruTreeSimulator::with_instrumentation(
            2,
            (0, 4),
            (2, 3),
            LruTreeOptions::default(),
            false,
        )
        .expect("valid");
        let mut full = LruTreeSimulator::new(2, 0, 4, 8, LruTreeOptions::default()).expect("valid");
        for &x in &a {
            ranged.step(x);
            full.step(x);
        }
        assert_eq!(ranged.assoc_list(), &[4, 8]);
        let (rr, fr) = (ranged.results(), full.results());
        for set_bits in 0..=4u32 {
            let sets = 1 << set_bits;
            for assoc in [4u32, 8] {
                assert_eq!(rr.misses(sets, assoc), fr.misses(sets, assoc));
            }
            assert_eq!(rr.misses(sets, 1), None, "assoc 1 not in the range");
            assert_eq!(rr.misses(sets, 2), None, "assoc 2 not in the range");
        }
    }

    #[test]
    fn pass_results_fan_out_matches_all_assoc_view() {
        let a = addrs(2500, 0x5EED_FA11);
        for instrument in [false, true] {
            let mut sim = LruTreeSimulator::with_instrumentation(
                3,
                (1, 6),
                (0, 3),
                LruTreeOptions::default(),
                instrument,
            )
            .expect("valid");
            for &x in &a {
                sim.step(x);
            }
            let all = sim.results();
            for &assoc in sim.assoc_list() {
                let pr = sim.pass_results(assoc).expect("simulated");
                assert_eq!(pr.pass().assoc(), assoc);
                for set_bits in 1..=6u32 {
                    let sets = 1 << set_bits;
                    assert_eq!(
                        pr.misses(sets, assoc),
                        all.misses(sets, assoc),
                        "sets={sets} assoc={assoc}"
                    );
                    assert_eq!(
                        pr.misses(sets, 1),
                        all.misses(sets, 1),
                        "DM via assoc={assoc}"
                    );
                }
                let c = sim.pass_counters(assoc).expect("simulated");
                assert!(c.is_consistent(), "assoc={assoc}: {c}");
                assert_eq!(c.accesses, a.len() as u64);
            }
            assert!(sim.pass_results(16).is_none());
            assert!(sim.pass_counters(16).is_none());
        }
    }

    #[test]
    fn unknown_configs_return_none() {
        let sim = LruTreeSimulator::new(2, 1, 3, 4, LruTreeOptions::default()).expect("valid");
        let r = sim.results();
        assert_eq!(r.misses(1, 4), None, "below min set count");
        assert_eq!(r.misses(8, 3), None, "unsimulated associativity");
        assert_eq!(r.misses(6, 2), None, "non power-of-two sets");
    }

    #[test]
    fn bad_assoc_ranges_are_rejected() {
        assert!(matches!(
            LruTreeSimulator::new(2, 0, 4, 3, LruTreeOptions::default()),
            Err(DewError::BadAssoc(3))
        ));
        assert!(matches!(
            LruTreeSimulator::new(2, 0, 4, 0, LruTreeOptions::default()),
            Err(DewError::BadAssoc(0))
        ));
        assert!(LruTreeSimulator::with_instrumentation(
            2,
            (0, 4),
            (3, 1),
            LruTreeOptions::default(),
            false
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds the supported range")]
    fn sentinel_block_panics_in_batches() {
        let mut sim = LruTreeSimulator::new(0, 0, 1, 2, LruTreeOptions::default()).expect("valid");
        sim.run_blocks(&[0, 1, u64::MAX]);
    }
}
