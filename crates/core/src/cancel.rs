//! Cooperative cancellation for long-running sweeps.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between the party
//! running a sweep and any party that may want to stop it early — a service
//! enforcing a per-job wall-clock deadline, a `cancel` request from a
//! client, or a SIGINT handler in the batch CLI. The resilient sweep
//! drivers ([`crate::sweep_trace_resilient`] and friends) poll the token at
//! chunk boundaries via [`Resilience::with_cancel`](crate::Resilience::with_cancel);
//! on cancellation every in-flight job **flushes a final checkpoint** (when
//! checkpointing is enabled) and stops, so a cancelled sweep is always
//! resumable from exactly where it was interrupted.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-record, and
//! the chunk in flight (a few thousand records at most) finishes before the
//! job winds down. That bounded lag is what makes the final checkpoint
//! consistent.
//!
//! # Examples
//!
//! ```
//! use dew_core::{CancelReason, CancelToken};
//! use std::time::Duration;
//!
//! // Explicit cancellation.
//! let token = CancelToken::new();
//! assert!(token.cancelled().is_none());
//! token.cancel();
//! assert_eq!(token.cancelled(), Some(CancelReason::Requested));
//!
//! // A deadline that has already passed cancels immediately.
//! let token = CancelToken::with_deadline(Duration::ZERO);
//! assert_eq!(token.cancelled(), Some(CancelReason::DeadlineExceeded));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
///
/// An explicit [`CancelToken::cancel`] wins over an expired deadline: once a
/// caller has asked for cancellation, that is the reason reported even if
/// the deadline lapses while the sweep winds down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client request, SIGINT, drain).
    Requested,
    /// The wall-clock deadline of [`CancelToken::with_deadline`] passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Requested => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

struct Inner {
    requested: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; all clones observe the same state.
///
/// The module docs above spell out the contract the sweep drivers uphold:
/// cooperative cuts at chunk boundaries, a final checkpoint flush, and a
/// partial (never silently wrong) outcome.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                requested: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that fires on its own once `timeout` has elapsed (measured
    /// from now, on the monotonic clock), and earlier if
    /// [`CancelToken::cancel`] is called.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                requested: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks. Safe to call from
    /// any thread (the batch CLI calls it from a SIGINT watcher).
    pub fn cancel(&self) {
        self.inner.requested.store(true, Ordering::Release);
    }

    /// Whether the token has fired, and why. `None` while the sweep should
    /// keep running. Cheap enough to poll every few thousand records.
    #[must_use]
    pub fn cancelled(&self) -> Option<CancelReason> {
        if self.inner.requested.load(Ordering::Acquire) {
            return Some(CancelReason::Requested);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }

    /// The absolute deadline, when one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(b.cancelled().is_none());
        a.cancel();
        assert_eq!(b.cancelled(), Some(CancelReason::Requested));
        // Idempotent.
        b.cancel();
        assert_eq!(a.cancelled(), Some(CancelReason::Requested));
    }

    #[test]
    fn deadline_fires_and_explicit_cancel_wins() {
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(far.cancelled().is_none());
        assert!(far.deadline().is_some());

        let past = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(past.cancelled(), Some(CancelReason::DeadlineExceeded));

        // Requested takes precedence over an expired deadline.
        past.cancel();
        assert_eq!(past.cancelled(), Some(CancelReason::Requested));
    }

    #[test]
    fn debug_and_default() {
        let t = CancelToken::default();
        assert!(format!("{t:?}").contains("cancelled"));
        assert_eq!(CancelReason::Requested.to_string(), "cancelled");
        assert_eq!(
            CancelReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
    }
}
